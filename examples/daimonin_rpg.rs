//! Daimonin-style RPG scenario: a huge open world where a town meeting
//! pulls the population into one village — the paper's canonical hotspot
//! motivation ("the town hall during a town meeting").
//!
//! Runs under the deterministic simulator, then prints how Matrix coped.
//!
//! ```sh
//! cargo run --release --example daimonin_rpg
//! ```

use matrix_middleware::experiments::{Cluster, ClusterConfig};
use matrix_middleware::games::{GameSpec, Placement, PopulationEvent, WorkloadSchedule};
use matrix_middleware::metrics::AsciiChart;
use matrix_middleware::sim::SimTime;

fn main() {
    let spec = GameSpec::daimonin();
    let town_square = spec.hotspot_b();
    println!(
        "Daimonin world {} | radius {} | town meeting at {town_square}\n",
        spec.world, spec.radius
    );

    // 250 adventurers spread over the world; at t=30 a town meeting pulls
    // 500 more into the village; the meeting disperses after two minutes.
    let schedule = WorkloadSchedule::new(SimTime::from_secs(240))
        .at(
            SimTime::ZERO,
            PopulationEvent::Join {
                n: 250,
                placement: Placement::Uniform,
            },
        )
        .at(
            SimTime::from_secs(30),
            PopulationEvent::Join {
                n: 500,
                placement: Placement::Hotspot {
                    center: town_square,
                    spread: spec.radius * 2.0,
                },
            },
        )
        .at(
            SimTime::from_secs(150),
            PopulationEvent::Leave {
                n: 250,
                from_hotspot: true,
            },
        )
        .at(
            SimTime::from_secs(180),
            PopulationEvent::Leave {
                n: 250,
                from_hotspot: true,
            },
        );

    let mut cfg = ClusterConfig::adaptive(spec);
    cfg.seed = 7;
    let report = Cluster::new(cfg, schedule).run();

    println!("servers in use over time:");
    println!(
        "{}",
        AsciiChart::new(90, 12).render(&[&report.servers_in_use])
    );

    println!("town meeting handled with:");
    println!("  peak servers        : {}", report.peak_servers);
    println!(
        "  splits / reclaims   : {} / {}",
        report.splits, report.reclaims
    );
    println!("  client switches     : {}", report.switches);
    println!("  peak queue backlog  : {:.0}", report.peak_queue);
    println!(
        "  p95 response latency: {:.1} ms",
        report.response_latency_us.p95().unwrap_or(0.0) / 1000.0
    );
    println!(
        "  late responses      : {:.2}%",
        report.late_fraction * 100.0
    );
    println!(
        "  inter-server traffic: {:.2} MB",
        report.inter_server_bytes as f64 / 1e6
    );
}
