//! Figure 1a, regenerated: overlap regions between three Matrix servers.
//!
//! Renders the world partition and each point's consistency-set
//! cardinality as an ASCII heat map: `.` interior points (no consistency
//! needed), digits = number of peer servers that must be told about an
//! event there.
//!
//! ```sh
//! cargo run --example overlap_visualizer [radius]
//! ```

use matrix_middleware::geometry::{
    build_overlap, Metric, PartitionMap, Point, Rect, ServerId, SplitStrategy,
};

fn main() {
    let radius: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(40.0);

    // The paper's Figure-1a layout: three servers after two splits.
    let world = Rect::from_coords(0.0, 0.0, 300.0, 300.0);
    let mut map = PartitionMap::new(world, ServerId(1));
    map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
        .unwrap();
    map.split(ServerId(1), ServerId(3), &SplitStrategy::LongestAxis, &[])
        .unwrap();

    println!("partitions (radius of visibility R = {radius}):");
    for (server, rect) in map.iter() {
        println!("  {server} owns {rect}");
    }

    let overlap = build_overlap(&map, radius, Metric::Euclidean);

    // Heat map: consistency-set size at each sample point.
    let cols = 72usize;
    let rows = 36usize;
    println!("\noverlap heat map ('.' = empty consistency set, digit = #peer servers):\n");
    for row in 0..rows {
        let mut line = String::with_capacity(cols);
        for col in 0..cols {
            let p = Point::new(
                world.min().x + world.width() * (col as f64 + 0.5) / cols as f64,
                world.max().y - world.height() * (row as f64 + 0.5) / rows as f64,
            );
            let owner = map.owner_of(p).expect("inside world");
            let set = overlap.table_for(owner).expect("table").lookup(p);
            let ch = match set.len() {
                0 => '.',
                n => char::from_digit(n as u32, 10).unwrap_or('+'),
            };
            line.push(ch);
        }
        println!("  {line}");
    }

    println!("\nper-server overlap regions:");
    for (server, table) in overlap.iter() {
        println!(
            "  {server}: {} regions, {:.0} area ({:.1}% of partition)",
            table.regions().len(),
            table.overlap_area(),
            table.overlap_fraction() * 100.0
        );
        for region in table.regions() {
            let peers: Vec<String> = region.set.iter().map(|s| s.to_string()).collect();
            println!("      {} -> must inform {}", region.rect, peers.join(", "));
        }
    }
}
