//! Live sharding demo on the tokio runtime: flood a BzFlag-style cluster
//! with clients and watch Matrix split the world in real time.
//!
//! ```sh
//! cargo run --example bzflag_shard
//! ```

use matrix_middleware::core::MatrixConfig;
use matrix_middleware::geometry::Point;
use matrix_middleware::rt::{RtCluster, RtConfig};
use matrix_middleware::sim::SimDuration;
use std::time::Duration;

#[tokio::main]
async fn main() {
    // Scaled-down thresholds so the demo splits with dozens (not hundreds)
    // of clients and finishes in seconds.
    let mut cfg = RtConfig {
        matrix: MatrixConfig {
            overload_clients: 12,
            underload_clients: 5,
            overload_streak: 2,
            underload_streak: 3,
            cooldown: SimDuration::from_millis(300),
            ..MatrixConfig::default()
        },
        ..RtConfig::default()
    };
    cfg.game.tick = SimDuration::from_millis(20);
    cfg.game.report_every_ticks = 3;

    let cluster = RtCluster::start(cfg).await;
    println!("t=0.0s  1 server up; streaming 40 tanks onto the field...");

    let mut tanks = Vec::new();
    for i in 0..40u32 {
        let x = 40.0 + (i as f64 * 97.0) % 720.0;
        let y = 40.0 + (i as f64 * 61.0) % 720.0;
        tanks.push(cluster.client(Point::new(x, y)));
        tokio::time::sleep(Duration::from_millis(10)).await;
    }

    let started = std::time::Instant::now();
    for _ in 0..30 {
        tokio::time::sleep(Duration::from_millis(200)).await;
        // Tanks drive and shoot.
        for (i, tank) in tanks.iter_mut().enumerate() {
            tank.drain();
            let t = started.elapsed().as_secs_f64();
            let x = 400.0 + 300.0 * (t * 0.2 + i as f64).sin();
            let y = 400.0 + 300.0 * (t * 0.3 + i as f64 * 0.7).cos();
            tank.move_to(Point::new(x, y));
            if i % 5 == 0 {
                tank.action(48);
            }
        }
        let snaps = cluster.snapshots().await;
        let active: Vec<String> = snaps
            .iter()
            .filter(|s| s.lifecycle == matrix_middleware::core::Lifecycle::Active)
            .map(|s| format!("{}:{}", s.id, s.clients))
            .collect();
        println!(
            "t={:>4.1}s  {} active servers  [{}]",
            started.elapsed().as_secs_f64(),
            active.len(),
            active.join(" ")
        );
    }

    let snaps = cluster.snapshots().await;
    let total_switches: u64 = tanks.iter().map(|t| t.counters().switches).sum();
    let routed: u64 = snaps.iter().map(|s| s.matrix_stats.peer_updates_out).sum();
    println!("\nsummary: {total_switches} client switches, {routed} inter-server updates routed");
    cluster.shutdown().await;
}
