//! The paper's Figure-2 experiment as a runnable demo: a 600-client
//! hotspot hits a BzFlag deployment, Matrix splits the world onto pool
//! servers, and reclaims them as the crowd drains.
//!
//! ```sh
//! cargo run --release --example hotspot_demo
//! ```

use matrix_middleware::experiments::fig2;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    println!("running the Figure-2 scenario (seed {seed}); ~20s in release mode...\n");
    let report = fig2::run(seed);

    println!("{}", fig2::render_2a(&report));
    println!("{}", fig2::render_2b(&report));
    println!("{}", fig2::summary(&report).render());

    println!(
        "paper shape check: up to {} servers (paper: 4), {} splits, {} reclaims, \
         {} servers at the end (paper: returns to baseline)",
        report.peak_servers,
        report.splits,
        report.reclaims,
        report.servers_in_use.last_value().unwrap_or(0.0),
    );
}
