//! Quickstart: bring up an in-process Matrix cluster, connect two
//! players, and watch an action propagate between them.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use matrix_middleware::geometry::Point;
use matrix_middleware::rt::{RtCluster, RtConfig};
use std::time::Duration;

#[tokio::main]
async fn main() {
    // One bootstrap server owning an 800x800 world with a 100-unit radius
    // of visibility, plus a pool of spare servers Matrix can call on.
    let cluster = RtCluster::start(RtConfig::default()).await;
    println!("cluster up; bootstrap server = {}", cluster.bootstrap_id());

    // Two tanks near each other on the battlefield.
    let mut alice = cluster.client(Point::new(100.0, 100.0));
    let mut bob = cluster.client(Point::new(130.0, 100.0));
    println!("alice joined as {}", alice.id());
    println!("bob   joined as {}", bob.id());

    // Wait for the joins to be acknowledged.
    let _ = tokio::time::timeout(Duration::from_secs(1), alice.recv()).await;
    let _ = tokio::time::timeout(Duration::from_secs(1), bob.recv()).await;

    // Alice fires: the game server acks her and fans the event out to
    // everyone inside the radius of visibility — including Bob.
    alice.action(64);
    let ack = tokio::time::timeout(Duration::from_secs(1), alice.recv()).await;
    println!("alice sees: {ack:?}");
    let seen = tokio::time::timeout(Duration::from_secs(1), bob.recv()).await;
    println!("bob   sees: {seen:?}");

    // Movement works the same way; Matrix routes by the packet's spatial
    // tag, so neither client ever learns how many servers exist.
    alice.move_to(Point::new(110.0, 105.0));
    bob.move_to(Point::new(128.0, 102.0));
    tokio::time::sleep(Duration::from_millis(100)).await;
    println!("alice counters: {:?}", alice.counters());
    println!("bob   counters: {:?}", bob.counters());

    let snaps = cluster.snapshots().await;
    for s in snaps.iter().filter(|s| s.clients > 0) {
        println!(
            "server {} hosts {} clients over {:?}",
            s.id, s.clients, s.range
        );
    }
    cluster.shutdown().await;
}
