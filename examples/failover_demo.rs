//! Failure injection demo: a Matrix server crashes mid-game and the
//! coordinator's heartbeat monitor reassigns its partition to a
//! neighbour; the orphaned clients reconnect and keep playing.
//!
//! ```sh
//! cargo run --release --example failover_demo
//! ```

use matrix_middleware::experiments::{Cluster, ClusterConfig};
use matrix_middleware::games::{GameSpec, Placement, PopulationEvent, WorkloadSchedule};
use matrix_middleware::geometry::ServerId;
use matrix_middleware::metrics::AsciiChart;
use matrix_middleware::sim::SimTime;

fn main() {
    let spec = GameSpec::bzflag();

    // A 500-tank battle: enough to split the world onto a second server.
    let schedule = WorkloadSchedule::new(SimTime::from_secs(180))
        .at(
            SimTime::ZERO,
            PopulationEvent::Join {
                n: 100,
                placement: Placement::Uniform,
            },
        )
        .at(
            SimTime::from_secs(10),
            PopulationEvent::Join {
                n: 400,
                placement: Placement::Hotspot {
                    center: spec.hotspot_a(),
                    spread: 2.0 * spec.radius,
                },
            },
        );

    let mut cfg = ClusterConfig::adaptive(spec);
    cfg.seed = 11;
    cfg.matrix.underload_clients = 10; // keep the children alive
                                       // The first split child (first pool id = initial_servers + 1 = 2)
                                       // crashes at t=60.
    cfg.crashes = vec![(SimTime::from_secs(60), ServerId(2))];

    println!("running: 500 tanks, server S2 crashes at t=60s...\n");
    let report = Cluster::new(cfg, schedule).run();

    println!("active servers over time (watch the dip at t=60):");
    println!(
        "{}",
        AsciiChart::new(90, 10).render(&[&report.servers_in_use])
    );

    println!("adaptation timeline:");
    for (t, event) in &report.timeline {
        println!("  {t}  {event}");
    }

    println!("\noutcome:");
    println!(
        "  failures declared by MC : {}",
        report.coordinator.failures_declared
    );
    println!(
        "  splits / reclaims       : {} / {}",
        report.splits, report.reclaims
    );
    let hosted: f64 = report
        .clients_per_server
        .iter()
        .filter_map(|s| s.last_value())
        .sum();
    println!("  clients hosted at end   : {hosted:.0} (of 500)");
    println!(
        "  p95 response latency    : {:.1} ms",
        report.response_latency_us.p95().unwrap_or(0.0) / 1000.0
    );
    assert!(
        report.coordinator.failures_declared >= 1,
        "the crash must be detected"
    );
    println!("\nthe partition of the dead server was absorbed; the game never stopped.");
}
