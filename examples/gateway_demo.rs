//! TCP gateway demo: expose an in-process Matrix cluster on a real
//! socket and serve remote game clients speaking newline-delimited JSON.
//!
//! ```sh
//! cargo run --release --example gateway_demo            # random port
//! cargo run --release --example gateway_demo -- 4177    # fixed port
//! ```
//!
//! Then, from any language, e.g.:
//!
//! ```text
//! $ nc 127.0.0.1 4177
//! {"t":"join","x":100.0,"y":100.0,"state":64}
//! {"t":"joined","server":1}
//! {"t":"action","x":100.0,"y":100.0,"bytes":32}
//! {"t":"ack","seq":0}
//! ```
//!
//! The gateway keeps each remote client pinned to whichever server the
//! middleware redirects it to; nearby clients receive each other's
//! events as `{"t":"batch",...}` updates.

use matrix_middleware::rt::{wire, RtCluster, RtConfig};
use std::time::Duration;

#[tokio::main]
async fn main() {
    let port: u16 = std::env::args()
        .nth(1)
        .and_then(|p| p.parse().ok())
        .unwrap_or(0);
    let cluster = RtCluster::start(RtConfig::default()).await;
    let addr = wire::spawn_gateway(
        ("127.0.0.1", port),
        cluster.router().clone(),
        cluster.bootstrap_id(),
    )
    .await
    .expect("bind gateway");
    println!("gateway listening on {addr}");
    println!("speak JSON lines, e.g.: {{\"t\":\"join\",\"x\":100.0,\"y\":100.0,\"state\":64}}");

    // Serve until interrupted.
    loop {
        tokio::time::sleep(Duration::from_secs(3600)).await;
    }
}
