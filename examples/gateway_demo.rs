//! TCP gateway demo: expose an in-process Matrix cluster on a real
//! socket and serve remote game clients speaking either wire protocol
//! v2 (length-prefixed binary frames, `docs/WIRE.md`) or v1
//! newline-delimited JSON — sniffed per connection.
//!
//! ```sh
//! cargo run --release --example gateway_demo            # random port
//! cargo run --release --example gateway_demo -- 4177    # fixed port
//! cargo run --release --example gateway_demo -- --codec json   # v1-only
//! ```
//!
//! Then, from any language, e.g.:
//!
//! ```text
//! $ nc 127.0.0.1 4177
//! {"t":"join","x":100.0,"y":100.0,"state":64}
//! {"t":"joined","server":1}
//! {"t":"action","x":100.0,"y":100.0,"bytes":32}
//! {"t":"ack","seq":0}
//! ```
//!
//! The gateway keeps each remote client pinned to whichever server the
//! middleware redirects it to; nearby clients receive each other's
//! events as `{"t":"batch",...}` updates.
//!
//! Pass `--predict` to enable the dead-reckoning pipeline (vision
//! rings + per-ring error budgets, per-event flushes): outer-ring
//! receivers then see velocity-tagged items
//! (`[x,y,bytes,entity,ring,vx,vy]`) and straight-line movement is
//! suppressed on the wire while their extrapolation stays within the
//! ring's budget.
//!
//! Pass `--telemetry` to turn the telemetry plane on
//! (`docs/OBSERVABILITY.md`); a live stats endpoint then answers
//! versioned queries on a second port:
//!
//! ```text
//! $ nc 127.0.0.1 <stats port>
//! {"t":"stats","v":1,"fmt":"prom"}
//! # TYPE matrix_joins counter
//! matrix_joins{server="1"} 2
//! ...
//! ```

use matrix_middleware::core::WireCodec;
use matrix_middleware::rt::{wire, RtCluster, RtConfig};
use matrix_middleware::sim::SimDuration;
use std::time::Duration;

#[tokio::main]
async fn main() {
    let mut port: u16 = 0;
    let mut predict = false;
    let mut telemetry = false;
    let mut codec = WireCodec::BinaryV2;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--predict" => predict = true,
            "--telemetry" => telemetry = true,
            "--codec" => {
                codec = match args.next().as_deref() {
                    Some("binary") => WireCodec::BinaryV2,
                    Some("json") => WireCodec::Json,
                    other => panic!("--codec binary|json, got {other:?}"),
                }
            }
            p => {
                port = p
                    .parse()
                    .expect("args: [port] [--predict] [--telemetry] [--codec binary|json]")
            }
        }
    }
    let mut cfg = RtConfig::default();
    cfg.game.telemetry = telemetry;
    cfg.game.codec = codec;
    if predict {
        cfg.game.batch_interval = SimDuration::from_millis(0);
        cfg.game.predict = true;
        cfg.game.set_rings(&[30.0, 150.0], &[1, 1]);
        cfg.game.set_error_budgets(&[0.0, 5.0]);
        println!("dead reckoning ON: rings 30/150, outer error budget 5.0");
    }
    let opts = wire::GatewayOptions::from_config(&cfg.game);
    let cluster = RtCluster::start(cfg).await;
    let addr = wire::spawn_gateway_with(
        ("127.0.0.1", port),
        cluster.router().clone(),
        cluster.bootstrap_id(),
        opts,
    )
    .await
    .expect("bind gateway");
    println!("gateway listening on {addr}");
    match codec {
        WireCodec::BinaryV2 => println!(
            "binary v2 accepted (open with a Hello frame); JSON lines also work, \
             e.g.: {{\"t\":\"join\",\"x\":100.0,\"y\":100.0,\"state\":64}}"
        ),
        WireCodec::Json => {
            println!("v1 JSON only, e.g.: {{\"t\":\"join\",\"x\":100.0,\"y\":100.0,\"state\":64}}")
        }
    }
    if telemetry {
        let stats = cluster
            .serve_stats(("127.0.0.1", 0))
            .await
            .expect("bind stats endpoint");
        println!("stats endpoint on {stats} (query: {{\"t\":\"stats\",\"v\":1,\"fmt\":\"prom\"}})");
    }

    // Serve until interrupted.
    loop {
        tokio::time::sleep(Duration::from_secs(3600)).await;
    }
}
