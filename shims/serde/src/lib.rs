//! Marker-trait stand-in for the `serde` facade, for offline builds.
//!
//! The workspace builds with no network access, so the real serde cannot
//! be fetched. Runtime serialisation goes through the hand-written codec
//! in `matrix-core::codec`; the `#[derive(Serialize, Deserialize)]`
//! annotations across the workspace are kept as documentation of which
//! types form the wire surface, and so the real serde can be dropped back
//! in later. Here the traits are blanket-implemented markers and the
//! derives (from the sibling `serde_derive` shim) expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; blanket-implemented.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`; blanket-implemented.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
