//! No-op `serde_derive` stand-in for offline builds.
//!
//! This workspace builds in environments with no network access and no
//! crates.io mirror, so the real `serde` cannot be fetched. The project
//! never serialises through serde at runtime (the wire codec in
//! `matrix-core::codec` is hand-written), but the sources keep the
//! idiomatic `#[derive(Serialize, Deserialize)]` annotations so they can
//! be switched to the real serde by swapping this shim out of the
//! workspace. The derives therefore expand to nothing; the sibling
//! `serde` shim provides blanket marker impls.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` request.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` request.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
