//! Attribute macros for the vendored `tokio` stand-in.
//!
//! `#[tokio::main]` and `#[tokio::test]` rewrite an `async fn` into a
//! synchronous one whose body runs under the shim's `block_on` executor.
//! Runtime-flavour arguments (`flavor`, `worker_threads`, ...) are
//! accepted and ignored: the shim executor is thread-per-task, so every
//! flavour already runs with real parallelism.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Rewrites `async fn main` to run under the shim executor.
#[proc_macro_attribute]
pub fn main(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, false)
}

/// Rewrites an `async fn` test into a `#[test]` running under the shim
/// executor.
#[proc_macro_attribute]
pub fn test(_attr: TokenStream, item: TokenStream) -> TokenStream {
    rewrite(item, true)
}

fn rewrite(item: TokenStream, is_test: bool) -> TokenStream {
    let tokens: Vec<TokenTree> = item.into_iter().collect();
    // The function body is the last top-level brace group.
    let body_idx = tokens
        .iter()
        .rposition(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Brace))
        .expect("#[tokio::main]/#[tokio::test] requires a function with a body");
    let body = match &tokens[body_idx] {
        TokenTree::Group(g) => g.stream(),
        _ => unreachable!(),
    };
    // Signature: every token before the body, minus the `async` keyword.
    let mut sig = String::new();
    for (i, t) in tokens.iter().enumerate() {
        if i == body_idx {
            break;
        }
        if let TokenTree::Ident(id) = t {
            if id.to_string() == "async" {
                continue;
            }
        }
        sig.push_str(&t.to_string());
        sig.push(' ');
    }
    let test_attr = if is_test {
        "#[::core::prelude::v1::test]\n"
    } else {
        ""
    };
    let out =
        format!("{test_attr}{sig} {{ ::tokio::runtime::block_on(async move {{ {body} }}) }}",);
    out.parse().expect("generated function must parse")
}
