//! A small thread-per-task async runtime standing in for `tokio`.
//!
//! This workspace builds in environments with no network access, so the
//! real tokio cannot be fetched. `matrix-rt` only needs a modest slice of
//! the API — unbounded channels, oneshots, `spawn`, `select!`, timers and
//! a TCP accept/connect path — and this crate implements exactly that
//! slice with honest semantics:
//!
//! * **Executor** — `runtime::block_on` polls a future on the current
//!   thread with a park/unpark waker; `spawn` runs each task on its own
//!   OS thread. With a dozen node tasks per cluster this is well inside
//!   sensible thread counts, and it gives true parallelism.
//! * **Channels** — `sync::mpsc::unbounded_channel` and `sync::oneshot`
//!   are mutex-and-waker implementations with tokio's closed/disconnect
//!   semantics.
//! * **Timers** — one global timer thread wakes sleepers; `sleep`,
//!   `timeout` and `interval` (with `MissedTickBehavior::Delay`
//!   semantics) build on it.
//! * **select!** — supports the two- and three-branch `pat = expr =>
//!   block` form used in this workspace, polling branches in declaration
//!   order (i.e. like `tokio::select! { biased; ... }`).
//! * **TCP** — `net::TcpListener`/`TcpStream` wrap the std types;
//!   `io::BufReader::lines` pumps a blocking reader thread into an async
//!   channel so reads compose with `select!`.
//!
//! Swap the real tokio back in by removing this shim from the workspace;
//! the API subset is call-compatible.

#![forbid(unsafe_code)]

pub use tokio_macros::{main, test};

pub mod runtime {
    //! The `block_on` executor.

    use std::future::Future;
    use std::pin::pin;
    use std::sync::Arc;
    use std::task::{Context, Poll, Wake, Waker};
    use std::thread::{self, Thread};

    struct ThreadWaker(Thread);

    impl Wake for ThreadWaker {
        fn wake(self: Arc<Self>) {
            self.0.unpark();
        }
        fn wake_by_ref(self: &Arc<Self>) {
            self.0.unpark();
        }
    }

    /// Runs a future to completion on the current thread, parking between
    /// polls.
    pub fn block_on<F: Future>(fut: F) -> F::Output {
        let mut fut = pin!(fut);
        let waker = Waker::from(Arc::new(ThreadWaker(thread::current())));
        let mut cx = Context::from_waker(&waker);
        loop {
            match fut.as_mut().poll(&mut cx) {
                Poll::Ready(v) => return v,
                Poll::Pending => thread::park(),
            }
        }
    }
}

pub mod task {
    //! Task spawning (thread-per-task).

    use crate::sync::oneshot;
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    /// Error returned when a spawned task's thread died before producing
    /// a value.
    #[derive(Debug)]
    pub struct JoinError;

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "task failed")
        }
    }

    impl std::error::Error for JoinError {}

    /// Handle to a spawned task; awaiting it yields the task's output.
    #[derive(Debug)]
    pub struct JoinHandle<T> {
        rx: oneshot::Receiver<T>,
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            Pin::new(&mut self.rx)
                .poll(cx)
                .map(|r| r.map_err(|_| JoinError))
        }
    }

    /// Spawns a future on its own OS thread.
    pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
    where
        F: Future + Send + 'static,
        F::Output: Send + 'static,
    {
        let (tx, rx) = oneshot::channel();
        std::thread::Builder::new()
            .name("tokio-shim-task".into())
            .spawn(move || {
                let out = crate::runtime::block_on(fut);
                let _ = tx.send(out);
            })
            .expect("failed to spawn task thread");
        JoinHandle { rx }
    }
}

pub use task::spawn;

pub mod sync {
    //! Channels: unbounded mpsc and oneshot.

    pub mod mpsc {
        //! Unbounded multi-producer single-consumer channel.

        use std::collections::VecDeque;
        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex};
        use std::task::{Context, Poll, Waker};

        struct State<T> {
            queue: VecDeque<T>,
            senders: usize,
            receiver_alive: bool,
            waker: Option<Waker>,
        }

        struct Shared<T> {
            state: Mutex<State<T>>,
        }

        /// Error: the receiver was dropped or closed.
        #[derive(Debug, PartialEq, Eq)]
        pub struct SendError<T>(pub T);

        impl<T> std::fmt::Display for SendError<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "channel closed")
            }
        }

        /// Error from [`UnboundedReceiver::try_recv`].
        #[derive(Debug, PartialEq, Eq)]
        pub enum TryRecvError {
            /// No message is currently queued.
            Empty,
            /// All senders are gone and the queue is drained.
            Disconnected,
        }

        /// The sending half.
        pub struct UnboundedSender<T> {
            shared: Arc<Shared<T>>,
        }

        /// The receiving half.
        pub struct UnboundedReceiver<T> {
            shared: Arc<Shared<T>>,
        }

        impl<T> std::fmt::Debug for UnboundedSender<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "UnboundedSender")
            }
        }

        impl<T> std::fmt::Debug for UnboundedReceiver<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "UnboundedReceiver")
            }
        }

        /// Creates an unbounded channel.
        pub fn unbounded_channel<T>() -> (UnboundedSender<T>, UnboundedReceiver<T>) {
            let shared = Arc::new(Shared {
                state: Mutex::new(State {
                    queue: VecDeque::new(),
                    senders: 1,
                    receiver_alive: true,
                    waker: None,
                }),
            });
            (
                UnboundedSender {
                    shared: shared.clone(),
                },
                UnboundedReceiver { shared },
            )
        }

        impl<T> Clone for UnboundedSender<T> {
            fn clone(&self) -> Self {
                self.shared.state.lock().expect("mpsc lock").senders += 1;
                UnboundedSender {
                    shared: self.shared.clone(),
                }
            }
        }

        impl<T> Drop for UnboundedSender<T> {
            fn drop(&mut self) {
                let waker = {
                    let mut st = self.shared.state.lock().expect("mpsc lock");
                    st.senders -= 1;
                    if st.senders == 0 {
                        st.waker.take()
                    } else {
                        None
                    }
                };
                if let Some(w) = waker {
                    w.wake();
                }
            }
        }

        impl<T> Drop for UnboundedReceiver<T> {
            fn drop(&mut self) {
                self.shared.state.lock().expect("mpsc lock").receiver_alive = false;
            }
        }

        impl<T> UnboundedSender<T> {
            /// Queues a message; fails if the receiver is gone.
            pub fn send(&self, value: T) -> Result<(), SendError<T>> {
                let waker = {
                    let mut st = self.shared.state.lock().expect("mpsc lock");
                    if !st.receiver_alive {
                        return Err(SendError(value));
                    }
                    st.queue.push_back(value);
                    st.waker.take()
                };
                if let Some(w) = waker {
                    w.wake();
                }
                Ok(())
            }
        }

        impl<T> UnboundedReceiver<T> {
            /// Awaits the next message; `None` once all senders are gone
            /// and the queue is drained.
            pub fn recv(&mut self) -> Recv<'_, T> {
                Recv { rx: self }
            }

            /// Non-blocking receive.
            pub fn try_recv(&mut self) -> Result<T, TryRecvError> {
                let mut st = self.shared.state.lock().expect("mpsc lock");
                match st.queue.pop_front() {
                    Some(v) => Ok(v),
                    None if st.senders == 0 => Err(TryRecvError::Disconnected),
                    None => Err(TryRecvError::Empty),
                }
            }

            /// Prevents further sends; queued messages can still be
            /// received.
            pub fn close(&mut self) {
                self.shared.state.lock().expect("mpsc lock").receiver_alive = false;
            }
        }

        /// Future returned by [`UnboundedReceiver::recv`].
        pub struct Recv<'a, T> {
            rx: &'a mut UnboundedReceiver<T>,
        }

        impl<T> Future for Recv<'_, T> {
            type Output = Option<T>;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut st = self.rx.shared.state.lock().expect("mpsc lock");
                if let Some(v) = st.queue.pop_front() {
                    return Poll::Ready(Some(v));
                }
                if st.senders == 0 {
                    return Poll::Ready(None);
                }
                st.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }

    pub mod oneshot {
        //! Single-value channel.

        use std::future::Future;
        use std::pin::Pin;
        use std::sync::{Arc, Mutex};
        use std::task::{Context, Poll, Waker};

        struct State<T> {
            value: Option<T>,
            sender_alive: bool,
            waker: Option<Waker>,
        }

        /// The sender was dropped without sending.
        #[derive(Debug, PartialEq, Eq)]
        pub struct RecvError;

        impl std::fmt::Display for RecvError {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "oneshot sender dropped")
            }
        }

        impl std::error::Error for RecvError {}

        /// Sending half: consumes itself on send.
        pub struct Sender<T> {
            shared: Arc<Mutex<State<T>>>,
        }

        /// Receiving half; a future yielding `Result<T, RecvError>`.
        pub struct Receiver<T> {
            shared: Arc<Mutex<State<T>>>,
        }

        impl<T> std::fmt::Debug for Sender<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "oneshot::Sender")
            }
        }

        impl<T> std::fmt::Debug for Receiver<T> {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "oneshot::Receiver")
            }
        }

        /// Creates a oneshot channel.
        pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
            let shared = Arc::new(Mutex::new(State {
                value: None,
                sender_alive: true,
                waker: None,
            }));
            (
                Sender {
                    shared: shared.clone(),
                },
                Receiver { shared },
            )
        }

        impl<T> Sender<T> {
            /// Delivers the value; fails (returning it) if the receiver is
            /// gone.
            pub fn send(self, value: T) -> Result<(), T> {
                let waker = {
                    let mut st = self.shared.lock().expect("oneshot lock");
                    if Arc::strong_count(&self.shared) < 2 {
                        return Err(value);
                    }
                    st.value = Some(value);
                    st.waker.take()
                };
                if let Some(w) = waker {
                    w.wake();
                }
                Ok(())
            }
        }

        impl<T> Drop for Sender<T> {
            fn drop(&mut self) {
                let waker = {
                    let mut st = self.shared.lock().expect("oneshot lock");
                    st.sender_alive = false;
                    st.waker.take()
                };
                if let Some(w) = waker {
                    w.wake();
                }
            }
        }

        impl<T> Future for Receiver<T> {
            type Output = Result<T, RecvError>;
            fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
                let mut st = self.shared.lock().expect("oneshot lock");
                if let Some(v) = st.value.take() {
                    return Poll::Ready(Ok(v));
                }
                if !st.sender_alive {
                    return Poll::Ready(Err(RecvError));
                }
                st.waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

pub mod time {
    //! Timers: sleep, timeout, interval.

    use std::future::Future;
    use std::pin::Pin;
    use std::sync::{Condvar, Mutex, OnceLock};
    use std::task::{Context, Poll, Waker};
    use std::time::{Duration, Instant};

    struct TimerQueue {
        entries: Mutex<Vec<(Instant, Waker)>>,
        cond: Condvar,
    }

    fn timer() -> &'static TimerQueue {
        static TIMER: OnceLock<&'static TimerQueue> = OnceLock::new();
        TIMER.get_or_init(|| {
            let q: &'static TimerQueue = Box::leak(Box::new(TimerQueue {
                entries: Mutex::new(Vec::new()),
                cond: Condvar::new(),
            }));
            std::thread::Builder::new()
                .name("tokio-shim-timer".into())
                .spawn(move || timer_loop(q))
                .expect("failed to spawn timer thread");
            q
        })
    }

    fn timer_loop(q: &'static TimerQueue) {
        let mut entries = q.entries.lock().expect("timer lock");
        loop {
            let now = Instant::now();
            let mut due = Vec::new();
            entries.retain(|(at, w)| {
                if *at <= now {
                    due.push(w.clone());
                    false
                } else {
                    true
                }
            });
            if !due.is_empty() {
                drop(entries);
                for w in due {
                    w.wake();
                }
                entries = q.entries.lock().expect("timer lock");
                continue;
            }
            entries = match entries.iter().map(|(at, _)| *at).min() {
                Some(next) => {
                    let wait = next.saturating_duration_since(now);
                    q.cond.wait_timeout(entries, wait).expect("timer lock").0
                }
                None => q.cond.wait(entries).expect("timer lock"),
            };
        }
    }

    fn register(deadline: Instant, waker: Waker) {
        let q = timer();
        q.entries
            .lock()
            .expect("timer lock")
            .push((deadline, waker));
        q.cond.notify_one();
    }

    /// Future returned by [`sleep`].
    pub struct Sleep {
        deadline: Instant,
    }

    impl Future for Sleep {
        type Output = ();
        fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if Instant::now() >= self.deadline {
                Poll::Ready(())
            } else {
                register(self.deadline, cx.waker().clone());
                Poll::Pending
            }
        }
    }

    /// Completes after `duration`.
    pub fn sleep(duration: Duration) -> Sleep {
        Sleep {
            deadline: Instant::now() + duration,
        }
    }

    /// The deadline elapsed before the wrapped future finished.
    #[derive(Debug, PartialEq, Eq)]
    pub struct Elapsed;

    impl std::fmt::Display for Elapsed {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "deadline elapsed")
        }
    }

    impl std::error::Error for Elapsed {}

    /// Future returned by [`timeout`].
    pub struct Timeout<F> {
        fut: Pin<Box<F>>,
        deadline: Instant,
    }

    impl<F: Future> Future for Timeout<F> {
        type Output = Result<F::Output, Elapsed>;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            if let Poll::Ready(v) = self.fut.as_mut().poll(cx) {
                return Poll::Ready(Ok(v));
            }
            if Instant::now() >= self.deadline {
                return Poll::Ready(Err(Elapsed));
            }
            register(self.deadline, cx.waker().clone());
            Poll::Pending
        }
    }

    /// Bounds a future's completion time.
    pub fn timeout<F: Future>(duration: Duration, fut: F) -> Timeout<F> {
        Timeout {
            fut: Box::pin(fut),
            deadline: Instant::now() + duration,
        }
    }

    /// What to do when interval ticks are missed. The shim always behaves
    /// like [`MissedTickBehavior::Delay`] (next tick is re-anchored to
    /// "now + period"), which is the behaviour this workspace selects.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub enum MissedTickBehavior {
        /// Fire missed ticks back to back.
        #[default]
        Burst,
        /// Re-anchor after a missed tick.
        Delay,
        /// Skip missed ticks.
        Skip,
    }

    /// A periodic timer; the first tick completes immediately.
    pub struct Interval {
        next: Instant,
        period: Duration,
    }

    impl Interval {
        /// Completes at the next tick instant.
        pub fn tick(&mut self) -> Tick<'_> {
            Tick { interval: self }
        }

        /// Accepted for API compatibility; the shim always uses `Delay`
        /// semantics.
        pub fn set_missed_tick_behavior(&mut self, _behavior: MissedTickBehavior) {}
    }

    /// Future returned by [`Interval::tick`].
    pub struct Tick<'a> {
        interval: &'a mut Interval,
    }

    impl Future for Tick<'_> {
        type Output = Instant;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Instant> {
            let now = Instant::now();
            if now >= self.interval.next {
                let period = self.interval.period;
                self.interval.next = now + period;
                return Poll::Ready(now);
            }
            register(self.interval.next, cx.waker().clone());
            Poll::Pending
        }
    }

    /// Creates a periodic timer whose first tick fires immediately.
    pub fn interval(period: Duration) -> Interval {
        Interval {
            next: Instant::now(),
            period,
        }
    }
}

pub mod net {
    //! TCP wrappers over the std networking types.
    //!
    //! `accept`/`connect` perform blocking syscalls inside async fns; with
    //! the thread-per-task executor each task owns its thread, so this
    //! blocks nothing else.

    use std::io;
    use std::net::SocketAddr;
    pub use std::net::ToSocketAddrs;

    /// A TCP listener.
    #[derive(Debug)]
    pub struct TcpListener(std::net::TcpListener);

    impl TcpListener {
        /// Binds to the first resolvable address.
        pub async fn bind<A: ToSocketAddrs>(addr: A) -> io::Result<TcpListener> {
            Ok(TcpListener(std::net::TcpListener::bind(addr)?))
        }

        /// The bound local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.0.local_addr()
        }

        /// Accepts one connection (blocking the calling task's thread).
        pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, addr) = self.0.accept()?;
            Ok((TcpStream(stream), addr))
        }
    }

    /// A TCP connection.
    #[derive(Debug)]
    pub struct TcpStream(pub(crate) std::net::TcpStream);

    impl TcpStream {
        /// Connects to the first resolvable address.
        pub async fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<TcpStream> {
            Ok(TcpStream(std::net::TcpStream::connect(addr)?))
        }

        /// Splits into independently owned read/write halves.
        pub fn into_split(self) -> (tcp::OwnedReadHalf, tcp::OwnedWriteHalf) {
            let read = self.0.try_clone().expect("tcp stream clone");
            (tcp::OwnedReadHalf(read), tcp::OwnedWriteHalf(self.0))
        }
    }

    pub mod tcp {
        //! Owned stream halves.

        /// The read half of a split [`super::TcpStream`].
        #[derive(Debug)]
        pub struct OwnedReadHalf(pub(crate) std::net::TcpStream);

        /// The write half of a split [`super::TcpStream`].
        #[derive(Debug)]
        pub struct OwnedWriteHalf(pub(crate) std::net::TcpStream);

        impl Drop for OwnedWriteHalf {
            fn drop(&mut self) {
                // The read half is a `try_clone` of the same socket, often
                // parked in a blocking read on its own thread; without an
                // explicit shutdown the connection would stay half-open
                // after the writer is gone (a remote peer would hang
                // instead of seeing EOF).
                let _ = self.0.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

pub mod io {
    //! Async-flavoured line reading and writing over the TCP halves.

    use crate::net::tcp::{OwnedReadHalf, OwnedWriteHalf};
    use crate::sync::mpsc;
    use std::future::{ready, Ready};
    use std::io::{self, BufRead, Write};
    use std::marker::PhantomData;

    /// Buffered reader wrapper; `lines()` hands the underlying stream to
    /// a pump thread feeding an async channel.
    #[derive(Debug)]
    pub struct BufReader<R> {
        inner: R,
    }

    impl<R> BufReader<R> {
        /// Wraps a reader.
        pub fn new(inner: R) -> BufReader<R> {
            BufReader { inner }
        }
    }

    /// Line stream over a reader (see [`AsyncBufReadExt::lines`]).
    #[derive(Debug)]
    pub struct Lines<R> {
        rx: mpsc::UnboundedReceiver<io::Result<String>>,
        _reader: PhantomData<R>,
    }

    impl<R> Lines<R> {
        /// The next line, without its terminator; `Ok(None)` at EOF.
        pub async fn next_line(&mut self) -> io::Result<Option<String>> {
            match self.rx.recv().await {
                Some(Ok(line)) => Ok(Some(line)),
                Some(Err(e)) => Err(e),
                None => Ok(None),
            }
        }
    }

    /// Subset of tokio's `AsyncBufReadExt`: line streaming.
    pub trait AsyncBufReadExt {
        /// Converts the reader into a line stream.
        fn lines(self) -> Lines<Self>
        where
            Self: Sized;
    }

    impl AsyncBufReadExt for BufReader<OwnedReadHalf> {
        fn lines(self) -> Lines<Self> {
            let (tx, rx) = mpsc::unbounded_channel();
            let stream = self.inner.0;
            std::thread::Builder::new()
                .name("tokio-shim-reader".into())
                .spawn(move || {
                    let mut reader = std::io::BufReader::new(stream);
                    loop {
                        let mut line = String::new();
                        match reader.read_line(&mut line) {
                            Ok(0) => break,
                            Ok(_) => {
                                while line.ends_with('\n') || line.ends_with('\r') {
                                    line.pop();
                                }
                                if tx.send(Ok(line)).is_err() {
                                    break;
                                }
                            }
                            Err(e) => {
                                let _ = tx.send(Err(e));
                                break;
                            }
                        }
                    }
                })
                .expect("failed to spawn reader thread");
            Lines {
                rx,
                _reader: PhantomData,
            }
        }
    }

    /// Raw byte-chunk stream over a reader (see
    /// [`AsyncChunkReadExt::into_chunks`]). Chunk boundaries are
    /// arbitrary — whatever one socket read returned — so consumers
    /// must delimit their own frames (length prefixes, magic bytes).
    #[derive(Debug)]
    pub struct Chunks {
        rx: mpsc::UnboundedReceiver<io::Result<Vec<u8>>>,
    }

    impl Chunks {
        /// The next chunk of received bytes; `Ok(None)` at EOF.
        pub async fn next_chunk(&mut self) -> io::Result<Option<Vec<u8>>> {
            match self.rx.recv().await {
                Some(Ok(chunk)) => Ok(Some(chunk)),
                Some(Err(e)) => Err(e),
                None => Ok(None),
            }
        }
    }

    /// Byte-chunk streaming for framing-agnostic protocols (the binary
    /// wire codec delimits its own frames), mirroring the [`Lines`]
    /// pump-thread pattern.
    pub trait AsyncChunkReadExt {
        /// Converts the reader into a chunk stream.
        fn into_chunks(self) -> Chunks;
    }

    impl AsyncChunkReadExt for OwnedReadHalf {
        fn into_chunks(self) -> Chunks {
            let (tx, rx) = mpsc::unbounded_channel();
            let mut stream = self.0;
            std::thread::Builder::new()
                .name("tokio-shim-chunk-reader".into())
                .spawn(move || {
                    let mut buf = [0u8; 16 * 1024];
                    loop {
                        match io::Read::read(&mut stream, &mut buf) {
                            Ok(0) => break,
                            Ok(n) => {
                                if tx.send(Ok(buf[..n].to_vec())).is_err() {
                                    break;
                                }
                            }
                            Err(e) => {
                                let _ = tx.send(Err(e));
                                break;
                            }
                        }
                    }
                })
                .expect("failed to spawn chunk-reader thread");
            Chunks { rx }
        }
    }

    /// Subset of tokio's `AsyncWriteExt`: whole-buffer writes.
    pub trait AsyncWriteExt {
        /// Writes the entire buffer (performed eagerly; the returned
        /// future is immediately ready).
        fn write_all<'a>(&'a mut self, buf: &'a [u8]) -> Ready<io::Result<()>>;
    }

    impl AsyncWriteExt for OwnedWriteHalf {
        fn write_all<'a>(&'a mut self, buf: &'a [u8]) -> Ready<io::Result<()>> {
            ready(self.0.write_all(buf).and_then(|()| self.0.flush()))
        }
    }
}

pub mod macros {
    //! Support types for the [`select!`](crate::select) macro.

    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    /// Outcome of a two-branch select.
    pub enum Either2<A, B> {
        /// The first branch completed.
        First(A),
        /// The second branch completed.
        Second(B),
    }

    /// Outcome of a three-branch select.
    pub enum Either3<A, B, C> {
        /// The first branch completed.
        First(A),
        /// The second branch completed.
        Second(B),
        /// The third branch completed.
        Third(C),
    }

    /// Polls two futures in order, yielding whichever finishes first.
    pub struct Select2<F1, F2> {
        f1: Pin<Box<F1>>,
        f2: Pin<Box<F2>>,
    }

    /// Builds a [`Select2`].
    pub fn select2<F1: Future, F2: Future>(f1: F1, f2: F2) -> Select2<F1, F2> {
        Select2 {
            f1: Box::pin(f1),
            f2: Box::pin(f2),
        }
    }

    impl<F1: Future, F2: Future> Future for Select2<F1, F2> {
        type Output = Either2<F1::Output, F2::Output>;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            if let Poll::Ready(v) = self.f1.as_mut().poll(cx) {
                return Poll::Ready(Either2::First(v));
            }
            if let Poll::Ready(v) = self.f2.as_mut().poll(cx) {
                return Poll::Ready(Either2::Second(v));
            }
            Poll::Pending
        }
    }

    /// Polls three futures in order, yielding whichever finishes first.
    pub struct Select3<F1, F2, F3> {
        f1: Pin<Box<F1>>,
        f2: Pin<Box<F2>>,
        f3: Pin<Box<F3>>,
    }

    /// Builds a [`Select3`].
    pub fn select3<F1: Future, F2: Future, F3: Future>(
        f1: F1,
        f2: F2,
        f3: F3,
    ) -> Select3<F1, F2, F3> {
        Select3 {
            f1: Box::pin(f1),
            f2: Box::pin(f2),
            f3: Box::pin(f3),
        }
    }

    impl<F1: Future, F2: Future, F3: Future> Future for Select3<F1, F2, F3> {
        type Output = Either3<F1::Output, F2::Output, F3::Output>;
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
            if let Poll::Ready(v) = self.f1.as_mut().poll(cx) {
                return Poll::Ready(Either3::First(v));
            }
            if let Poll::Ready(v) = self.f2.as_mut().poll(cx) {
                return Poll::Ready(Either3::Second(v));
            }
            if let Poll::Ready(v) = self.f3.as_mut().poll(cx) {
                return Poll::Ready(Either3::Third(v));
            }
            Poll::Pending
        }
    }
}

/// Two- or three-branch `select!` over `pat = expr => block` arms,
/// polled in declaration order (equivalent to tokio's `biased;` mode).
#[macro_export]
macro_rules! select {
    ($p1:pat = $e1:expr => $b1:block $p2:pat = $e2:expr => $b2:block $(,)?) => {
        match $crate::macros::select2($e1, $e2).await {
            $crate::macros::Either2::First($p1) => $b1,
            $crate::macros::Either2::Second($p2) => $b2,
        }
    };
    ($p1:pat = $e1:expr => $b1:block $p2:pat = $e2:expr => $b2:block $p3:pat = $e3:expr => $b3:block $(,)?) => {
        match $crate::macros::select3($e1, $e2, $e3).await {
            $crate::macros::Either3::First($p1) => $b1,
            $crate::macros::Either3::Second($p2) => $b2,
            $crate::macros::Either3::Third($p3) => $b3,
        }
    };
}

#[cfg(test)]
mod tests {
    use std::time::{Duration, Instant};

    #[test]
    fn block_on_and_sleep() {
        let start = Instant::now();
        crate::runtime::block_on(crate::time::sleep(Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(25));
    }

    #[test]
    fn mpsc_round_trip_and_close() {
        crate::runtime::block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel();
            tx.send(1u32).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.try_recv(), Ok(2));
            drop(tx);
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn spawn_crosses_threads() {
        crate::runtime::block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel();
            crate::spawn(async move {
                crate::time::sleep(Duration::from_millis(10)).await;
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv().await, Some(42));
        });
    }

    #[test]
    fn oneshot_and_join_handle() {
        crate::runtime::block_on(async {
            let handle = crate::spawn(async { 7u32 });
            assert_eq!(handle.await.unwrap(), 7);
        });
    }

    #[test]
    fn timeout_elapses() {
        crate::runtime::block_on(async {
            let slow = crate::time::sleep(Duration::from_secs(5));
            let out = crate::time::timeout(Duration::from_millis(20), slow).await;
            assert!(out.is_err());
        });
    }

    #[test]
    fn timeout_passes_value() {
        crate::runtime::block_on(async {
            let out = crate::time::timeout(Duration::from_secs(1), async { 9 }).await;
            assert_eq!(out.unwrap(), 9);
        });
    }

    #[test]
    fn select_takes_ready_branch() {
        crate::runtime::block_on(async {
            let (tx, mut rx) = crate::sync::mpsc::unbounded_channel();
            tx.send(5u32).unwrap();
            let mut ticker = crate::time::interval(Duration::from_secs(10));
            // Consume the immediate first tick so the timer branch pends.
            ticker.tick().await;
            crate::select! {
                v = rx.recv() => {
                    assert_eq!(v, Some(5));
                }
                _ = ticker.tick() => {
                    panic!("timer must not win");
                }
            }
        });
    }

    #[test]
    fn interval_ticks_repeatedly() {
        crate::runtime::block_on(async {
            let start = Instant::now();
            let mut ticker = crate::time::interval(Duration::from_millis(10));
            for _ in 0..3 {
                ticker.tick().await;
            }
            // First tick is immediate, the next two wait ~10ms each.
            assert!(start.elapsed() >= Duration::from_millis(15));
        });
    }
}
