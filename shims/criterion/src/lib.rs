//! Minimal benchmark harness standing in for `criterion`.
//!
//! Offline builds cannot fetch the real criterion, so this crate
//! implements the subset of its API the bench targets use:
//! `Criterion::bench_function`, benchmark groups with
//! `bench_function`/`bench_with_input`/`sample_size`/`finish`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement is deliberately simple and honest: each benchmark is
//! warmed up, the iteration count is calibrated to a target sample
//! duration, several samples are taken, and the best (least-noise)
//! sample's per-iteration time is reported to stdout as
//! `<name> ... <time> ns/iter`. Numbers are indicative, not
//! statistically rigorous — good enough to compare O(n) against O(1)
//! paths and to track large regressions.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Opaque-value helper matching criterion's parameterised bench ids.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered as `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Nanoseconds per iteration of the best sample, filled by `iter`.
    best_ns: f64,
    target: Duration,
    samples: usize,
}

impl Bencher {
    /// Measures a closure: warmup, calibration, then `samples` timed
    /// runs; the fastest per-iteration time is kept.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration: find an iteration count filling ~target.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target / 4 || iters >= 1 << 30 {
                let per_iter = elapsed.as_nanos() as f64 / iters as f64;
                let goal = self.target.as_nanos() as f64;
                iters = ((goal / per_iter.max(0.1)) as u64).clamp(1, 1 << 30);
                break;
            }
            iters = iters.saturating_mul(4);
        }
        // Timed samples.
        let mut best = f64::INFINITY;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let per_iter = start.elapsed().as_nanos() as f64 / iters as f64;
            if per_iter < best {
                best = per_iter;
            }
        }
        self.best_ns = best;
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        best_ns: f64::NAN,
        target: Duration::from_millis(40),
        // Criterion's sample_size means something else; reuse it as a
        // rough "how many timed samples" knob, bounded for run time.
        samples: sample_size.clamp(3, 10),
    };
    f(&mut bencher);
    let ns = bencher.best_ns;
    let pretty = if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    };
    println!("bench: {name:<48} {pretty:>18}");
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.effective_samples(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.effective_samples(),
            _parent: self,
        }
    }

    /// Accepted for API compatibility with `criterion_group!` configs.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size == 0 {
            5
        } else {
            self.sample_size
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl std::fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            &mut wrapped,
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group-runner function over benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
    }
}
