//! Minimal stand-in for the `bytes` crate, for offline builds.
//!
//! Provides the small slice of the `bytes::Bytes` API the middleware
//! uses: a cheaply cloneable, immutable byte buffer. Backed by
//! `Arc<[u8]>`, so clones are reference-counted exactly like the real
//! crate's shallow clones.

#![forbid(unsafe_code)]

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes(Arc::from(Vec::new()))
    }

    /// Wraps a static byte slice.
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes(Arc::from(bytes))
    }

    /// Copies a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes(Arc::from(data))
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes(Arc::from(v))
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes(Arc::from(v.into_bytes()))
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"{} bytes\"", self.0.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_len() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
    }

    #[test]
    fn empty() {
        assert!(Bytes::new().is_empty());
        assert_eq!(Bytes::default(), Bytes::new());
    }
}
