//! # matrix-middleware
//!
//! Adaptive middleware for distributed multiplayer games — a
//! production-quality reproduction of *Balan, Ebling, Castro, Misra:
//! "Matrix: Adaptive Middleware for Distributed Multiplayer Games"*
//! (ACM/IFIP/USENIX Middleware 2005).
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`] — the middleware itself: spatially tagged routing, overlap
//!   tables, split/reclaim adaptation, the coordinator and resource pool.
//! * [`geometry`] — partitions, consistency sets (Equation 1), overlap
//!   regions and split strategies.
//! * [`sim`] / [`metrics`] — the deterministic simulation substrate and
//!   result tooling used by the experiment harness.
//! * [`games`] — BzFlag / Quake 2 / Daimonin workload emulations (plus
//!   the synthetic high-velocity racer that stresses dead reckoning).
//! * [`predict`] — dead reckoning: motion models, sender-side
//!   suppression and receiver-side extrapolation.
//! * [`replication`] — fault tolerance: region snapshots, the
//!   warm-standby replica log and the failover receiver.
//! * [`telemetry`] — the observability plane: counters, log-bucketed
//!   latency histograms, per-stage flush spans and the flight recorder
//!   (see `docs/OBSERVABILITY.md`).
//! * [`rt`] — the tokio runtime (in-process cluster + TCP gateway).
//! * [`experiments`] — drivers that regenerate every table and figure of
//!   the paper's evaluation.
//!
//! # Quickstart
//!
//! ```no_run
//! use matrix_middleware::rt::{RtCluster, RtConfig};
//! use matrix_middleware::geometry::Point;
//!
//! # async fn demo() {
//! let cluster = RtCluster::start(RtConfig::default()).await;
//! let mut player = cluster.client(Point::new(100.0, 100.0));
//! player.action(64);
//! println!("{:?}", player.recv().await);
//! cluster.shutdown().await;
//! # }
//! ```
//!
//! See `examples/` for runnable scenarios and `matrix-experiments` for the
//! full evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use matrix_core as core;
pub use matrix_experiments as experiments;
pub use matrix_games as games;
pub use matrix_geometry as geometry;
pub use matrix_metrics as metrics;
pub use matrix_predict as predict;
pub use matrix_replication as replication;
pub use matrix_rt as rt;
pub use matrix_sim as sim;
pub use matrix_telemetry as telemetry;
