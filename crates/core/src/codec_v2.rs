//! Wire protocol v2: length-prefixed binary framing for the hot path.
//!
//! Every frame the JSON-lines codec ([`crate::codec`]) speaks — plus the
//! version-negotiation `Hello` and the load-report heartbeat — has a
//! compact binary form here. The two codecs serialize the *same* Rust
//! values; JSON stays the debug/interop format (protocol v1), binary is
//! the canonical one (v2). A peer advertises v2 by opening with a
//! binary [`Frame::Hello`]; a byte stream is self-identifying, because
//! no JSON line can start with the magic byte `0xD7` and no binary
//! frame starts with `{`.
//!
//! # Frame layout
//!
//! ```text
//! offset  size  field
//! 0       2     magic 0xD7 0x4D
//! 2       1     protocol version (2)
//! 3       1     frame type (low 5 bits) | flags (high 3 bits; 0x80 = CRC)
//! 4       4     body length, u32 LE
//! 8       8     sender sequence number, u64 LE
//! 16      4     sender timestamp, ms, u32 LE
//! 20      len   body (grammar per frame type, see `docs/WIRE.md`)
//! 20+len  4     CRC32 (IEEE) of bytes 0..20+len — only when flag 0x80
//! ```
//!
//! The header is fixed-size (20 bytes; 24 with the CRC trailer) so a
//! receiver can delimit a frame in O(1) without touching the body;
//! varints appear only *inside* bodies (counts, ids, string lengths)
//! where they pay for themselves. With the CRC on — the default — the
//! per-frame overhead is exactly [`BATCH_OVERHEAD_BYTES`] = 24, the
//! figure the byte-accounting model has always charged per batch.
//!
//! # Batch items
//!
//! `UpdateBatch` bodies are a plain concatenation of items (the frame
//! length delimits them; no count prefix). Each item leads with a
//! header byte:
//!
//! ```text
//! bit 0   kind: 0 = absolute keyframe, 1 = delta
//! bit 1-2 vision ring (0..=3)
//! bit 3   velocity pair present
//! bit 4   wide entity id (u64 LE instead of u24 LE)
//! bit 5   wide delta offsets (2×f64 instead of 2×i24 lattice)
//! bit 6   wide velocity (2×f64 instead of 2×i24 lattice)
//! bit 7   wide payload length (u64 LE instead of u16 LE)
//! ```
//!
//! followed by the entity id, the payload length, the coordinates
//! (absolute: always 2×f64; delta: 2×i24 fixed-point on the 1/256
//! lattice, or 2×f64 when the wide bit is set) and, when present, the
//! velocity pair (same i24/f64 split). The canonical shapes measure
//! exactly what the accounting constants claim: an absolute item is
//! [`UpdateItem::WIRE_BYTES`] = 22, a delta [`DeltaItem::WIRE_BYTES`]
//! = 12, a velocity pair [`UpdateItem::VELOCITY_WIRE_BYTES`] = 6 (the
//! wire-bytes audit in `tests/codec_v2_properties.rs` pins this).
//! Payload *content* is never materialized: the length is a declared
//! number in both codecs — the simulation ships sizes, not state.
//!
//! # Robustness
//!
//! Decoders never panic and never read past the buffer: every read is
//! bounds-checked, trailing body bytes are rejected, and unknown
//! versions, frame types or flag bits fail loudly. A CRC-carrying
//! frame rejects any corruption of header or body; the
//! [`FrameAccumulator`] then resynchronizes the stream at the next
//! magic boundary. The fuzz suite (`tests/codec_v2_fuzz.rs`) drives
//! random bytes, truncations and bit flips through every decoder.

use crate::codec::{CodecError, StatsFormat, STATS_VERSION};
use crate::messages::{
    BatchItem, ClientToGame, DeltaItem, GameToClient, LoadReport, RegionSnapshot, ReplicaBatch,
    ReplicaOp, UpdateItem,
};
use crate::packet::ClientId;
use matrix_geometry::{Point, Rect, ServerId};
use matrix_replication::{
    PendingUpdate, PredictBasis, ReplicaPayload, SessionState, StreamBase, TunerState,
};
use matrix_sim::SimTime;
use matrix_telemetry::{HistSnapshot, TelemetrySnapshot};

/// The two bytes every binary frame opens with.
pub const MAGIC: [u8; 2] = [0xD7, 0x4D];

/// Protocol version carried in byte 2 of every frame.
pub const WIRE_VERSION: u8 = 2;

/// Fixed frame-header size (magic, version, type/flags, length, seq,
/// timestamp).
pub const HEADER_BYTES: usize = 20;

/// CRC32 trailer size, when the frame carries one.
pub const CRC_BYTES: usize = 4;

/// Per-frame overhead with the CRC trailer on (the default): header
/// plus trailer. Equals the 24 bytes the byte-accounting model charges
/// per `UpdateBatch`.
pub const BATCH_OVERHEAD_BYTES: usize = HEADER_BYTES + CRC_BYTES;

/// Upper bound on a body length a decoder will accept. Far above any
/// real frame (batches cap at `max_updates_per_flush` items); bounds
/// the memory a corrupt length prefix can make a receiver reserve.
pub const MAX_BODY_BYTES: u32 = 1 << 24;

/// Flag bit in the type byte: frame carries a CRC32 trailer.
const FLAG_CRC: u8 = 0x80;
/// Flag bit in the type byte: a `T_BATCH` body opens with a sampled
/// trace section (`u16` entry count, then per entry: `u16` item index,
/// `u32` origin node, `u32` event seq, `u64` ingest µs, `u64` charged
/// staleness µs). Only valid on `T_BATCH`; untraced batches never set
/// it, so their frames stay byte-identical to pre-trace ones.
const FLAG_TRACE: u8 = 0x40;
/// Reserved flag bits — must be zero in v2.
const FLAG_RESERVED: u8 = 0x20;
/// Frame-type mask in the type byte.
const TYPE_MASK: u8 = 0x1F;

// Frame type codes (low 5 bits of byte 3).
const T_HELLO: u8 = 0;
const T_JOIN: u8 = 1;
const T_MOVE: u8 = 2;
const T_ACTION: u8 = 3;
const T_LEAVE: u8 = 4;
const T_JOINED: u8 = 5;
const T_ACK: u8 = 6;
const T_UPDATE: u8 = 7;
const T_BATCH: u8 = 8;
const T_SWITCH: u8 = 9;
const T_REPLICA: u8 = 10;
const T_REPLICA_ACK: u8 = 11;
const T_STATS_QUERY: u8 = 12;
const T_STATS_REPLY: u8 = 13;
const T_LOAD: u8 = 14;
const T_TRACE_ACK: u8 = 15;

/// Wire size of one trace-section entry (item index + origin + seq +
/// ingest + staleness). Public so byte-accounting mirrors (tests, the
/// sim's bandwidth model) can compose frame lengths without encoding.
pub const TRACE_ENTRY_BYTES: usize = 2 + 4 + 4 + 8 + 8;

// Batch-item header-byte bits (module docs above).
const ITEM_DELTA: u8 = 0x01;
const ITEM_RING_SHIFT: u8 = 1;
const ITEM_RING_MASK: u8 = 0x06;
const ITEM_VEL: u8 = 0x08;
const ITEM_WIDE_ENTITY: u8 = 0x10;
const ITEM_WIDE_COORDS: u8 = 0x20;
const ITEM_WIDE_VEL: u8 = 0x40;
const ITEM_WIDE_LEN: u8 = 0x80;

/// The fixed-point lattice the compact delta/velocity encodings live
/// on: 1/256 world units, the same quantum the delta encoder snaps
/// wire origins to (`GameServerConfig::origin_quantum`).
const LATTICE: f64 = 256.0;
/// Largest magnitude an i24 lattice component can carry.
const I24_MAX: i32 = (1 << 23) - 1;

/// Replica-payload kind codes.
const P_FULL: u8 = 0;
const P_OPS: u8 = 1;

/// Replica-op tag codes.
const OP_JOIN: u8 = 0;
const OP_MOVE: u8 = 1;
const OP_LEAVE: u8 = 2;
const OP_RANGE: u8 = 3;

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table-driven, built at compile time
// ---------------------------------------------------------------------------

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc_table();

/// CRC32 (IEEE 802.3 polynomial) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

// ---------------------------------------------------------------------------
// The frame set
// ---------------------------------------------------------------------------

/// Per-frame transport metadata carried in the fixed header: the
/// sender's sequence number and millisecond timestamp. Purely
/// observational (loss/reorder diagnostics, one-way delay estimates);
/// no decoder behavior depends on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrameMeta {
    /// Sender's monotone frame counter.
    pub seq: u64,
    /// Sender's clock at encode time, in milliseconds (wraps ~50 days).
    pub stamp_ms: u32,
}

/// One decoded v2 frame: every message the middleware puts on a real
/// wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Version negotiation: the sender speaks binary protocol
    /// `version`. A v2 peer replies with its own `Hello`; a legacy
    /// JSON peer fails to parse the frame and drops the connection,
    /// which the sender treats as "fall back to v1".
    Hello {
        /// Highest protocol version the sender speaks.
        version: u8,
    },
    /// A client-to-game message (`join` / `move` / `action` / `leave`).
    Client(ClientToGame),
    /// A game-to-client message (`joined` / `ack` / `update` / `batch`
    /// / `switch`).
    Server(GameToClient),
    /// A replication batch (full snapshot or incremental ops). Boxed:
    /// snapshots are bulky, the other variants are not.
    Replica(Box<ReplicaBatch>),
    /// A replication acknowledgement.
    ReplicaAck {
        /// Highest batch sequence number applied.
        seq: u64,
        /// Whether the standby needs a full snapshot resync.
        resync: bool,
    },
    /// A live-stats query for the given exposition format.
    StatsQuery(StatsFormat),
    /// A live-stats reply: one telemetry snapshot per node.
    StatsReply(Vec<(ServerId, TelemetrySnapshot)>),
    /// A load-report heartbeat. Boxed for the same reason the in-memory
    /// message boxes its telemetry: reports are frequent and bulky.
    Load(Box<LoadReport>),
}

/// Outcome of [`decode_frame`] on a (possibly partial) buffer.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameStatus {
    /// The buffer holds a valid prefix of a frame; feed more bytes.
    Incomplete,
    /// One whole frame was decoded.
    Complete {
        /// The decoded frame.
        frame: Frame,
        /// Transport metadata from the fixed header.
        meta: FrameMeta,
        /// Bytes consumed from the front of the buffer.
        consumed: usize,
    },
}

// ---------------------------------------------------------------------------
// Little-endian / varint writers
// ---------------------------------------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

fn put_u24(out: &mut Vec<u8>, v: u32) {
    debug_assert!(v <= 0x00FF_FFFF);
    out.extend_from_slice(&v.to_le_bytes()[..3]);
}

fn put_i24(out: &mut Vec<u8>, v: i32) {
    debug_assert!((-(I24_MAX + 1)..=I24_MAX).contains(&v));
    out.extend_from_slice(&(v as u32).to_le_bytes()[..3]);
}

/// LEB128 unsigned varint.
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Length-prefixed UTF-8 string (varint length).
fn put_str(out: &mut Vec<u8>, s: &str) {
    put_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

/// Snaps `v` onto the 1/256 lattice as an i24, or `None` if it is not
/// exactly representable there (off-lattice value or out of range).
fn lattice_i24(v: f64) -> Option<i32> {
    let scaled = v * LATTICE;
    // Integral, in range, and exactly recoverable: x/256 is exact in
    // binary floating point for any integral x, so the round trip is
    // bit-faithful whenever `scaled` is an in-range integer.
    if scaled.fract() != 0.0 || scaled.abs() > I24_MAX as f64 {
        return None;
    }
    Some(scaled as i32)
}

/// Whether a velocity pair fits the compact lattice encoding.
fn lattice_vel(vx: f64, vy: f64) -> Option<(i32, i32)> {
    Some((lattice_i24(vx)?, lattice_i24(vy)?))
}

// ---------------------------------------------------------------------------
// Bounds-checked reader
// ---------------------------------------------------------------------------

/// A cursor over a frame body. Every read is bounds-checked; the body
/// must be fully consumed (`finish`) for a decode to succeed.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::new(format!("truncated {what}")));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self, what: &str) -> Result<u8, CodecError> {
        Ok(self.take(1, what)?[0])
    }

    fn u16(&mut self, what: &str) -> Result<u16, CodecError> {
        let b = self.take(2, what)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u24(&mut self, what: &str) -> Result<u32, CodecError> {
        let b = self.take(3, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], 0]))
    }

    fn i24(&mut self, what: &str) -> Result<i32, CodecError> {
        let raw = self.u24(what)?;
        // Sign-extend from bit 23.
        Ok(((raw << 8) as i32) >> 8)
    }

    fn u32(&mut self, what: &str) -> Result<u32, CodecError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, CodecError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn f64(&mut self, what: &str) -> Result<f64, CodecError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    fn point(&mut self, what: &str) -> Result<Point, CodecError> {
        Ok(Point::new(self.f64(what)?, self.f64(what)?))
    }

    fn varint(&mut self, what: &str) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(what)?;
            let low = (byte & 0x7F) as u64;
            // The tenth byte may only carry the final bit of a u64.
            if shift == 63 && low > 1 {
                return Err(CodecError::new(format!("varint overflow in {what}")));
            }
            v |= low << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::new(format!("varint overflow in {what}")))
    }

    fn varu32(&mut self, what: &str) -> Result<u32, CodecError> {
        let v = self.varint(what)?;
        u32::try_from(v).map_err(|_| CodecError::new(format!("{what} out of u32 range")))
    }

    /// Varint length prefix used to size a `Vec::with_capacity`:
    /// additionally bounded by the bytes actually left in the body
    /// (each element costs ≥ 1 byte), so a corrupt count cannot make
    /// the decoder reserve unbounded memory.
    fn count(&mut self, what: &str) -> Result<usize, CodecError> {
        let n = self.varint(what)?;
        if n > self.remaining() as u64 {
            return Err(CodecError::new(format!("{what} exceeds frame size")));
        }
        Ok(n as usize)
    }

    fn bool(&mut self, what: &str) -> Result<bool, CodecError> {
        match self.u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CodecError::new(format!("{what} must be 0 or 1, got {b}"))),
        }
    }

    fn str(&mut self, what: &str) -> Result<String, CodecError> {
        let len = self.count(what)?;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CodecError::new(format!("{what} is not UTF-8")))
    }

    fn finish(self, what: &str) -> Result<(), CodecError> {
        if self.remaining() != 0 {
            return Err(CodecError::new(format!(
                "{} trailing bytes after {what} body",
                self.remaining()
            )));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Frame encode
// ---------------------------------------------------------------------------

/// Encodes one frame, returning the complete wire bytes (header, body
/// and — when `crc` — the CRC32 trailer).
pub fn encode_frame(frame: &Frame, meta: FrameMeta, crc: bool) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    let ty = encode_body(frame, &mut body);
    finish_frame(ty, body, meta, crc)
}

/// Encodes a client message as a frame, without wrapping it in an
/// owned [`Frame`] first.
pub fn encode_client_frame(msg: &ClientToGame, meta: FrameMeta, crc: bool) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    let ty = encode_client_body(msg, &mut body);
    finish_frame(ty, body, meta, crc)
}

/// Encodes a server message as a frame, without wrapping it in an
/// owned [`Frame`] first.
pub fn encode_server_frame(msg: &GameToClient, meta: FrameMeta, crc: bool) -> Vec<u8> {
    let mut body = Vec::with_capacity(64);
    let ty = encode_server_body(msg, &mut body);
    finish_frame(ty, body, meta, crc)
}

/// Encodes a replication batch as a frame, without wrapping it in an
/// owned [`Frame`] first (snapshots are bulky; no clone).
pub fn encode_replica_batch_frame(batch: &ReplicaBatch, meta: FrameMeta, crc: bool) -> Vec<u8> {
    let mut body = Vec::with_capacity(96);
    encode_replica_body(batch, &mut body);
    finish_frame(T_REPLICA, body, meta, crc)
}

fn finish_frame(ty: u8, body: Vec<u8>, meta: FrameMeta, crc: bool) -> Vec<u8> {
    debug_assert!(
        body.len() <= MAX_BODY_BYTES as usize,
        "oversized frame body"
    );
    let mut out = Vec::with_capacity(HEADER_BYTES + body.len() + CRC_BYTES);
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(ty | if crc { FLAG_CRC } else { 0 });
    put_u32(&mut out, body.len() as u32);
    put_u64(&mut out, meta.seq);
    put_u32(&mut out, meta.stamp_ms);
    out.extend_from_slice(&body);
    if crc {
        let sum = crc32(&out);
        put_u32(&mut out, sum);
    }
    out
}

fn encode_body(frame: &Frame, out: &mut Vec<u8>) -> u8 {
    match frame {
        Frame::Hello { version } => {
            out.push(*version);
            T_HELLO
        }
        Frame::Client(msg) => encode_client_body(msg, out),
        Frame::Server(msg) => encode_server_body(msg, out),
        Frame::Replica(batch) => {
            encode_replica_body(batch, out);
            T_REPLICA
        }
        Frame::ReplicaAck { seq, resync } => {
            put_varint(out, *seq);
            out.push(u8::from(*resync));
            T_REPLICA_ACK
        }
        Frame::StatsQuery(fmt) => {
            put_varint(out, STATS_VERSION as u64);
            out.push(match fmt {
                StatsFormat::Json => 0,
                StatsFormat::Prom => 1,
            });
            T_STATS_QUERY
        }
        Frame::StatsReply(nodes) => {
            put_varint(out, STATS_VERSION as u64);
            put_varint(out, nodes.len() as u64);
            for (id, snap) in nodes {
                put_varint(out, id.0 as u64);
                put_telemetry(out, snap);
            }
            T_STATS_REPLY
        }
        Frame::Load(report) => {
            put_varint(out, report.clients as u64);
            put_f64(out, report.queue_backlog);
            put_varint(out, report.positions.len() as u64);
            for p in &report.positions {
                put_point(out, *p);
            }
            match &report.telemetry {
                Some(snap) => {
                    out.push(1);
                    put_telemetry(out, snap);
                }
                None => out.push(0),
            }
            T_LOAD
        }
    }
}

fn encode_client_body(msg: &ClientToGame, out: &mut Vec<u8>) -> u8 {
    match msg {
        ClientToGame::Join { pos, state_bytes } => {
            put_point(out, *pos);
            put_varint(out, *state_bytes);
            T_JOIN
        }
        ClientToGame::Move { pos } => {
            put_point(out, *pos);
            T_MOVE
        }
        ClientToGame::Action { pos, payload_bytes } => {
            put_point(out, *pos);
            put_varint(out, *payload_bytes as u64);
            T_ACTION
        }
        ClientToGame::Leave => T_LEAVE,
        ClientToGame::TraceAck {
            ring,
            latency_us,
            staleness_us,
        } => {
            out.push(*ring);
            put_varint(out, *latency_us);
            put_varint(out, *staleness_us);
            T_TRACE_ACK
        }
    }
}

fn encode_server_body(msg: &GameToClient, out: &mut Vec<u8>) -> u8 {
    match msg {
        GameToClient::Joined { server } => {
            put_varint(out, server.0 as u64);
            T_JOINED
        }
        GameToClient::Ack { seq } => {
            put_varint(out, *seq);
            T_ACK
        }
        GameToClient::Update {
            origin,
            payload_bytes,
        } => {
            put_point(out, *origin);
            put_varint(out, *payload_bytes as u64);
            T_UPDATE
        }
        GameToClient::UpdateBatch { updates } => {
            // Sampled trace section, present only when at least one item
            // is traced (the frame then carries `FLAG_TRACE` in its type
            // byte); untraced batches encode byte-identically to
            // pre-trace frames.
            let traced = updates.iter().filter(|u| u.trace().is_some()).count();
            debug_assert!(
                updates.len() <= u16::MAX as usize,
                "batch exceeds the u16 trace index space"
            );
            if traced > 0 {
                put_u16(out, traced as u16);
                for (i, item) in updates.iter().enumerate() {
                    if let Some(tag) = item.trace() {
                        put_u16(out, i as u16);
                        put_u32(out, tag.origin);
                        put_u32(out, tag.seq);
                        put_u64(out, tag.ingest_us);
                        put_u64(out, tag.stale_us);
                    }
                }
            }
            for item in updates {
                encode_batch_item(out, item);
            }
            if traced > 0 {
                T_BATCH | FLAG_TRACE
            } else {
                T_BATCH
            }
        }
        GameToClient::SwitchServer { to } => {
            put_varint(out, to.0 as u64);
            T_SWITCH
        }
    }
}

/// Appends one batch item in its most compact admissible shape.
///
/// Encoder contract: `ring < MAX_RINGS` (4) — the header byte has two
/// ring bits, exactly matching the pipeline's ring cap.
fn encode_batch_item(out: &mut Vec<u8>, item: &BatchItem) {
    let (entity, ring) = (item.entity(), item.ring());
    debug_assert!(ring < 4, "ring {ring} does not fit the v2 item header");
    let plen = item.payload_bytes() as u64;
    let (vx, vy) = item.velocity();
    let vel = item.has_velocity();
    let vel_lattice = if vel { lattice_vel(vx, vy) } else { None };

    let mut h = 0u8;
    h |= (ring & 0x03) << ITEM_RING_SHIFT;
    if vel {
        h |= ITEM_VEL;
        if vel_lattice.is_none() {
            h |= ITEM_WIDE_VEL;
        }
    }
    if entity > 0x00FF_FFFF {
        h |= ITEM_WIDE_ENTITY;
    }
    if plen > u16::MAX as u64 {
        h |= ITEM_WIDE_LEN;
    }
    let delta_lattice = match item {
        BatchItem::Absolute(_) => None,
        BatchItem::Delta(d) => match (lattice_i24(d.dx), lattice_i24(d.dy)) {
            (Some(dx), Some(dy)) => Some((dx, dy)),
            _ => {
                h |= ITEM_WIDE_COORDS;
                None
            }
        },
    };
    if matches!(item, BatchItem::Delta(_)) {
        h |= ITEM_DELTA;
    }
    out.push(h);

    if h & ITEM_WIDE_ENTITY != 0 {
        put_u64(out, entity);
    } else {
        put_u24(out, entity as u32);
    }
    if h & ITEM_WIDE_LEN != 0 {
        put_u64(out, plen);
    } else {
        put_u16(out, plen as u16);
    }
    match item {
        BatchItem::Absolute(u) => put_point(out, u.origin),
        BatchItem::Delta(d) => match delta_lattice {
            Some((dx, dy)) => {
                put_i24(out, dx);
                put_i24(out, dy);
            }
            None => {
                put_f64(out, d.dx);
                put_f64(out, d.dy);
            }
        },
    }
    if vel {
        match vel_lattice {
            Some((x, y)) => {
                put_i24(out, x);
                put_i24(out, y);
            }
            None => {
                put_f64(out, vx);
                put_f64(out, vy);
            }
        }
    }
}

fn put_telemetry(out: &mut Vec<u8>, snap: &TelemetrySnapshot) {
    put_varint(out, snap.counters.len() as u64);
    for (name, v) in &snap.counters {
        put_str(out, name);
        put_varint(out, *v);
    }
    put_varint(out, snap.hists.len() as u64);
    for h in &snap.hists {
        put_str(out, &h.name);
        put_varint(out, h.count);
        put_f64(out, h.sum);
        put_f64(out, h.min);
        put_f64(out, h.max);
        put_varint(out, h.buckets.len() as u64);
        for (idx, n) in &h.buckets {
            put_varint(out, *idx as u64);
            put_varint(out, *n);
        }
    }
    put_varint(out, snap.events_dropped);
    put_varint(out, snap.events_seen);
}

fn encode_replica_body(batch: &ReplicaBatch, out: &mut Vec<u8>) {
    put_varint(out, RegionSnapshot::VERSION as u64);
    put_varint(out, batch.seq);
    match &batch.payload {
        ReplicaPayload::Full(snap) => {
            out.push(P_FULL);
            encode_snapshot_body(snap, out);
        }
        ReplicaPayload::Ops(ops) => {
            out.push(P_OPS);
            put_varint(out, ops.len() as u64);
            for op in ops {
                match *op {
                    ReplicaOp::Join {
                        client,
                        pos,
                        state_bytes,
                    } => {
                        out.push(OP_JOIN);
                        put_varint(out, client.0);
                        put_point(out, pos);
                        put_varint(out, state_bytes);
                    }
                    ReplicaOp::Move { client, pos } => {
                        out.push(OP_MOVE);
                        put_varint(out, client.0);
                        put_point(out, pos);
                    }
                    ReplicaOp::Leave { client } => {
                        out.push(OP_LEAVE);
                        put_varint(out, client.0);
                    }
                    ReplicaOp::Range { range, radius } => {
                        out.push(OP_RANGE);
                        put_rect(out, &range);
                        put_f64(out, radius);
                    }
                }
            }
        }
    }
}

fn put_rect(out: &mut Vec<u8>, r: &Rect) {
    put_point(out, r.min());
    put_point(out, r.max());
}

fn encode_snapshot_body(snap: &RegionSnapshot, out: &mut Vec<u8>) {
    let mut flags = 0u8;
    if snap.ready {
        flags |= 0x01;
    }
    if snap.range.is_some() {
        flags |= 0x02;
    }
    if snap.tuner.is_some() {
        flags |= 0x04;
    }
    out.push(flags);
    if let Some(range) = &snap.range {
        put_rect(out, range);
    }
    put_f64(out, snap.radius);
    put_varint(out, snap.seq);
    put_varint(out, snap.last_flush.as_micros());
    if let Some(t) = &snap.tuner {
        put_varint(out, t.cells as u64);
        put_varint(out, t.streak as u64);
        put_varint(out, t.pending as u64);
    }
    put_varint(out, snap.clients.len() as u64);
    for (id, s) in &snap.clients {
        put_varint(out, id.0);
        put_point(out, s.pos);
        put_varint(out, s.state_bytes);
    }
    put_varint(out, snap.streams.len() as u64);
    for (id, s) in &snap.streams {
        put_varint(out, id.0);
        put_point(out, s.base);
        put_varint(out, s.countdown as u64);
    }
    put_varint(out, snap.pending.len() as u64);
    for (id, items) in &snap.pending {
        put_varint(out, id.0);
        put_varint(out, items.len() as u64);
        for u in items {
            // The leading byte is a bitflag set (bit 0: velocity pair,
            // bit 1: trace tag). Pre-trace encoders only ever wrote 0
            // or 1 here, so old frames decode unchanged and old decoders
            // reject traced frames loudly (strict 0..=1 check).
            let vel = u.vx != 0.0 || u.vy != 0.0;
            let mut flags = 0u8;
            if vel {
                flags |= 0x01;
            }
            if u.trace.is_some() {
                flags |= 0x02;
            }
            out.push(flags);
            out.push(u.ring);
            put_point(out, u.origin);
            put_varint(out, u.payload_bytes as u64);
            put_varint(out, u.entity);
            if vel {
                put_f64(out, u.vx);
                put_f64(out, u.vy);
            }
            if let Some(tag) = u.trace {
                put_varint(out, tag.origin as u64);
                put_varint(out, tag.seq as u64);
                put_varint(out, tag.ingest_us);
                put_varint(out, tag.stale_us);
            }
        }
    }
    put_varint(out, snap.bases.len() as u64);
    for (id, bases) in &snap.bases {
        put_varint(out, id.0);
        put_varint(out, bases.len() as u64);
        for b in bases {
            put_varint(out, b.entity);
            put_point(out, b.pos);
            put_f64(out, b.vx);
            put_f64(out, b.vy);
            put_f64(out, b.time_secs);
        }
    }
}

// ---------------------------------------------------------------------------
// Frame decode
// ---------------------------------------------------------------------------

/// Attempts to decode one frame from the front of `buf`.
///
/// Returns [`FrameStatus::Incomplete`] while `buf` is a valid prefix of
/// a frame (feed more bytes and retry).
///
/// # Errors
///
/// [`CodecError`] as soon as the buffer cannot be (a prefix of) a valid
/// frame: bad magic, unsupported version, unknown type or flags, an
/// oversized length prefix, a CRC mismatch, or a malformed body. The
/// decoder reads nothing past the declared frame end.
pub fn decode_frame(buf: &[u8]) -> Result<FrameStatus, CodecError> {
    for (i, &expect) in MAGIC.iter().enumerate() {
        match buf.get(i) {
            None => return Ok(FrameStatus::Incomplete),
            Some(&b) if b == expect => {}
            Some(&b) => {
                return Err(CodecError::new(format!(
                    "bad magic byte 0x{b:02X} at offset {i}"
                )))
            }
        }
    }
    match buf.get(2) {
        None => return Ok(FrameStatus::Incomplete),
        Some(&WIRE_VERSION) => {}
        Some(&v) => {
            return Err(CodecError::new(format!(
                "unsupported wire version {v} (expected {WIRE_VERSION})"
            )))
        }
    }
    let ty_flags = match buf.get(3) {
        None => return Ok(FrameStatus::Incomplete),
        Some(&b) => b,
    };
    if ty_flags & FLAG_RESERVED != 0 {
        return Err(CodecError::new("reserved frame flags set"));
    }
    let ty = ty_flags & TYPE_MASK;
    if ty > T_TRACE_ACK {
        return Err(CodecError::new(format!("unknown frame type {ty}")));
    }
    let traced = ty_flags & FLAG_TRACE != 0;
    if traced && ty != T_BATCH {
        return Err(CodecError::new("trace flag on a non-batch frame"));
    }
    if buf.len() < 8 {
        return Ok(FrameStatus::Incomplete);
    }
    let len = u32::from_le_bytes(buf[4..8].try_into().expect("4 bytes"));
    if len > MAX_BODY_BYTES {
        return Err(CodecError::new(format!(
            "frame body of {len} bytes too large"
        )));
    }
    let has_crc = ty_flags & FLAG_CRC != 0;
    let total = HEADER_BYTES + len as usize + if has_crc { CRC_BYTES } else { 0 };
    if buf.len() < total {
        return Ok(FrameStatus::Incomplete);
    }
    let meta = FrameMeta {
        seq: u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes")),
        stamp_ms: u32::from_le_bytes(buf[16..20].try_into().expect("4 bytes")),
    };
    let body_end = HEADER_BYTES + len as usize;
    if has_crc {
        let declared = u32::from_le_bytes(buf[body_end..total].try_into().expect("4 bytes"));
        let actual = crc32(&buf[..body_end]);
        if declared != actual {
            return Err(CodecError::new(format!(
                "CRC mismatch: frame says {declared:#010X}, computed {actual:#010X}"
            )));
        }
    }
    let frame = decode_body(ty, traced, &buf[HEADER_BYTES..body_end])?;
    Ok(FrameStatus::Complete {
        frame,
        meta,
        consumed: total,
    })
}

fn decode_body(ty: u8, traced: bool, body: &[u8]) -> Result<Frame, CodecError> {
    let mut r = Reader::new(body);
    let frame = match ty {
        T_HELLO => Frame::Hello {
            version: r.u8("hello version")?,
        },
        T_JOIN => Frame::Client(ClientToGame::Join {
            pos: r.point("join position")?,
            state_bytes: r.varint("join state size")?,
        }),
        T_MOVE => Frame::Client(ClientToGame::Move {
            pos: r.point("move position")?,
        }),
        T_ACTION => Frame::Client(ClientToGame::Action {
            pos: r.point("action position")?,
            payload_bytes: r.varint("action payload size")? as usize,
        }),
        T_LEAVE => Frame::Client(ClientToGame::Leave),
        T_TRACE_ACK => Frame::Client(ClientToGame::TraceAck {
            ring: r.u8("trace-ack ring")?,
            latency_us: r.varint("trace-ack latency")?,
            staleness_us: r.varint("trace-ack staleness")?,
        }),
        T_JOINED => Frame::Server(GameToClient::Joined {
            server: ServerId(r.varu32("joined server id")?),
        }),
        T_ACK => Frame::Server(GameToClient::Ack {
            seq: r.varint("ack sequence")?,
        }),
        T_UPDATE => Frame::Server(GameToClient::Update {
            origin: r.point("update origin")?,
            payload_bytes: r.varint("update payload size")? as usize,
        }),
        T_BATCH => {
            // Trace section first (present only under FLAG_TRACE), so
            // untraced bodies parse exactly as before the flag existed.
            let mut tags = Vec::new();
            if traced {
                let n = r.u16("trace entry count")? as usize;
                if n * TRACE_ENTRY_BYTES > r.remaining() {
                    return Err(CodecError::new("trace section exceeds frame size"));
                }
                for _ in 0..n {
                    let idx = r.u16("trace item index")? as usize;
                    let origin = r.u32("trace origin")?;
                    let seq = r.u32("trace seq")?;
                    let ingest_us = r.u64("trace ingest time")?;
                    let stale_us = r.u64("trace staleness")?;
                    tags.push((
                        idx,
                        matrix_telemetry::TraceTag {
                            origin,
                            seq,
                            ingest_us,
                            stale_us,
                        },
                    ));
                }
            }
            let mut updates = Vec::new();
            while r.remaining() > 0 {
                updates.push(decode_batch_item(&mut r)?);
            }
            for (idx, tag) in tags {
                match updates.get_mut(idx) {
                    Some(BatchItem::Absolute(u)) => u.trace = Some(tag),
                    Some(BatchItem::Delta(d)) => d.trace = Some(tag),
                    None => return Err(CodecError::new("trace entry index out of range")),
                }
            }
            Frame::Server(GameToClient::UpdateBatch { updates })
        }
        T_SWITCH => Frame::Server(GameToClient::SwitchServer {
            to: ServerId(r.varu32("switch server id")?),
        }),
        T_REPLICA => Frame::Replica(Box::new(decode_replica_body(&mut r)?)),
        T_REPLICA_ACK => Frame::ReplicaAck {
            seq: r.varint("replica-ack sequence")?,
            resync: r.bool("replica-ack resync")?,
        },
        T_STATS_QUERY => {
            check_stats_version(&mut r)?;
            Frame::StatsQuery(match r.u8("stats format")? {
                0 => StatsFormat::Json,
                1 => StatsFormat::Prom,
                f => return Err(CodecError::new(format!("unknown stats format {f}"))),
            })
        }
        T_STATS_REPLY => {
            check_stats_version(&mut r)?;
            let n = r.count("stats node count")?;
            let mut nodes = Vec::with_capacity(n);
            for _ in 0..n {
                let id = ServerId(r.varu32("stats node id")?);
                nodes.push((id, decode_telemetry(&mut r)?));
            }
            Frame::StatsReply(nodes)
        }
        T_LOAD => {
            let clients = r.varu32("load client count")?;
            let queue_backlog = r.f64("load backlog")?;
            let n = r.count("load position count")?;
            let mut positions = Vec::with_capacity(n);
            for _ in 0..n {
                positions.push(r.point("load position")?);
            }
            let telemetry = if r.bool("load telemetry flag")? {
                Some(Box::new(decode_telemetry(&mut r)?))
            } else {
                None
            };
            Frame::Load(Box::new(LoadReport {
                clients,
                queue_backlog,
                positions,
                telemetry,
            }))
        }
        _ => unreachable!("type range checked by decode_frame"),
    };
    let what = frame_name(ty);
    r.finish(what)?;
    Ok(frame)
}

fn frame_name(ty: u8) -> &'static str {
    match ty {
        T_HELLO => "hello",
        T_JOIN => "join",
        T_MOVE => "move",
        T_ACTION => "action",
        T_LEAVE => "leave",
        T_JOINED => "joined",
        T_ACK => "ack",
        T_UPDATE => "update",
        T_BATCH => "batch",
        T_SWITCH => "switch",
        T_REPLICA => "replica",
        T_REPLICA_ACK => "replica-ack",
        T_STATS_QUERY => "stats",
        T_STATS_REPLY => "stats-reply",
        T_LOAD => "load",
        T_TRACE_ACK => "trace-ack",
        _ => "unknown",
    }
}

fn check_stats_version(r: &mut Reader<'_>) -> Result<(), CodecError> {
    let v = r.varu32("stats version")?;
    if v != STATS_VERSION {
        return Err(CodecError::new(format!(
            "unsupported stats format version {v} (expected {STATS_VERSION})"
        )));
    }
    Ok(())
}

fn decode_batch_item(r: &mut Reader<'_>) -> Result<BatchItem, CodecError> {
    let h = r.u8("item header")?;
    let delta = h & ITEM_DELTA != 0;
    if !delta && h & ITEM_WIDE_COORDS != 0 {
        return Err(CodecError::new("wide-coordinate flag on an absolute item"));
    }
    if h & ITEM_WIDE_VEL != 0 && h & ITEM_VEL == 0 {
        return Err(CodecError::new("wide-velocity flag without a velocity"));
    }
    let ring = (h & ITEM_RING_MASK) >> ITEM_RING_SHIFT;
    let entity = if h & ITEM_WIDE_ENTITY != 0 {
        r.u64("item entity")?
    } else {
        r.u24("item entity")? as u64
    };
    let payload_bytes = if h & ITEM_WIDE_LEN != 0 {
        let v = r.u64("item payload size")?;
        usize::try_from(v).map_err(|_| CodecError::new("item payload size out of range"))?
    } else {
        r.u16("item payload size")? as usize
    };
    let item = if delta {
        let (dx, dy) = if h & ITEM_WIDE_COORDS != 0 {
            (r.f64("item offsets")?, r.f64("item offsets")?)
        } else {
            (
                r.i24("item offsets")? as f64 / LATTICE,
                r.i24("item offsets")? as f64 / LATTICE,
            )
        };
        let (vx, vy) = decode_item_velocity(r, h)?;
        BatchItem::Delta(DeltaItem {
            dx,
            dy,
            payload_bytes,
            entity,
            ring,
            vx,
            vy,
            trace: None,
        })
    } else {
        let origin = r.point("item origin")?;
        let (vx, vy) = decode_item_velocity(r, h)?;
        BatchItem::Absolute(UpdateItem {
            origin,
            payload_bytes,
            entity,
            ring,
            vx,
            vy,
            trace: None,
        })
    };
    Ok(item)
}

fn decode_item_velocity(r: &mut Reader<'_>, h: u8) -> Result<(f64, f64), CodecError> {
    if h & ITEM_VEL == 0 {
        return Ok((0.0, 0.0));
    }
    if h & ITEM_WIDE_VEL != 0 {
        Ok((r.f64("item velocity")?, r.f64("item velocity")?))
    } else {
        Ok((
            r.i24("item velocity")? as f64 / LATTICE,
            r.i24("item velocity")? as f64 / LATTICE,
        ))
    }
}

fn decode_telemetry(r: &mut Reader<'_>) -> Result<TelemetrySnapshot, CodecError> {
    let mut snap = TelemetrySnapshot::new();
    let n = r.count("counter count")?;
    for _ in 0..n {
        let name = r.str("counter name")?;
        let v = r.varint("counter value")?;
        snap.counters.push((name, v));
    }
    let n = r.count("histogram count")?;
    for _ in 0..n {
        let name = r.str("histogram name")?;
        let count = r.varint("histogram count")?;
        let sum = r.f64("histogram sum")?;
        let min = r.f64("histogram min")?;
        let max = r.f64("histogram max")?;
        let b = r.count("bucket count")?;
        let mut buckets = Vec::with_capacity(b);
        for _ in 0..b {
            buckets.push((r.varu32("bucket index")?, r.varint("bucket value")?));
        }
        snap.hists.push(HistSnapshot {
            name,
            count,
            sum,
            min,
            max,
            buckets,
        });
    }
    snap.events_dropped = r.varint("dropped events")?;
    snap.events_seen = r.varint("seen events")?;
    Ok(snap)
}

fn decode_replica_body(r: &mut Reader<'_>) -> Result<ReplicaBatch, CodecError> {
    let v = r.varu32("snapshot version")?;
    if v != RegionSnapshot::VERSION {
        return Err(CodecError::new(format!(
            "unsupported snapshot version {v} (expected {})",
            RegionSnapshot::VERSION
        )));
    }
    let seq = r.varint("replica sequence")?;
    let payload = match r.u8("replica payload kind")? {
        P_FULL => ReplicaPayload::Full(decode_snapshot_body(r)?),
        P_OPS => {
            let n = r.count("op count")?;
            let mut ops = Vec::with_capacity(n);
            for _ in 0..n {
                let op = match r.u8("op tag")? {
                    OP_JOIN => ReplicaOp::Join {
                        client: ClientId(r.varint("op client")?),
                        pos: r.point("op position")?,
                        state_bytes: r.varint("op state size")?,
                    },
                    OP_MOVE => ReplicaOp::Move {
                        client: ClientId(r.varint("op client")?),
                        pos: r.point("op position")?,
                    },
                    OP_LEAVE => ReplicaOp::Leave {
                        client: ClientId(r.varint("op client")?),
                    },
                    OP_RANGE => ReplicaOp::Range {
                        range: read_rect(r)?,
                        radius: r.f64("op radius")?,
                    },
                    t => return Err(CodecError::new(format!("unknown op tag {t}"))),
                };
                ops.push(op);
            }
            ReplicaPayload::Ops(ops)
        }
        k => return Err(CodecError::new(format!("unknown replica payload kind {k}"))),
    };
    Ok(ReplicaBatch { seq, payload })
}

fn read_rect(r: &mut Reader<'_>) -> Result<Rect, CodecError> {
    let min = r.point("rect")?;
    let max = r.point("rect")?;
    Ok(Rect::from_coords(min.x, min.y, max.x, max.y))
}

fn decode_snapshot_body(r: &mut Reader<'_>) -> Result<RegionSnapshot, CodecError> {
    let flags = r.u8("snapshot flags")?;
    if flags & !0x07 != 0 {
        return Err(CodecError::new("reserved snapshot flags set"));
    }
    let mut snap = RegionSnapshot {
        ready: flags & 0x01 != 0,
        ..Default::default()
    };
    if flags & 0x02 != 0 {
        snap.range = Some(read_rect(r)?);
    }
    snap.radius = r.f64("snapshot radius")?;
    snap.seq = r.varint("snapshot sequence")?;
    snap.last_flush = SimTime::from_micros(r.varint("snapshot flush time")?);
    if flags & 0x04 != 0 {
        snap.tuner = Some(TunerState {
            cells: r.varu32("tuner cells")?,
            streak: r.varu32("tuner streak")?,
            pending: r.varu32("tuner pending")?,
        });
    }
    let n = r.count("client count")?;
    for _ in 0..n {
        let id = ClientId(r.varint("client id")?);
        let pos = r.point("client position")?;
        let state_bytes = r.varint("client state size")?;
        snap.clients.insert(id, SessionState { pos, state_bytes });
    }
    let n = r.count("stream count")?;
    for _ in 0..n {
        let id = ClientId(r.varint("stream id")?);
        let base = r.point("stream base")?;
        let countdown = r.varu32("stream countdown")?;
        snap.streams.insert(id, StreamBase { base, countdown });
    }
    let n = r.count("pending count")?;
    for _ in 0..n {
        let id = ClientId(r.varint("pending id")?);
        let k = r.count("pending item count")?;
        let mut items = Vec::with_capacity(k);
        for _ in 0..k {
            let flags = r.u8("pending item flags")?;
            if flags & !0x03 != 0 {
                return Err(CodecError::new("reserved pending item flags set"));
            }
            let vel = flags & 0x01 != 0;
            let ring = r.u8("pending ring")?;
            let origin = r.point("pending origin")?;
            let payload_bytes = r.varint("pending payload size")? as usize;
            let entity = r.varint("pending entity")?;
            let (vx, vy) = if vel {
                (r.f64("pending velocity")?, r.f64("pending velocity")?)
            } else {
                (0.0, 0.0)
            };
            let trace = if flags & 0x02 != 0 {
                Some(matrix_telemetry::TraceTag {
                    origin: r.varu32("pending trace origin")?,
                    seq: r.varu32("pending trace seq")?,
                    ingest_us: r.varint("pending trace ingest")?,
                    stale_us: r.varint("pending trace staleness")?,
                })
            } else {
                None
            };
            items.push(PendingUpdate {
                origin,
                payload_bytes,
                entity,
                ring,
                vx,
                vy,
                trace,
            });
        }
        snap.pending.insert(id, items);
    }
    let n = r.count("basis count")?;
    for _ in 0..n {
        let id = ClientId(r.varint("basis id")?);
        let k = r.count("basis entry count")?;
        let mut bases = Vec::with_capacity(k);
        for _ in 0..k {
            bases.push(PredictBasis {
                entity: r.varint("basis entity")?,
                pos: r.point("basis position")?,
                vx: r.f64("basis velocity")?,
                vy: r.f64("basis velocity")?,
                time_secs: r.f64("basis time")?,
            });
        }
        snap.bases.insert(id, bases);
    }
    Ok(snap)
}

// ---------------------------------------------------------------------------
// Arithmetic frame lengths (accounting without encoding)
// ---------------------------------------------------------------------------

/// Fixed per-frame overhead: header plus the CRC trailer when on.
pub fn frame_overhead(crc: bool) -> usize {
    HEADER_BYTES + if crc { CRC_BYTES } else { 0 }
}

/// Encoded size of one batch item, computed arithmetically. Pinned
/// equal to the length [`encode_frame`] actually produces by the
/// property suite, so byte accounting can skip the allocation.
pub fn batch_item_wire_len(item: &BatchItem) -> usize {
    let entity = if item.entity() > 0x00FF_FFFF { 8 } else { 3 };
    let plen = if item.payload_bytes() > u16::MAX as usize {
        8
    } else {
        2
    };
    let coords = match item {
        BatchItem::Absolute(_) => 16,
        BatchItem::Delta(d) => {
            if lattice_i24(d.dx).is_some() && lattice_i24(d.dy).is_some() {
                6
            } else {
                16
            }
        }
    };
    let vel = if item.has_velocity() {
        let (vx, vy) = item.velocity();
        if lattice_vel(vx, vy).is_some() {
            6
        } else {
            16
        }
    } else {
        0
    };
    1 + entity + plen + coords + vel
}

/// Wire size of a whole `UpdateBatch` frame holding `items`, computed
/// arithmetically (no allocation, no encoding). Payload *content* is
/// not included — the items declare payload sizes, they do not carry
/// the bytes. A sampled trace section (present when any item carries a
/// tag) adds its count prefix plus one fixed-width entry per traced
/// item.
pub fn update_batch_frame_len(items: &[BatchItem], crc: bool) -> usize {
    let traced = items.iter().filter(|u| u.trace().is_some()).count();
    let trace_section = if traced > 0 {
        2 + traced * TRACE_ENTRY_BYTES
    } else {
        0
    };
    frame_overhead(crc) + trace_section + items.iter().map(batch_item_wire_len).sum::<usize>()
}

// ---------------------------------------------------------------------------
// Stream accumulator
// ---------------------------------------------------------------------------

/// Reassembles frames from an arbitrary byte stream, resynchronizing
/// at the next magic boundary after a corrupt frame.
///
/// Push received chunks with [`push`](FrameAccumulator::push), then
/// drain frames with [`next`](FrameAccumulator::next): `None` means
/// "need more bytes", `Some(Err(_))` reports one corrupt region (the
/// stream skips forward to the next plausible frame start and keeps
/// going — a magic pair *inside* the corrupt region may yield further
/// errors before a genuine boundary is reached, but a well-formed
/// frame behind the corruption is always recovered).
#[derive(Debug, Default)]
pub struct FrameAccumulator {
    buf: Vec<u8>,
}

impl FrameAccumulator {
    /// An empty accumulator.
    pub fn new() -> FrameAccumulator {
        FrameAccumulator::default()
    }

    /// Appends received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a decoded frame.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Attempts to decode the next frame.
    ///
    /// # Errors
    ///
    /// Forwards the [`CodecError`] of a corrupt frame after discarding
    /// bytes up to the next magic boundary; calling again continues
    /// with the remainder of the stream.
    #[allow(clippy::should_implement_trait)] // streaming pop, not iteration
    pub fn next(&mut self) -> Option<Result<(Frame, FrameMeta), CodecError>> {
        if self.buf.is_empty() {
            return None;
        }
        match decode_frame(&self.buf) {
            Ok(FrameStatus::Incomplete) => None,
            Ok(FrameStatus::Complete {
                frame,
                meta,
                consumed,
            }) => {
                self.buf.drain(..consumed);
                Some(Ok((frame, meta)))
            }
            Err(e) => {
                self.resync();
                Some(Err(e))
            }
        }
    }

    /// Discards bytes up to the next occurrence of the magic pair at
    /// offset ≥ 1 (or everything, when none is buffered).
    fn resync(&mut self) {
        let next = self.buf[1..]
            .windows(2)
            .position(|w| w == MAGIC)
            .map(|i| i + 1);
        match next {
            Some(i) => {
                self.buf.drain(..i);
            }
            None => {
                // Keep a trailing lone 0xD7: it may be the first byte
                // of a magic pair split across chunks.
                let keep = usize::from(self.buf.last() == Some(&MAGIC[0]));
                let len = self.buf.len();
                self.buf.drain(..len - keep);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(frame: Frame) {
        for crc in [true, false] {
            let meta = FrameMeta {
                seq: 99,
                stamp_ms: 123_456,
            };
            let bytes = encode_frame(&frame, meta, crc);
            match decode_frame(&bytes).expect("decode") {
                FrameStatus::Complete {
                    frame: got,
                    meta: got_meta,
                    consumed,
                } => {
                    assert_eq!(got, frame);
                    assert_eq!(got_meta, meta);
                    assert_eq!(consumed, bytes.len());
                }
                FrameStatus::Incomplete => panic!("whole frame reported incomplete"),
            }
        }
    }

    #[test]
    fn every_frame_type_round_trips() {
        round_trip(Frame::Hello { version: 2 });
        round_trip(Frame::Client(ClientToGame::Join {
            pos: Point::new(1.5, -2.25),
            state_bytes: 4096,
        }));
        round_trip(Frame::Client(ClientToGame::Move {
            pos: Point::new(0.0, 777.125),
        }));
        round_trip(Frame::Client(ClientToGame::Action {
            pos: Point::new(-3.0, 4.0),
            payload_bytes: 90,
        }));
        round_trip(Frame::Client(ClientToGame::Leave));
        round_trip(Frame::Server(GameToClient::Joined {
            server: ServerId(7),
        }));
        round_trip(Frame::Server(GameToClient::Ack { seq: u64::MAX }));
        round_trip(Frame::Server(GameToClient::Update {
            origin: Point::new(8.0, 9.0),
            payload_bytes: 1_000_000,
        }));
        round_trip(Frame::Server(GameToClient::SwitchServer {
            to: ServerId(u32::MAX),
        }));
        round_trip(Frame::ReplicaAck {
            seq: 42,
            resync: true,
        });
        round_trip(Frame::StatsQuery(StatsFormat::Prom));
        round_trip(Frame::StatsReply(vec![]));
        round_trip(Frame::Load(Box::new(LoadReport {
            clients: 12,
            queue_backlog: 3.5,
            positions: vec![Point::new(1.0, 2.0)],
            telemetry: None,
        })));
    }

    #[test]
    fn batch_items_hit_the_documented_constants() {
        let abs = BatchItem::Absolute(UpdateItem {
            origin: Point::new(10.0, 20.0),
            payload_bytes: 64,
            entity: 9,
            ring: 1,
            vx: 0.0,
            vy: 0.0,
            trace: None,
        });
        let delta = BatchItem::Delta(DeltaItem {
            dx: 0.5,
            dy: -0.25,
            payload_bytes: 32,
            entity: 9,
            ring: 0,
            vx: 1.5,
            vy: -2.0,
            trace: None,
        });
        assert_eq!(batch_item_wire_len(&abs), UpdateItem::WIRE_BYTES);
        assert_eq!(
            batch_item_wire_len(&delta),
            DeltaItem::WIRE_BYTES + UpdateItem::VELOCITY_WIRE_BYTES
        );
        let frame = Frame::Server(GameToClient::UpdateBatch {
            updates: vec![abs, delta],
        });
        let bytes = encode_frame(&frame, FrameMeta::default(), true);
        assert_eq!(
            bytes.len(),
            update_batch_frame_len(&[abs, delta], true),
            "arithmetic length must match the encoder"
        );
        round_trip(frame);
    }

    #[test]
    fn wide_escapes_round_trip() {
        // Entity beyond u24, payload beyond u16, off-lattice delta and
        // velocity: every wide bit at once.
        let item = BatchItem::Delta(DeltaItem {
            dx: 0.1, // not a 1/256 multiple
            dy: 9000.0,
            payload_bytes: 100_000,
            entity: u64::MAX,
            ring: 3,
            vx: 0.3,
            vy: 0.0,
            trace: None,
        });
        assert_eq!(batch_item_wire_len(&item), 1 + 8 + 8 + 16 + 16);
        round_trip(Frame::Server(GameToClient::UpdateBatch {
            updates: vec![item],
        }));
    }

    #[test]
    fn crc_rejects_corruption() {
        let frame = Frame::Client(ClientToGame::Move {
            pos: Point::new(5.0, 6.0),
        });
        let mut bytes = encode_frame(&frame, FrameMeta::default(), true);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(decode_frame(&bytes).is_err(), "flipped CRC must fail");
    }

    #[test]
    fn accumulator_resyncs_after_corruption() {
        let a = encode_frame(
            &Frame::Server(GameToClient::Ack { seq: 1 }),
            FrameMeta::default(),
            true,
        );
        let mut b = encode_frame(
            &Frame::Server(GameToClient::Ack { seq: 2 }),
            FrameMeta::default(),
            true,
        );
        let c = encode_frame(
            &Frame::Server(GameToClient::Ack { seq: 3 }),
            FrameMeta::default(),
            true,
        );
        b[HEADER_BYTES] ^= 0xFF; // corrupt B's body; its CRC now fails
        let mut acc = FrameAccumulator::new();
        acc.push(&a);
        acc.push(&b);
        acc.push(&c);
        let mut frames = Vec::new();
        let mut errors = 0;
        while let Some(item) = acc.next() {
            match item {
                Ok((frame, _)) => frames.push(frame),
                Err(_) => errors += 1,
            }
        }
        assert_eq!(
            frames,
            vec![
                Frame::Server(GameToClient::Ack { seq: 1 }),
                Frame::Server(GameToClient::Ack { seq: 3 }),
            ],
            "the stream must recover at the next magic boundary"
        );
        assert!(errors >= 1, "the corrupt frame must surface as an error");
        assert_eq!(acc.pending_bytes(), 0);
    }

    #[test]
    fn trace_flag_is_rejected_on_non_batch_frames() {
        // Only `T_BATCH` carries a trace section; the flag on any other
        // type means a corrupt or hostile stream, and the decoder must
        // refuse before trying to read a section that is not there.
        let frames = [
            Frame::Hello { version: 2 },
            Frame::Client(ClientToGame::Move {
                pos: Point::new(5.0, 6.0),
            }),
            Frame::Client(ClientToGame::TraceAck {
                ring: 0,
                latency_us: 10,
                staleness_us: 20,
            }),
            Frame::Server(GameToClient::Ack { seq: 9 }),
        ];
        for frame in frames {
            // No CRC, so the flipped flag is the only defect on trial.
            let mut bytes = encode_frame(&frame, FrameMeta::default(), false);
            assert_eq!(bytes[3] & FLAG_TRACE, 0, "{frame:?} must encode untraced");
            bytes[3] |= FLAG_TRACE;
            let err = decode_frame(&bytes).expect_err("trace flag must be rejected");
            assert!(
                err.to_string().contains("non-batch"),
                "unexpected error for {frame:?}: {err}"
            );
        }
    }

    #[test]
    fn truncated_frames_wait_for_more_bytes() {
        let bytes = encode_frame(
            &Frame::Client(ClientToGame::Join {
                pos: Point::new(1.0, 2.0),
                state_bytes: 64,
            }),
            FrameMeta::default(),
            true,
        );
        for cut in 0..bytes.len() {
            assert_eq!(
                decode_frame(&bytes[..cut]).expect("prefix must stay decodable"),
                FrameStatus::Incomplete,
                "prefix of {cut} bytes"
            );
        }
    }
}
