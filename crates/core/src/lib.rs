//! # matrix-core — the Matrix adaptive game middleware
//!
//! A reproduction of the middleware described in *Balan, Ebling, Castro,
//! Misra: "Matrix: Adaptive Middleware for Distributed Multiplayer Games"*
//! (Middleware 2005). Matrix scales a massively multiplayer game across a
//! dynamic fleet of servers by:
//!
//! * partitioning the game world into per-server rectangles,
//! * routing **spatially tagged** packets to each point's *consistency
//!   set* through O(1) overlap-table lookups ([`MatrixServer`]),
//! * recomputing those tables centrally on topology changes
//!   ([`Coordinator`]),
//! * **splitting** overloaded partitions onto servers drawn from a
//!   [`ResourcePool`] and **reclaiming** underloaded children, with
//!   hysteresis against oscillation,
//! * redirecting clients transparently during splits, reclaims and
//!   roaming ([`GameServerNode`]),
//! * **interest management** inside each game server: an incremental
//!   spatial-hash [`InterestGrid`] answers "which local clients can see
//!   this event" in O(cells + matches) instead of scanning every
//!   client, with a per-client vision radius
//!   (`GameServerConfig::vision_radius`) distinct from the
//!   consistency-set radius — or a multi-tier AOI of concentric
//!   [`RingSet`] vision rings (`ring_radii` / `ring_sample_rates`:
//!   near = every event, outer tiers deterministically sampled) — and
//!   an [`UpdateBatcher`] that coalesces client-bound updates into
//!   `GameToClient::UpdateBatch` messages on a configurable flush
//!   interval (`batch_interval`), with bandwidth accounting in
//!   [`GameStats`],
//! * **adaptive per-client dissemination** on every batch flush,
//!   composed as an explicit [`DisseminationPipeline`]: a
//!   [`FlushPolicy`] ranks pending items by relevance and merges/drops
//!   the farthest first to fit the `max_updates_per_flush` /
//!   `client_budget_bytes` budgets, and a [`DeltaEncoder`] compresses
//!   item origins into exact deltas ([`BatchItem::Delta`]) with
//!   periodic keyframes (`keyframe_every`) and resync on join/handover
//!   — receivers rebuild absolute positions with
//!   [`reconstruct_updates`]. A density-driven [`AutoTuner`]
//!   (`grid_autotune`) re-picks the grid resolution as regions fill
//!   and drain, and replicates its learned state to warm standbys.
//!
//! Every component is a **sans-io state machine**: handlers take one input
//! message and return the actions to perform. The discrete-event harness
//! (`matrix-experiments`) and the tokio runtime (`matrix-rt`) drive the
//! same code, so simulation results and deployments cannot drift apart.
//!
//! # Example
//!
//! Route one boundary packet between two servers:
//!
//! ```
//! use matrix_core::{Action, MatrixConfig, MatrixServer, GameToMatrix, PeerMsg};
//! use matrix_core::{ClientId, GamePacket, SpatialTag, CoordReply};
//! use matrix_geometry::{build_overlap, Metric, PartitionMap, Point, Rect, ServerId, SplitStrategy};
//! use matrix_sim::SimTime;
//!
//! // Two servers split the world; the coordinator's tables are installed.
//! let world = Rect::from_coords(0.0, 0.0, 400.0, 400.0);
//! let mut map = PartitionMap::new(world, ServerId(1));
//! map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[]).unwrap();
//! let overlap = build_overlap(&map, 50.0, Metric::Euclidean);
//!
//! let mut s1 = MatrixServer::with_range(
//!     ServerId(1), MatrixConfig::default(), map.range_of(ServerId(1)).unwrap(), 50.0);
//! s1.on_coord(SimTime::ZERO, CoordReply::Tables {
//!     epoch: 1,
//!     table: overlap.table_for(ServerId(1)).unwrap().clone(),
//!     extra_tables: vec![],
//!     map: map.clone(),
//! });
//!
//! // A packet near the boundary is routed to the neighbour.
//! let pkt = GamePacket::synthetic(ClientId(1), SpatialTag::at(Point::new(210.0, 200.0)), 64, 0);
//! let actions = s1.on_game(SimTime::ZERO, GameToMatrix::Forward(pkt));
//! assert!(matches!(&actions[0], Action::ToPeer(s, PeerMsg::Update(_)) if *s == ServerId(2)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod baseline;
pub mod codec;
pub mod codec_v2;
mod config;
mod coordinator;
mod gameserver;
mod load;
mod messages;
mod packet;
mod pool;
mod server;

pub use config::{CoordinatorConfig, GameServerConfig, MatrixConfig, WireCodec};
pub use coordinator::{CoordAction, CoordLog, Coordinator, CoordinatorStats};
pub use gameserver::{GameAction, GameServerNode, GameStats};
pub use load::{Cooldown, LoadTracker};
pub use messages::{
    reconstruct_updates, BatchItem, ClientToGame, CoordMsg, CoordReply, DeltaItem, Envelope,
    GameToClient, GameToMatrix, LoadReport, LoadSnapshot, MatrixToGame, PeerMsg, PoolMsg,
    PoolPurpose, PoolReply, RegionSnapshot, ReplicaBatch, ReplicaOp, UpdateItem,
};
pub use packet::{ClientId, GamePacket, SpatialTag};
pub use pool::{PoolStats, ResourcePool};
pub use server::{Action, Lifecycle, MatrixServer, ServerStats};

// Re-export the interest-management subsystem at the API boundary: game
// servers own an `InterestGrid` and drivers may want to query it; the
// delta codec and flush policy are reused by clients and test suites.
pub use matrix_interest::{
    quantize, AutoTuner, AutoTunerConfig, DeltaEncoder, DeltaStream, Disseminated,
    DisseminationPipeline, EncodedOrigin, FlushPolicy, InterestGrid, PipelineConfig, RingSampler,
    RingSet, Selection, UpdateBatcher, ANON_ENTITY, MAX_RINGS,
};

// Re-export the dead-reckoning subsystem: receivers run an
// `Extrapolator` between flushes, and the sender-side pieces are reused
// by the property suites and the predict experiment.
pub use matrix_interest::{
    extrapolate, quantize_velocity, Admission, Basis, Extrapolator, MotionModel, PredictedStream,
    PredictorConfig,
};

// Re-export the replication subsystem's moving parts: drivers inspect
// batches and snapshots, and the standby/primary state machines are
// reused by the runtime and the property suites.
pub use matrix_replication::{
    PendingUpdate, PredictBasis, ReplicaApply, ReplicaLog, ReplicaLogStats, ReplicaPayload,
    ReplicaReceiver, SessionState, StreamBase,
};

// Re-export the telemetry plane: drivers assemble and merge
// `TelemetrySnapshot`s, read the coordinator's flight recorder, and
// render Prometheus text from the same types the wire codec carries.
pub use matrix_telemetry::{
    diag_line, emit_diag, render_prometheus, EventKind, FlightRecorder, HistSnapshot, Histogram,
    SloTargets, SloTracker, Stage, StageSpans, TelemetryEvent, TelemetrySnapshot, TraceTag,
    BURN_ONE_BP, SLO_RINGS,
};

// Re-export the spatial vocabulary users need at the API boundary.
pub use matrix_geometry::{Metric, Point, Rect, ServerId, SplitStrategy};
