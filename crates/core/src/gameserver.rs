//! The game-server node: the developer-provided half of a Matrix
//! deployment, emulated.
//!
//! §3.2.2 defines the contract a game server must fulfil: identify players
//! globally, forward spatially tagged packets to the local Matrix server,
//! report load periodically, and obey redirect/state-transfer instructions
//! during splits and reclaims. [`GameServerNode`] implements exactly that
//! contract and nothing else — game logic stays in the workload crates,
//! mirroring how Matrix "supports the distributed operation of various
//! MMOGs without actually needing to understand the game logic".

use crate::config::GameServerConfig;
use crate::messages::{ClientToGame, GameToClient, GameToMatrix, LoadReport, MatrixToGame};
use crate::packet::{ClientId, GamePacket, SpatialTag};
use bytes::Bytes;
use matrix_geometry::{Point, Rect, ServerId};
use matrix_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An effect the game server asks its driver to carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum GameAction {
    /// Send to the co-located Matrix server.
    ToMatrix(GameToMatrix),
    /// Send to a connected client.
    ToClient(ClientId, GameToClient),
}

/// Counters for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GameStats {
    /// Clients that joined (including re-joins after switches).
    pub joins: u64,
    /// Clients that left voluntarily.
    pub leaves: u64,
    /// Movement packets processed.
    pub moves: u64,
    /// Action packets processed.
    pub actions: u64,
    /// Updates delivered from peer servers via Matrix.
    pub remote_updates: u64,
    /// Client-bound update fan-outs generated (or counted, when fan-out
    /// emission is disabled).
    pub updates_fanned: u64,
    /// Clients redirected away (splits, reclaims, roaming).
    pub redirects_out: u64,
    /// Per-client states received ahead of incoming switches.
    pub client_states_in: u64,
    /// Bulk state bytes received (split bootstrap).
    pub state_bytes_in: u64,
    /// Owner queries sent for roaming clients.
    pub whereis_queries: u64,
    /// Joins accepted before the bulk state transfer finished (measures
    /// the split readiness gap).
    pub joins_before_ready: u64,
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ClientRecord {
    pos: Point,
    state_bytes: u64,
    /// Set while an owner query is in flight so one roaming client does
    /// not flood WhereIs.
    resolving: bool,
}

/// The emulated game server. Drive it with `on_client`, `on_matrix` and
/// `on_tick`; it never talks to anything but its clients and its local
/// Matrix server.
#[derive(Debug, Clone)]
pub struct GameServerNode {
    id: ServerId,
    cfg: GameServerConfig,
    radius: f64,
    range: Option<Rect>,
    clients: BTreeMap<ClientId, ClientRecord>,
    /// Whether update fan-out to clients is emitted as real messages
    /// (true in the tokio runtime) or only counted (discrete-event runs).
    emit_fanout: bool,
    ready: bool,
    ticks: u64,
    seq: u64,
    stats: GameStats,
}

impl GameServerNode {
    /// Creates a node that has not yet registered or received a range.
    pub fn new(id: ServerId, cfg: GameServerConfig) -> GameServerNode {
        GameServerNode {
            id,
            cfg,
            radius: 0.0,
            range: None,
            clients: BTreeMap::new(),
            emit_fanout: false,
            ready: false,
            ticks: 0,
            seq: 0,
            stats: GameStats::default(),
        }
    }

    /// Enables per-client update emission (used by the tokio runtime where
    /// clients are real connections).
    pub fn with_fanout(mut self) -> GameServerNode {
        self.emit_fanout = true;
        self
    }

    /// Developer API entry point: register the game with Matrix
    /// (the bootstrap server calls this once at startup).
    pub fn register(&mut self, world: Rect, radius: f64) -> Vec<GameAction> {
        self.radius = radius;
        self.range = Some(world);
        self.ready = true;
        vec![GameAction::ToMatrix(GameToMatrix::Register { world, radius })]
    }

    // -- accessors -----------------------------------------------------------

    /// This node's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Connected client count.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The map range this server manages.
    pub fn range(&self) -> Option<Rect> {
        self.range
    }

    /// Whether bulk state has arrived (fresh split children start false).
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Counters for experiments.
    pub fn stats(&self) -> &GameStats {
        &self.stats
    }

    /// Positions of all connected clients (for tests and load-aware
    /// experiments).
    pub fn client_positions(&self) -> Vec<Point> {
        self.clients.values().map(|c| c.pos).collect()
    }

    /// Whether a specific client is connected here.
    pub fn has_client(&self, client: ClientId) -> bool {
        self.clients.contains_key(&client)
    }

    // -- client input ----------------------------------------------------------

    /// Handles a message from a game client.
    pub fn on_client(&mut self, _now: SimTime, client: ClientId, msg: ClientToGame) -> Vec<GameAction> {
        match msg {
            ClientToGame::Join { pos, state_bytes } => {
                self.stats.joins += 1;
                if !self.ready {
                    self.stats.joins_before_ready += 1;
                }
                self.clients.insert(client, ClientRecord { pos, state_bytes, resolving: false });
                let mut out = vec![GameAction::ToClient(client, GameToClient::Joined { server: self.id })];
                out.extend(self.check_roaming(client));
                out
            }
            ClientToGame::Move { pos } => {
                self.stats.moves += 1;
                let Some(rec) = self.clients.get_mut(&client) else {
                    return Vec::new(); // stale packet from a switched client
                };
                rec.pos = pos;
                let mut out = self.forward_event(client, pos, self.cfg_move_bytes());
                out.extend(self.fan_out(pos, self.cfg_move_bytes(), Some(client)));
                out.extend(self.check_roaming(client));
                out
            }
            ClientToGame::Action { pos, payload_bytes } => {
                self.stats.actions += 1;
                let Some(rec) = self.clients.get_mut(&client) else {
                    return Vec::new();
                };
                rec.pos = pos;
                let seq = self.seq;
                let mut out = self.forward_event(client, pos, payload_bytes);
                out.push(GameAction::ToClient(client, GameToClient::Ack { seq }));
                out.extend(self.fan_out(pos, payload_bytes, Some(client)));
                out.extend(self.check_roaming(client));
                out
            }
            ClientToGame::Leave => {
                if self.clients.remove(&client).is_some() {
                    self.stats.leaves += 1;
                }
                Vec::new()
            }
        }
    }

    fn cfg_move_bytes(&self) -> usize {
        32 // position + orientation + velocity
    }

    /// Spatially tags an event and forwards it to Matrix (§3.1).
    fn forward_event(&mut self, client: ClientId, pos: Point, payload_bytes: usize) -> Vec<GameAction> {
        let seq = self.seq;
        self.seq += 1;
        let pkt = GamePacket {
            client: Some(client),
            tag: SpatialTag::at(pos),
            payload: Bytes::from(vec![0u8; payload_bytes]),
            seq,
        };
        vec![GameAction::ToMatrix(GameToMatrix::Forward(pkt))]
    }

    /// Delivers an event to every local client within the radius of
    /// visibility. Emission is optional; counting is not, because the
    /// fan-out volume is what loads a hotspot server.
    fn fan_out(&mut self, origin: Point, payload_bytes: usize, exclude: Option<ClientId>) -> Vec<GameAction> {
        let mut out = Vec::new();
        let mut n = 0;
        for (cid, rec) in &self.clients {
            if Some(*cid) == exclude {
                continue;
            }
            if rec.pos.distance_by(origin, self.cfg.metric) <= self.radius {
                n += 1;
                if self.emit_fanout {
                    out.push(GameAction::ToClient(
                        *cid,
                        GameToClient::Update { origin, payload_bytes },
                    ));
                }
            }
        }
        self.stats.updates_fanned += n;
        out
    }

    /// Emits an owner query when `client` wandered outside our range.
    fn check_roaming(&mut self, client: ClientId) -> Vec<GameAction> {
        let Some(range) = self.range else {
            return Vec::new();
        };
        let Some(rec) = self.clients.get_mut(&client) else {
            return Vec::new();
        };
        let outside_by = range.distance_to(rec.pos, self.cfg.metric);
        if outside_by <= self.cfg.handoff_margin || rec.resolving {
            return Vec::new();
        }
        rec.resolving = true;
        self.stats.whereis_queries += 1;
        vec![GameAction::ToMatrix(GameToMatrix::WhereIs { client, point: rec.pos })]
    }

    // -- matrix input ------------------------------------------------------------

    /// Handles an instruction from the co-located Matrix server.
    pub fn on_matrix(&mut self, _now: SimTime, msg: MatrixToGame) -> Vec<GameAction> {
        match msg {
            MatrixToGame::SetRange { range, radius } => {
                self.range = Some(range);
                if radius > 0.0 {
                    self.radius = radius;
                }
                Vec::new()
            }
            MatrixToGame::RedirectClients { region, to } => self.redirect_region(region, to),
            MatrixToGame::RedirectAll { to } => self.redirect_clients(|_| true, to),
            MatrixToGame::Deliver(pkt) => {
                self.stats.remote_updates += 1;
                let origin = pkt.tag.dest.unwrap_or(pkt.tag.origin);
                self.fan_out(origin, pkt.payload.len(), None)
            }
            MatrixToGame::Owner { client, point: _, owner } => {
                if let Some(rec) = self.clients.get_mut(&client) {
                    rec.resolving = false;
                }
                match owner {
                    Some(o) if o != self.id && self.clients.contains_key(&client) => {
                        self.switch_client(client, o)
                    }
                    _ => Vec::new(),
                }
            }
            MatrixToGame::ReceiveState { from: _, bytes } => {
                self.ready = true;
                self.stats.state_bytes_in += bytes;
                Vec::new()
            }
            MatrixToGame::ReceiveClient { from: _, client: _, bytes: _ } => {
                self.stats.client_states_in += 1;
                Vec::new()
            }
        }
    }

    /// Split shedding: push out everyone inside `region`, plus one bulk
    /// state transfer to the new server (§3.2.2).
    fn redirect_region(&mut self, region: Rect, to: ServerId) -> Vec<GameAction> {
        let mut out = vec![GameAction::ToMatrix(GameToMatrix::TransferState {
            to,
            bytes: self.cfg.global_state_bytes,
        })];
        out.extend(self.redirect_clients(|rec| region.contains(rec.pos), to));
        out
    }

    fn redirect_clients(
        &mut self,
        mut pred: impl FnMut(&ClientRecord) -> bool,
        to: ServerId,
    ) -> Vec<GameAction> {
        let moving: Vec<(ClientId, ClientRecord)> = self
            .clients
            .iter()
            .filter(|(_, rec)| pred(rec))
            .map(|(c, r)| (*c, *r))
            .collect();
        let mut out = Vec::with_capacity(moving.len() * 2);
        for (client, rec) in moving {
            self.clients.remove(&client);
            self.stats.redirects_out += 1;
            out.push(GameAction::ToMatrix(GameToMatrix::TransferClient {
                to,
                client,
                bytes: rec.state_bytes.max(self.cfg.client_state_bytes),
            }));
            out.push(GameAction::ToClient(client, GameToClient::SwitchServer { to }));
        }
        out
    }

    fn switch_client(&mut self, client: ClientId, to: ServerId) -> Vec<GameAction> {
        let Some(rec) = self.clients.remove(&client) else {
            return Vec::new();
        };
        self.stats.redirects_out += 1;
        vec![
            GameAction::ToMatrix(GameToMatrix::TransferClient {
                to,
                client,
                bytes: rec.state_bytes.max(self.cfg.client_state_bytes),
            }),
            GameAction::ToClient(client, GameToClient::SwitchServer { to }),
        ]
    }

    // -- timer input ----------------------------------------------------------------

    /// Game tick. `queue_backlog` is the observed receive-queue backlog
    /// (measured by the driver, which owns the queue model); it is folded
    /// into the periodic load report (§3.2.3 "explicit load messages ...
    /// or system performance measurements").
    pub fn on_tick(&mut self, _now: SimTime, queue_backlog: f64) -> Vec<GameAction> {
        self.ticks += 1;
        let mut out = Vec::new();
        if self.ticks.is_multiple_of(self.cfg.report_every_ticks.max(1) as u64) {
            let positions = if self.cfg.report_positions {
                self.client_positions()
            } else {
                Vec::new()
            };
            out.push(GameAction::ToMatrix(GameToMatrix::Load(LoadReport {
                clients: self.clients.len() as u32,
                queue_backlog,
                positions,
            })));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix_sim::SimTime;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 400.0, 400.0)
    }

    fn node() -> GameServerNode {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default());
        g.register(world(), 50.0);
        g
    }

    fn join(g: &mut GameServerNode, id: u64, pos: Point) {
        g.on_client(SimTime::ZERO, ClientId(id), ClientToGame::Join { pos, state_bytes: 100 });
    }

    #[test]
    fn register_claims_world_and_emits_registration() {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default());
        let actions = g.register(world(), 50.0);
        assert!(matches!(
            actions.as_slice(),
            [GameAction::ToMatrix(GameToMatrix::Register { radius, .. })] if *radius == 50.0
        ));
        assert!(g.is_ready());
        assert_eq!(g.range(), Some(world()));
    }

    #[test]
    fn join_is_acknowledged() {
        let mut g = node();
        let actions = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Join { pos: Point::new(10.0, 10.0), state_bytes: 64 },
        );
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, GameToClient::Joined { server })
                if *c == ClientId(1) && *server == ServerId(1))));
        assert_eq!(g.client_count(), 1);
    }

    #[test]
    fn move_forwards_tagged_packet() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let actions =
            g.on_client(SimTime::ZERO, ClientId(1), ClientToGame::Move { pos: Point::new(11.0, 10.0) });
        let forwarded = actions.iter().find_map(|a| match a {
            GameAction::ToMatrix(GameToMatrix::Forward(pkt)) => Some(pkt.clone()),
            _ => None,
        });
        let pkt = forwarded.expect("move must forward a packet");
        assert_eq!(pkt.tag.origin, Point::new(11.0, 10.0));
        assert_eq!(pkt.client, Some(ClientId(1)));
    }

    #[test]
    fn action_is_acked_for_latency_measurement() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let actions = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action { pos: Point::new(10.0, 10.0), payload_bytes: 64 },
        );
        assert!(actions.iter().any(|a| matches!(a, GameAction::ToClient(c, GameToClient::Ack { .. }) if *c == ClientId(1))));
    }

    #[test]
    fn fanout_counts_only_clients_in_radius() {
        let mut g = node();
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0)); // within 50
        join(&mut g, 3, Point::new(350.0, 350.0)); // far away
        g.on_client(SimTime::ZERO, ClientId(1), ClientToGame::Action { pos: Point::new(100.0, 100.0), payload_bytes: 10 });
        assert_eq!(g.stats().updates_fanned, 1, "only client 2 sees the action");
    }

    #[test]
    fn fanout_emission_requires_opt_in() {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));
        let actions = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action { pos: Point::new(100.0, 100.0), payload_bytes: 10 },
        );
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, GameToClient::Update { .. }) if *c == ClientId(2))));
    }

    #[test]
    fn deliver_from_peer_counts_remote_update() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let pkt = GamePacket::synthetic(ClientId(99), SpatialTag::at(Point::new(20.0, 10.0)), 16, 0);
        g.on_matrix(SimTime::ZERO, MatrixToGame::Deliver(pkt));
        assert_eq!(g.stats().remote_updates, 1);
        assert_eq!(g.stats().updates_fanned, 1);
    }

    #[test]
    fn redirect_region_moves_exactly_the_region() {
        let mut g = node();
        join(&mut g, 1, Point::new(50.0, 50.0)); // inside region
        join(&mut g, 2, Point::new(300.0, 300.0)); // outside
        let region = Rect::from_coords(0.0, 0.0, 200.0, 400.0);
        let actions = g.on_matrix(SimTime::ZERO, MatrixToGame::RedirectClients { region, to: ServerId(2) });
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, GameToClient::SwitchServer { to })
                if *c == ClientId(1) && *to == ServerId(2))));
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToMatrix(GameToMatrix::TransferState { to, .. }) if *to == ServerId(2))));
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToMatrix(GameToMatrix::TransferClient { client, .. }) if *client == ClientId(1))));
        assert_eq!(g.client_count(), 1);
        assert!(g.has_client(ClientId(2)));
        assert_eq!(g.stats().redirects_out, 1);
    }

    #[test]
    fn redirect_all_empties_the_server() {
        let mut g = node();
        join(&mut g, 1, Point::new(50.0, 50.0));
        join(&mut g, 2, Point::new(300.0, 300.0));
        let actions = g.on_matrix(SimTime::ZERO, MatrixToGame::RedirectAll { to: ServerId(9) });
        assert_eq!(g.client_count(), 0);
        let switches = actions
            .iter()
            .filter(|a| matches!(a, GameAction::ToClient(_, GameToClient::SwitchServer { .. })))
            .count();
        assert_eq!(switches, 2);
    }

    #[test]
    fn roaming_client_triggers_single_whereis() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        // Shrink our range so the client is now outside.
        g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::SetRange { range: Rect::from_coords(200.0, 0.0, 400.0, 400.0), radius: 50.0 },
        );
        let a1 = g.on_client(SimTime::ZERO, ClientId(1), ClientToGame::Move { pos: Point::new(11.0, 10.0) });
        assert!(a1.iter().any(|a| matches!(a, GameAction::ToMatrix(GameToMatrix::WhereIs { .. }))));
        // A second move while resolving must not re-query.
        let a2 = g.on_client(SimTime::ZERO, ClientId(1), ClientToGame::Move { pos: Point::new(12.0, 10.0) });
        assert!(!a2.iter().any(|a| matches!(a, GameAction::ToMatrix(GameToMatrix::WhereIs { .. }))));
        assert_eq!(g.stats().whereis_queries, 1);
    }

    #[test]
    fn owner_reply_switches_the_client() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let actions = g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::Owner { client: ClientId(1), point: Point::new(10.0, 10.0), owner: Some(ServerId(3)) },
        );
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, GameToClient::SwitchServer { to })
                if *c == ClientId(1) && *to == ServerId(3))));
        assert_eq!(g.client_count(), 0);
    }

    #[test]
    fn owner_reply_naming_self_keeps_client() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let actions = g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::Owner { client: ClientId(1), point: Point::new(10.0, 10.0), owner: Some(ServerId(1)) },
        );
        assert!(actions.is_empty());
        assert_eq!(g.client_count(), 1);
    }

    #[test]
    fn load_report_fires_on_schedule() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let every = GameServerConfig::default().report_every_ticks as u64;
        let mut reports = 0;
        for t in 1..=3 * every {
            let actions = g.on_tick(SimTime::from_millis(t * 100), 42.0);
            for a in actions {
                if let GameAction::ToMatrix(GameToMatrix::Load(r)) = a {
                    reports += 1;
                    assert_eq!(r.clients, 1);
                    assert_eq!(r.queue_backlog, 42.0);
                    assert_eq!(r.positions.len(), 1);
                }
            }
        }
        assert_eq!(reports, 3);
    }

    #[test]
    fn fresh_child_is_not_ready_until_state_arrives() {
        let mut g = GameServerNode::new(ServerId(7), GameServerConfig::default());
        g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::SetRange { range: Rect::from_coords(0.0, 0.0, 200.0, 400.0), radius: 50.0 },
        );
        assert!(!g.is_ready());
        join(&mut g, 1, Point::new(10.0, 10.0));
        assert_eq!(g.stats().joins_before_ready, 1);
        g.on_matrix(SimTime::ZERO, MatrixToGame::ReceiveState { from: ServerId(1), bytes: 1_000_000 });
        assert!(g.is_ready());
        assert_eq!(g.stats().state_bytes_in, 1_000_000);
    }

    #[test]
    fn stale_packets_from_switched_clients_are_ignored() {
        let mut g = node();
        let actions =
            g.on_client(SimTime::ZERO, ClientId(42), ClientToGame::Move { pos: Point::new(1.0, 1.0) });
        assert!(actions.is_empty());
        assert_eq!(g.stats().moves, 1, "counted but not processed");
    }
}
