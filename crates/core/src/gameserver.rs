//! The game-server node: the developer-provided half of a Matrix
//! deployment, emulated.
//!
//! §3.2.2 defines the contract a game server must fulfil: identify players
//! globally, forward spatially tagged packets to the local Matrix server,
//! report load periodically, and obey redirect/state-transfer instructions
//! during splits and reclaims. [`GameServerNode`] implements exactly that
//! contract and nothing else — game logic stays in the workload crates,
//! mirroring how Matrix "supports the distributed operation of various
//! MMOGs without actually needing to understand the game logic".

use crate::codec;
use crate::codec_v2;
use crate::config::{GameServerConfig, WireCodec};
use crate::messages::{
    BatchItem, ClientToGame, DeltaItem, GameToClient, GameToMatrix, LoadReport, MatrixToGame,
    RegionSnapshot, ReplicaOp, UpdateItem,
};
use crate::packet::{ClientId, GamePacket, SpatialTag};
use bytes::Bytes;
use matrix_geometry::{Point, Rect, ServerId};
use matrix_interest::{
    AutoTunerConfig, Basis, DisseminationPipeline, EncodedOrigin, FlushPolicy, PipelineConfig,
    PredictorConfig, RingSet, MAX_RINGS,
};
use matrix_replication::{
    PendingUpdate, PredictBasis, ReplicaLog, ReplicaReceiver, SessionState, StreamBase, TunerState,
};
use matrix_sim::SimTime;
use matrix_telemetry::{EventKind, FlightRecorder, Histogram, Stage, TelemetrySnapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An effect the game server asks its driver to carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum GameAction {
    /// Send to the co-located Matrix server.
    ToMatrix(GameToMatrix),
    /// Send to a connected client.
    ToClient(ClientId, GameToClient),
}

/// Counters for experiments.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GameStats {
    /// Clients that joined (including re-joins after switches).
    pub joins: u64,
    /// Clients that left voluntarily.
    pub leaves: u64,
    /// Movement packets processed.
    pub moves: u64,
    /// Action packets processed.
    pub actions: u64,
    /// Updates delivered from peer servers via Matrix.
    pub remote_updates: u64,
    /// Client-bound update fan-outs generated (or counted, when fan-out
    /// emission is disabled).
    pub updates_fanned: u64,
    /// Clients redirected away (splits, reclaims, roaming).
    pub redirects_out: u64,
    /// Per-client states received ahead of incoming switches.
    pub client_states_in: u64,
    /// Bulk state bytes received (split bootstrap).
    pub state_bytes_in: u64,
    /// Owner queries sent for roaming clients.
    pub whereis_queries: u64,
    /// Joins accepted before the bulk state transfer finished (measures
    /// the split readiness gap).
    pub joins_before_ready: u64,
    /// `UpdateBatch` messages flushed to clients.
    pub batches_flushed: u64,
    /// Individual updates carried inside those batches.
    pub updates_batched: u64,
    /// Estimated bytes of client-bound batch traffic (headers + items +
    /// payloads) — the bandwidth the interest/batching layer accounts for.
    pub batch_bytes: u64,
    /// Updates discarded because their client left or switched away
    /// before the flush.
    pub updates_dropped: u64,
    /// Updates merged or dropped by the per-client flush policy
    /// (`max_updates_per_flush` / `client_budget_bytes`): the graceful
    /// degradation the rate limiter applied instead of queueing.
    pub updates_rate_limited: u64,
    /// Absolute (keyframe) items flushed to clients.
    pub keyframe_items: u64,
    /// Delta-encoded items flushed to clients.
    pub delta_items: u64,
    /// Bytes saved by delta-encoding item origins, relative to sending
    /// every item with absolute coordinates (the v1 wire format).
    pub delta_bytes_saved: u64,
    /// Replication batches shipped to the warm standby.
    pub replica_batches_out: u64,
    /// Estimated bytes of replication traffic shipped — the overhead
    /// fault tolerance costs on the server link.
    pub replica_bytes_out: u64,
    /// Replication acks received from the standby.
    pub replica_acks_in: u64,
    /// Replication batches applied while standing by for a primary.
    pub replica_batches_in: u64,
    /// Resyncs this node requested as a standby (sequence gaps).
    pub replica_resyncs: u64,
    /// Promotions performed: this node took over a dead primary's
    /// region from its replicated snapshot.
    pub promotions: u64,
    /// Client sessions restored from replicated snapshots during
    /// promotions (these clients kept their connection).
    pub clients_restored: u64,
    /// Candidate receivers inside the AOI whose outer vision ring
    /// sampled an event out (multi-tier AOI: far rings deliver every
    /// N-th event instead of all of them).
    pub updates_sampled_out: u64,
    /// Delivered batch items per vision ring (index 0 = near ring; with
    /// rings disabled everything lands in ring 0).
    pub ring_items: [u64; MAX_RINGS],
    /// Times the density-driven auto-tuner re-picked `cells_per_axis`
    /// and rebuilt the interest grid.
    pub grid_retunes: u64,
    /// Candidate deliveries suppressed by dead reckoning: the
    /// receiver's extrapolation held the event within its ring's error
    /// budget, so nothing was transmitted (predictive dissemination).
    pub updates_suppressed: u64,
    /// Batch items degraded to position-only by the per-ring payload
    /// policy (`position_only_ring`).
    pub payloads_stripped: u64,
    /// Sum of the simulated receiver prediction errors over all
    /// suppressed deliveries, world units —
    /// `pred_error_sum / updates_suppressed` is the mean error the
    /// predictions absorbed in place of a transmission.
    pub pred_error_sum: f64,
    /// Largest simulated receiver prediction error among the suppressed
    /// deliveries (bounded by the largest configured ring budget).
    pub pred_error_max: f64,
}

/// The stat deltas one flush produces. Batches arrive from
/// `flush_workers` shards (possibly real worker threads); their
/// contributions accumulate here — plain local arithmetic, no shared
/// counters — and merge into [`GameStats`] exactly once per flush, so
/// the totals are independent of how many shards produced them (pinned
/// by a unit test below).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct FlushStatsDelta {
    batches_flushed: u64,
    updates_batched: u64,
    batch_bytes: u64,
    updates_dropped: u64,
    updates_rate_limited: u64,
    keyframe_items: u64,
    delta_items: u64,
    delta_bytes_saved: u64,
    ring_items: [u64; MAX_RINGS],
}

impl FlushStatsDelta {
    /// Folds this flush's deltas into the node totals.
    fn merge_into(&self, stats: &mut GameStats) {
        stats.batches_flushed += self.batches_flushed;
        stats.updates_batched += self.updates_batched;
        stats.batch_bytes += self.batch_bytes;
        stats.updates_dropped += self.updates_dropped;
        stats.updates_rate_limited += self.updates_rate_limited;
        stats.keyframe_items += self.keyframe_items;
        stats.delta_items += self.delta_items;
        stats.delta_bytes_saved += self.delta_bytes_saved;
        for (total, d) in stats.ring_items.iter_mut().zip(self.ring_items) {
            *total += d;
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct ClientRecord {
    pos: Point,
    state_bytes: u64,
    /// Set while an owner query is in flight so one roaming client does
    /// not flood WhereIs.
    resolving: bool,
}

/// The emulated game server. Drive it with `on_client`, `on_matrix` and
/// `on_tick`; it never talks to anything but its clients and its local
/// Matrix server.
#[derive(Debug, Clone)]
pub struct GameServerNode {
    id: ServerId,
    cfg: GameServerConfig,
    radius: f64,
    range: Option<Rect>,
    clients: BTreeMap<ClientId, ClientRecord>,
    /// The composable dissemination pipeline: interest grid → ring
    /// tiering → entity merge → budget policy → delta encoding, plus the
    /// density-driven grid auto-tuner. Owns all per-client send-path
    /// state (spatial index, pending batches, delta streams).
    pipeline: DisseminationPipeline<ClientId, UpdateItem>,
    /// Warm standby this region replicates to, once the Matrix server
    /// paired one from the pool.
    standby: Option<ServerId>,
    /// Primary-side replica shipping policy and backlog.
    replica: ReplicaLog<ClientId>,
    /// Standby-side replica state (this node mirroring a peer).
    receiver: ReplicaReceiver<ClientId>,
    last_flush: SimTime,
    /// Whether update fan-out to clients is emitted as real messages
    /// (true in the async runtime) or only counted (discrete-event runs).
    emit_fanout: bool,
    ready: bool,
    ticks: u64,
    seq: u64,
    /// Ingested-event counter driving the deterministic trace sampling
    /// decision (`trace_sample_rate`). Counts *every* fan-out source —
    /// local moves/actions and remote deliveries — so a 1-in-N rate
    /// means 1-in-N of the events this node disseminates.
    ingest_seq: u64,
    /// Traced events stamped at ingest (0 with tracing off).
    trace_events: u64,
    /// Trace acks folded back from receivers.
    trace_acks: u64,
    /// Per-ring end-to-end delivery latency from echoed trace acks (µs).
    trace_latency: [Histogram; MAX_RINGS],
    /// Per-ring staleness-at-apply from echoed trace acks (µs): latency
    /// plus the charged age of suppressed/dropped predecessors.
    trace_staleness: [Histogram; MAX_RINGS],
    stats: GameStats,
    /// Structured event ring (joins, handovers, promotions, retunes);
    /// zero-capacity (a no-op) unless `cfg.telemetry` is on.
    recorder: FlightRecorder,
    /// Wall-clock latency of `flush_updates` (µs); empty with telemetry
    /// off.
    flush_hist: Histogram,
}

impl GameServerNode {
    /// Creates a node that has not yet registered or received a range.
    pub fn new(id: ServerId, cfg: GameServerConfig) -> GameServerNode {
        GameServerNode {
            id,
            radius: 0.0,
            range: None,
            clients: BTreeMap::new(),
            pipeline: Self::make_pipeline(Rect::from_coords(0.0, 0.0, 1.0, 1.0), &cfg, 0.0),
            standby: None,
            replica: ReplicaLog::new(cfg.replica_interval, cfg.replica_lag_cap),
            receiver: ReplicaReceiver::new(),
            last_flush: SimTime::ZERO,
            emit_fanout: cfg.emit_updates,
            ready: false,
            ticks: 0,
            seq: 0,
            ingest_seq: 0,
            trace_events: 0,
            trace_acks: 0,
            trace_latency: std::array::from_fn(|_| Histogram::new()),
            trace_staleness: std::array::from_fn(|_| Histogram::new()),
            stats: GameStats::default(),
            recorder: FlightRecorder::new(if cfg.telemetry {
                cfg.telemetry_events as usize
            } else {
                0
            }),
            flush_hist: Histogram::new(),
            cfg,
        }
    }

    /// Enables per-client update emission (used by the async runtime
    /// where clients are real connections).
    pub fn with_fanout(mut self) -> GameServerNode {
        self.emit_fanout = true;
        self
    }

    /// Runs flushes on one real worker thread per shard (used by the
    /// async runtime when `flush_workers > 1`; the discrete-event
    /// harness keeps the deterministic sequential interleaving, whose
    /// output is byte-identical anyway).
    pub fn with_parallel_flush(mut self) -> GameServerNode {
        self.pipeline.set_parallel_flush(true);
        self
    }

    fn make_pipeline(
        bounds: Rect,
        cfg: &GameServerConfig,
        registered_radius: f64,
    ) -> DisseminationPipeline<ClientId, UpdateItem> {
        let mut pipeline = DisseminationPipeline::new(
            bounds,
            cfg.cells_per_axis.max(1),
            Self::ring_set_for(cfg, registered_radius),
            PipelineConfig {
                metric: cfg.metric,
                policy: FlushPolicy {
                    max_items: cfg.max_updates_per_flush as usize,
                    budget_bytes: cfg.client_budget_bytes as usize,
                },
                // The encoder's lattice check must match the quantum
                // fan_out snaps origins to, or the two silently diverge
                // and every item keyframes (0.0 disables both the
                // snapping and the lattice requirement).
                keyframe_every: cfg.keyframe_every,
                origin_quantum: cfg.origin_quantum,
                autotune: if cfg.grid_autotune {
                    AutoTunerConfig::enabled()
                } else {
                    AutoTunerConfig::default()
                },
                predict: if cfg.predict {
                    PredictorConfig {
                        motion_window: cfg.motion_window,
                        velocity_quantum: cfg.velocity_quantum,
                        ..PredictorConfig::with_budgets(&cfg.error_budgets)
                    }
                } else {
                    PredictorConfig::default()
                },
                position_only_ring: cfg.position_only_ring,
                telemetry: cfg.telemetry,
            },
        )
        .with_shards(cfg.flush_workers);
        // Staleness charging (suppressed/dropped event ages charged to
        // the next delivered rebase) only runs when events can actually
        // carry tags — with sampling off the charge maps stay untouched
        // and the flush path is branch-for-branch what it was.
        pipeline.set_trace_charging(cfg.trace_sample_rate > 0);
        pipeline
    }

    /// The AOI tiers for a config: the configured concentric rings, or
    /// the single binary vision radius when none are set.
    fn ring_set_for(cfg: &GameServerConfig, registered_radius: f64) -> RingSet {
        if cfg.rings_configured() {
            RingSet::from_tiers(&cfg.ring_radii, &cfg.ring_sample_rates)
        } else {
            let vision = if cfg.vision_radius > 0.0 {
                cfg.vision_radius
            } else {
                registered_radius
            };
            RingSet::single(vision)
        }
    }

    /// Re-anchors the pipeline's interest grid to a new managed range,
    /// re-indexing the connected clients, and refreshes the ring tiers
    /// (the registered radius may have changed with the range). Splits
    /// and reclaims are rare; moves are not — so the grid is rebuilt
    /// here and edited incrementally everywhere else.
    fn rebuild_grid(&mut self, bounds: Rect) {
        self.pipeline.reset(
            bounds,
            self.clients.iter().map(|(cid, rec)| (*cid, rec.pos)),
        );
        self.pipeline
            .set_rings(Self::ring_set_for(&self.cfg, self.radius));
    }

    /// Developer API entry point: register the game with Matrix
    /// (the bootstrap server calls this once at startup).
    pub fn register(&mut self, world: Rect, radius: f64) -> Vec<GameAction> {
        self.radius = radius;
        self.range = Some(world);
        self.ready = true;
        self.rebuild_grid(world);
        self.replicate(ReplicaOp::Range {
            range: world,
            radius,
        });
        vec![GameAction::ToMatrix(GameToMatrix::Register {
            world,
            radius,
        })]
    }

    /// Records one session op for the warm standby (a no-op until a
    /// standby is paired: the pairing's first batch is a full snapshot,
    /// which supersedes anything recorded before it).
    fn replicate(&mut self, op: ReplicaOp) {
        if self.standby.is_some() {
            self.replica.record(op);
        }
    }

    // -- accessors -----------------------------------------------------------

    /// This node's server id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// Connected client count.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// The map range this server manages.
    pub fn range(&self) -> Option<Rect> {
        self.range
    }

    /// Whether bulk state has arrived (fresh split children start false).
    pub fn is_ready(&self) -> bool {
        self.ready
    }

    /// Counters for experiments.
    pub fn stats(&self) -> &GameStats {
        &self.stats
    }

    /// The structured-event flight recorder (empty ring unless
    /// [`GameServerConfig::telemetry`] is on).
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Assembles this node's telemetry snapshot: hot-path counters,
    /// per-stage span histograms, flush latency and flight-recorder
    /// occupancy. `None` with telemetry off — reports stay exactly as
    /// cheap as before the telemetry plane existed.
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        if !self.cfg.telemetry {
            return None;
        }
        let mut snap = TelemetrySnapshot::new();
        snap.counter("joins", self.stats.joins);
        snap.counter("moves", self.stats.moves);
        snap.counter("actions", self.stats.actions);
        snap.counter("updates_fanned", self.stats.updates_fanned);
        snap.counter("batches_flushed", self.stats.batches_flushed);
        snap.counter("updates_batched", self.stats.updates_batched);
        snap.counter("batch_bytes", self.stats.batch_bytes);
        snap.counter("updates_suppressed", self.stats.updates_suppressed);
        snap.counter("updates_sampled_out", self.stats.updates_sampled_out);
        snap.counter("grid_retunes", self.stats.grid_retunes);
        snap.counter("promotions", self.stats.promotions);
        for stage in Stage::ALL {
            // Stages 1–3 time on the driver thread, stages 4–5 in the
            // per-shard spans; `stage_histogram` is the merged view.
            let h = self.pipeline.stage_histogram(stage);
            snap.hist(format!("stage_{}_us", stage.name()), &h);
        }
        snap.hist("flush_us", &self.flush_hist);
        // Shard balance of the sharded flush (PR 9): max/mean of the
        // per-shard stage-5 (delta/encode) time, in basis points.
        // 10 000 = perfectly even; 2× the mean on the worst shard reads
        // as 20 000. Only meaningful once something actually flushed.
        let sums = self.pipeline.shard_stage_sums(Stage::Delta);
        let mean = sums.iter().sum::<f64>() / sums.len().max(1) as f64;
        if mean > 0.0 {
            let max = sums.iter().cloned().fold(0.0_f64, f64::max);
            snap.counter("flush_shard_imbalance_bp", (max / mean * 10_000.0) as u64);
        }
        // The causal trace plane: stamped/acked volumes and the per-ring
        // end-to-end freshness histograms the coordinator's SLO tracker
        // consumes. Omitted entirely while tracing never ran, keeping
        // tracing-off snapshots identical to pre-trace ones.
        if self.trace_events > 0 || self.trace_acks > 0 {
            snap.counter("trace_events", self.trace_events);
            snap.counter("trace_acks", self.trace_acks);
            for ring in 0..MAX_RINGS {
                snap.hist(
                    format!("delivery_latency_r{ring}_us"),
                    &self.trace_latency[ring],
                );
                snap.hist(format!("staleness_r{ring}_us"), &self.trace_staleness[ring]);
            }
        }
        snap.counter("recorder_capacity", self.recorder.capacity() as u64);
        snap.events_dropped = self.recorder.dropped();
        snap.events_seen = self.recorder.next_seq();
        Some(snap)
    }

    /// Per-ring end-to-end freshness measured from echoed trace acks:
    /// `(delivery latency, staleness at apply)` histograms in µs, index
    /// = vision ring. Empty histograms until traced items were applied
    /// and acked.
    pub fn trace_histograms(&self) -> (&[Histogram; MAX_RINGS], &[Histogram; MAX_RINGS]) {
        (&self.trace_latency, &self.trace_staleness)
    }

    /// Traced events stamped at ingest so far (`0` with tracing off).
    pub fn trace_events(&self) -> u64 {
        self.trace_events
    }

    /// Trace acks received back from clients so far.
    pub fn trace_acks(&self) -> u64 {
        self.trace_acks
    }

    /// Positions of all connected clients (for tests and load-aware
    /// experiments).
    pub fn client_positions(&self) -> Vec<Point> {
        self.clients.values().map(|c| c.pos).collect()
    }

    /// Ids of all connected clients (failure probes snapshot the victim's
    /// population with this).
    pub fn client_ids(&self) -> Vec<ClientId> {
        self.clients.keys().copied().collect()
    }

    /// Whether a specific client is connected here.
    pub fn has_client(&self, client: ClientId) -> bool {
        self.clients.contains_key(&client)
    }

    // -- client input ----------------------------------------------------------

    /// Handles a message from a game client.
    pub fn on_client(
        &mut self,
        now: SimTime,
        client: ClientId,
        msg: ClientToGame,
    ) -> Vec<GameAction> {
        match msg {
            ClientToGame::Join { pos, state_bytes } => {
                self.stats.joins += 1;
                if !self.ready {
                    self.stats.joins_before_ready += 1;
                }
                self.recorder.record(
                    now,
                    EventKind::Join {
                        client: client.0,
                        server: self.id,
                    },
                );
                self.clients.insert(
                    client,
                    ClientRecord {
                        pos,
                        state_bytes,
                        resolving: false,
                    },
                );
                // Subscribe also resyncs the delta stream: a (re)joining
                // client holds no base, so its next flush keyframes.
                self.pipeline.subscribe(client, pos);
                self.replicate(ReplicaOp::Join {
                    client,
                    pos,
                    state_bytes,
                });
                let mut out = vec![GameAction::ToClient(
                    client,
                    GameToClient::Joined { server: self.id },
                )];
                out.extend(self.check_roaming(client));
                out
            }
            ClientToGame::Move { pos } => {
                self.stats.moves += 1;
                let Some(rec) = self.clients.get_mut(&client) else {
                    return Vec::new(); // stale packet from a switched client
                };
                rec.pos = pos;
                self.pipeline.reposition(client, pos);
                self.replicate(ReplicaOp::Move { client, pos });
                let mut out = self.forward_event(client, pos, self.cfg_move_bytes());
                out.extend(self.fan_out(
                    now,
                    pos,
                    self.cfg_move_bytes(),
                    Some(client),
                    client.0,
                    // A pure position update: receivers reconstruct it
                    // by extrapolation, so prediction may suppress it.
                    true,
                ));
                out.extend(self.check_roaming(client));
                out
            }
            ClientToGame::Action { pos, payload_bytes } => {
                self.stats.actions += 1;
                let Some(rec) = self.clients.get_mut(&client) else {
                    return Vec::new();
                };
                rec.pos = pos;
                self.pipeline.reposition(client, pos);
                self.replicate(ReplicaOp::Move { client, pos });
                let seq = self.seq;
                let mut out = self.forward_event(client, pos, payload_bytes);
                out.push(GameAction::ToClient(client, GameToClient::Ack { seq }));
                out.extend(self.fan_out(
                    now,
                    pos,
                    payload_bytes,
                    Some(client),
                    client.0,
                    // An action's payload cannot be extrapolated:
                    // never suppressed (it still rebases predictions).
                    false,
                ));
                out.extend(self.check_roaming(client));
                out
            }
            ClientToGame::TraceAck {
                ring,
                latency_us,
                staleness_us,
            } => {
                // Close the causal loop: the receiver measured one
                // sampled item end-to-end and echoed the numbers; fold
                // them into the per-ring freshness histograms the
                // heartbeat ships to the coordinator's SLO tracker.
                self.trace_acks += 1;
                let r = (ring as usize).min(MAX_RINGS - 1);
                self.trace_latency[r].record(latency_us as f64);
                self.trace_staleness[r].record(staleness_us as f64);
                Vec::new()
            }
            ClientToGame::Leave => {
                if self.clients.remove(&client).is_some() {
                    self.stats.leaves += 1;
                    self.stats.updates_dropped += self.pipeline.unsubscribe(client) as u64;
                    // The client is also an entity: drop its motion
                    // track and every receiver's prediction basis for it.
                    self.pipeline.forget_entity(client.0);
                    self.replicate(ReplicaOp::Leave { client });
                }
                Vec::new()
            }
        }
    }

    fn cfg_move_bytes(&self) -> usize {
        32 // position + orientation + velocity
    }

    /// Spatially tags an event and forwards it to Matrix (§3.1).
    fn forward_event(
        &mut self,
        client: ClientId,
        pos: Point,
        payload_bytes: usize,
    ) -> Vec<GameAction> {
        let seq = self.seq;
        self.seq += 1;
        let pkt = GamePacket {
            client: Some(client),
            tag: SpatialTag::at(pos),
            payload: Bytes::from(vec![0u8; payload_bytes]),
            seq,
        };
        vec![GameAction::ToMatrix(GameToMatrix::Forward(pkt))]
    }

    /// Delivers an event to every local client whose area of interest
    /// contains it, through the pipeline's query + tiering + prediction
    /// stages: receivers come from the interest grid (O(cells + matches)
    /// instead of a scan over all clients), each is graded into its
    /// vision ring by distance, outer rings deterministically sample
    /// (near = every event), and — with `predict` on — receivers whose
    /// dead-reckoning extrapolation holds the event within the ring's
    /// error budget are *suppressed* entirely. Admitted updates coalesce
    /// per client and flush as `UpdateBatch` messages on the batch
    /// interval. Emission is optional; counting is not, because the
    /// fan-out volume is what loads a hotspot server.
    fn fan_out(
        &mut self,
        now: SimTime,
        origin: Point,
        payload_bytes: usize,
        exclude: Option<ClientId>,
        entity: u64,
        suppressible: bool,
    ) -> Vec<GameAction> {
        // Receivers are selected against the true origin; what they are
        // *told* is the lattice-snapped origin, so inter-origin offsets
        // fit the compact delta frame (see `matrix_interest::quantize`).
        // Prediction bases live in the same wire coordinates, which is
        // what makes the sender's error simulation equal the receiver's
        // real extrapolation error.
        let wire_origin = matrix_interest::quantize(origin, self.cfg.origin_quantum);
        // Trace stamping: a deterministic 1-in-`trace_sample_rate`
        // subset of ingested events carries a causal tag from here to
        // the receiving client's apply. Sim time, never wall clock, so
        // the sampled subset and every measured latency replay exactly.
        let ingest_seq = self.ingest_seq;
        self.ingest_seq += 1;
        let trace = if matrix_telemetry::TraceTag::sampled(ingest_seq, self.cfg.trace_sample_rate) {
            self.trace_events += 1;
            Some(matrix_telemetry::TraceTag::new(
                self.id.0,
                ingest_seq as u32,
                now.as_micros(),
            ))
        } else {
            None
        };
        let stats = self.pipeline.disseminate(
            origin,
            wire_origin,
            entity,
            now.as_secs_f64(),
            suppressible,
            exclude,
            self.emit_fanout,
            |ring, (vx, vy)| UpdateItem {
                origin: wire_origin,
                payload_bytes,
                entity,
                ring,
                vx,
                vy,
                trace,
            },
        );
        self.stats.updates_fanned += stats.delivered;
        self.stats.updates_sampled_out += stats.sampled_out;
        self.stats.updates_suppressed += stats.suppressed;
        self.stats.payloads_stripped += stats.stripped;
        self.stats.pred_error_sum += stats.pred_error_sum;
        self.stats.pred_error_max = self.stats.pred_error_max.max(stats.pred_error_max);
        self.flush_if_due(now)
    }

    /// Flushes pending batches when the batch interval has elapsed.
    fn flush_if_due(&mut self, now: SimTime) -> Vec<GameAction> {
        if !self.pipeline.has_pending() || now.since(self.last_flush) < self.cfg.batch_interval {
            return Vec::new();
        }
        self.flush_updates(now)
    }

    /// Flushes every pending client-bound update batch immediately
    /// through the pipeline's merge → budget → encode stages
    /// ([`matrix_interest::DisseminationPipeline::flush`]): pending
    /// items are ranked nearest-first against each client's position,
    /// per-entity duplicates superseded and the farthest merged/dropped
    /// until `max_updates_per_flush` / `client_budget_bytes` fit, then
    /// surviving origins are chained as exact delta offsets with
    /// periodic keyframes, shrinking each item from
    /// [`UpdateItem::WIRE_BYTES`] to [`DeltaItem::WIRE_BYTES`] of
    /// framing.
    ///
    /// Drivers call this from their tick path (both the discrete-event
    /// harness and the async runtime tick through [`GameServerNode::on_tick`],
    /// which flushes due batches); exposing it publicly lets a driver
    /// force a flush. On a *graceful stop* use
    /// [`GameServerNode::shutdown_flush`] instead, which also clears the
    /// per-client delta bases.
    pub fn flush_updates(&mut self, now: SimTime) -> Vec<GameAction> {
        self.last_flush = now;
        if !self.pipeline.has_pending() {
            return Vec::new();
        }
        let t0 = self.cfg.telemetry.then(std::time::Instant::now);
        // A client may have switched away between queueing and flush:
        // the pipeline orphans its items instead of delivering them.
        let clients = &self.clients;
        let outcome = self
            .pipeline
            .flush(|cid| clients.get(&cid).map(|rec| rec.pos));
        // Accumulate this flush's stat contributions locally and merge
        // them into the node totals exactly once at the end — batches
        // from concurrent shards never interleave `+=` on the shared
        // counters.
        let mut delta = FlushStatsDelta {
            updates_dropped: outcome.orphaned,
            ..FlushStatsDelta::default()
        };
        let mut out = Vec::with_capacity(outcome.batches.len());
        for batch in outcome.batches {
            delta.updates_rate_limited += batch.rate_limited;
            delta.batches_flushed += 1;
            delta.updates_batched += batch.items.len() as u64;
            let mut items = Vec::with_capacity(batch.items.len());
            for (u, encoded) in batch.items.into_iter().zip(batch.origins) {
                let item = match encoded {
                    EncodedOrigin::Absolute(origin) => {
                        BatchItem::Absolute(UpdateItem { origin, ..u })
                    }
                    EncodedOrigin::Offset { dx, dy } => BatchItem::Delta(DeltaItem {
                        dx,
                        dy,
                        payload_bytes: u.payload_bytes,
                        entity: u.entity,
                        ring: u.ring,
                        vx: u.vx,
                        vy: u.vy,
                        trace: u.trace,
                    }),
                };
                delta.ring_items[(u.ring as usize).min(MAX_RINGS - 1)] += 1;
                if item.is_keyframe() {
                    delta.keyframe_items += 1;
                } else {
                    delta.delta_items += 1;
                    delta.delta_bytes_saved +=
                        (UpdateItem::WIRE_BYTES - DeltaItem::WIRE_BYTES) as u64;
                }
                items.push(item);
            }
            // Bytes-on-wire accounting is *measured* against the active
            // codec, not modelled: the binary frame length comes from
            // the codec's arithmetic mirror of its encoder (pinned
            // equal by the property suite), the JSON length from
            // actually encoding the line. Declared payload sizes ride
            // on top in both — the sim ships sizes, not state.
            let payload: usize = items.iter().map(|i| i.payload_bytes()).sum();
            let frame = match self.cfg.codec {
                WireCodec::BinaryV2 => codec_v2::update_batch_frame_len(&items, self.cfg.frame_crc),
                WireCodec::Json => {
                    let msg = GameToClient::UpdateBatch { updates: items };
                    let len = codec::encode_game_to_client(&msg).len() + 1;
                    let GameToClient::UpdateBatch { updates } = msg else {
                        unreachable!("constructed an UpdateBatch above");
                    };
                    items = updates;
                    len
                }
            };
            delta.batch_bytes += (frame + payload) as u64;
            out.push(GameAction::ToClient(
                batch.receiver,
                GameToClient::UpdateBatch { updates: items },
            ));
        }
        delta.merge_into(&mut self.stats);
        if let Some(t0) = t0 {
            let us = t0.elapsed().as_secs_f64() * 1e6;
            self.flush_hist.record(us);
            // Slow-flush capture: when one flush blows the configured
            // threshold, dump its per-stage, per-shard span breakdown
            // into the flight recorder — the post-mortem answers "which
            // stage, which shard" without re-running the workload.
            let threshold = self.cfg.slow_flush_threshold_us;
            if threshold > 0 && us as u64 >= threshold {
                for (shard, spans) in self.pipeline.last_flush_spans().into_iter().enumerate() {
                    self.recorder.record(
                        now,
                        EventKind::SlowFlush {
                            server: self.id,
                            shard: shard as u32,
                            total_us: us as u64,
                            stages: spans.map(|s| s as u64),
                        },
                    );
                }
            }
        }
        out
    }

    /// Final flush on a graceful driver stop: delivers what the batcher
    /// still holds *and* clears every per-client delta base, so a client
    /// that rejoins a resurrected node gets a keyframe, never a delta
    /// against a base it lost with the old connection.
    pub fn shutdown_flush(&mut self, now: SimTime) -> Vec<GameAction> {
        let out = self.flush_updates(now);
        self.pipeline.clear_streams();
        // Reconnecting clients extrapolate from nothing, so the
        // sender-side mirror must restart empty too.
        self.pipeline.clear_bases();
        out
    }

    /// Number of clients currently holding at least one dead-reckoning
    /// prediction basis (observability for drivers and tests).
    pub fn prediction_receivers(&self) -> usize {
        self.pipeline.prediction_receivers()
    }

    /// Number of clients whose delta stream currently holds a base
    /// (observability for drivers and tests).
    pub fn delta_streams(&self) -> usize {
        self.pipeline.streams()
    }

    /// The interest grid's current resolution (cells per axis) — the
    /// configured value, or whatever the density-driven auto-tuner last
    /// picked when `grid_autotune` is on.
    pub fn grid_cells_per_axis(&self) -> u32 {
        self.pipeline.cells_per_axis()
    }

    /// Ships the next replication batch to the warm standby when one is
    /// due: a full snapshot until the standby acknowledges one (and
    /// after any resync request), incremental ops otherwise.
    fn ship_replica(&mut self, now: SimTime) -> Vec<GameAction> {
        let Some(standby) = self.standby else {
            return Vec::new();
        };
        if !self.replica.due(now) {
            return Vec::new();
        }
        let batch = if self.replica.needs_full() {
            let snapshot = self.snapshot();
            Some(self.replica.ship_full(now, snapshot))
        } else {
            self.replica.ship_ops(now)
        };
        let Some(batch) = batch else {
            return Vec::new(); // idle region, nothing to say
        };
        self.stats.replica_batches_out += 1;
        self.stats.replica_bytes_out += batch.wire_bytes() as u64;
        vec![GameAction::ToMatrix(GameToMatrix::Replica {
            to: standby,
            batch,
        })]
    }

    /// The warm standby currently paired with this region, if any.
    pub fn standby(&self) -> Option<ServerId> {
        self.standby
    }

    /// Whether this node holds a peer's replicated snapshot (it is a
    /// warm standby ready for promotion).
    pub fn is_warm_standby(&self) -> bool {
        self.receiver.is_warm()
    }

    /// Emits an owner query when `client` wandered outside our range.
    fn check_roaming(&mut self, client: ClientId) -> Vec<GameAction> {
        let Some(range) = self.range else {
            return Vec::new();
        };
        let Some(rec) = self.clients.get_mut(&client) else {
            return Vec::new();
        };
        let outside_by = range.distance_to(rec.pos, self.cfg.metric);
        if outside_by <= self.cfg.handoff_margin || rec.resolving {
            return Vec::new();
        }
        rec.resolving = true;
        self.stats.whereis_queries += 1;
        vec![GameAction::ToMatrix(GameToMatrix::WhereIs {
            client,
            point: rec.pos,
        })]
    }

    // -- matrix input ------------------------------------------------------------

    /// Handles an instruction from the co-located Matrix server.
    pub fn on_matrix(&mut self, now: SimTime, msg: MatrixToGame) -> Vec<GameAction> {
        match msg {
            MatrixToGame::SetRange { range, radius } => {
                self.range = Some(range);
                if radius > 0.0 {
                    self.radius = radius;
                }
                self.rebuild_grid(range);
                self.replicate(ReplicaOp::Range { range, radius });
                Vec::new()
            }
            MatrixToGame::RedirectClients { region, to } => self.redirect_region(region, to),
            MatrixToGame::RedirectAll { to } => self.redirect_clients(|_| true, to),
            MatrixToGame::Deliver(pkt) => {
                self.stats.remote_updates += 1;
                let origin = pkt.tag.dest.unwrap_or(pkt.tag.origin);
                let entity = pkt.client.map_or(0, |c| c.0);
                // Remote deliveries carry opaque payloads the local
                // server cannot classify: conservatively never
                // suppressed (cross-server prediction would need the
                // peer's motion history anyway).
                self.fan_out(now, origin, pkt.payload.len(), None, entity, false)
            }
            MatrixToGame::Owner {
                client,
                point: _,
                owner,
            } => {
                if let Some(rec) = self.clients.get_mut(&client) {
                    rec.resolving = false;
                }
                match owner {
                    Some(o) if o != self.id && self.clients.contains_key(&client) => {
                        self.switch_client(now, client, o)
                    }
                    _ => Vec::new(),
                }
            }
            MatrixToGame::ReceiveState { from: _, bytes } => {
                self.ready = true;
                self.stats.state_bytes_in += bytes;
                Vec::new()
            }
            MatrixToGame::ReceiveClient {
                from: _,
                client: _,
                bytes: _,
            } => {
                self.stats.client_states_in += 1;
                Vec::new()
            }
            MatrixToGame::SetStandby { standby } => {
                self.standby = Some(standby);
                // A fresh pairing starts from sequence 1 with a full
                // snapshot on the next tick.
                self.replica.reset();
                Vec::new()
            }
            MatrixToGame::ReplicaReset => {
                self.standby = None;
                self.replica.reset();
                self.receiver.clear();
                Vec::new()
            }
            MatrixToGame::ReplicaBatch { from, batch } => {
                self.stats.replica_batches_in += 1;
                let ack = self.receiver.apply(batch);
                if ack.resync {
                    self.stats.replica_resyncs += 1;
                }
                vec![GameAction::ToMatrix(GameToMatrix::ReplicaAck {
                    to: from,
                    seq: ack.seq,
                    resync: ack.resync,
                })]
            }
            MatrixToGame::ReplicaAck { seq, resync } => {
                self.stats.replica_acks_in += 1;
                self.replica.ack(seq, resync);
                Vec::new()
            }
            MatrixToGame::Promote { range, radius } => self.promote(now, range, radius),
        }
    }

    /// Failover: adopt a dead primary's region from the replicated
    /// snapshot. The restored clients stay connected — each gets a
    /// `SwitchServer` pointing here, and their delta streams resync
    /// through the ordinary keyframe-on-handover machinery (the
    /// snapshot's encoder bases may trail what the clients last
    /// reconstructed, so every stream restarts with a keyframe).
    fn promote(&mut self, now: SimTime, range: Rect, radius: f64) -> Vec<GameAction> {
        if let Some(snapshot) = self.receiver.take() {
            self.stats.clients_restored += snapshot.client_count() as u64;
            self.restore(snapshot);
        }
        self.range = Some(range);
        if radius > 0.0 {
            self.radius = radius;
        }
        self.ready = true;
        self.rebuild_grid(range);
        // The snapshot's flush-pipeline state describes the *pairing*
        // moment, not the crash: the primary kept flushing afterwards,
        // so the captured delta bases trail what clients last decoded
        // and the captured pending updates were almost certainly
        // delivered long ago. Drop both — streams resync through
        // keyframes, and fresh events refill the batcher immediately.
        // (The tuner state restored above survives: the promoted grid
        // keeps the dead primary's tuned resolution. The dead-reckoning
        // bases survive too: unlike a delta base, a trailing prediction
        // basis cannot corrupt decode — it only mis-estimates error
        // toward the budget — and keeping it means the promoted region
        // suppresses consistently instead of retransmitting every
        // visible entity in its first flushes. Any client that does
        // reconnect resets its bases through the ordinary subscribe
        // path.)
        self.pipeline.clear_streams();
        self.pipeline.clear_pending();
        self.stats.promotions += 1;
        self.recorder
            .record(now, EventKind::Promotion { server: self.id });
        let clients: Vec<ClientId> = self.clients.keys().copied().collect();
        clients
            .into_iter()
            .map(|cid| GameAction::ToClient(cid, GameToClient::SwitchServer { to: self.id }))
            .collect()
    }

    // -- region snapshots --------------------------------------------------------

    /// Captures the region as a transferable [`RegionSnapshot`]:
    /// clients and positions, per-client delta-stream bases and the
    /// pending (unflushed) updates. [`GameServerNode::restore`] of the
    /// result reproduces the region observably — same client set, same
    /// receiver sets, same next flush.
    pub fn snapshot(&self) -> RegionSnapshot {
        let mut snap = RegionSnapshot {
            range: self.range,
            radius: self.radius,
            ready: self.ready,
            seq: self.seq,
            last_flush: self.last_flush,
            ..RegionSnapshot::default()
        };
        for (cid, rec) in &self.clients {
            snap.clients.insert(
                *cid,
                SessionState {
                    pos: rec.pos,
                    state_bytes: rec.state_bytes,
                },
            );
        }
        for (cid, base, countdown) in self.pipeline.export_streams() {
            snap.streams.insert(cid, StreamBase { base, countdown });
        }
        for (cid, items) in self.pipeline.pending() {
            snap.pending.insert(
                *cid,
                items
                    .iter()
                    .map(|u| PendingUpdate {
                        origin: u.origin,
                        payload_bytes: u.payload_bytes,
                        entity: u.entity,
                        ring: u.ring,
                        vx: u.vx,
                        vy: u.vy,
                        trace: u.trace,
                    })
                    .collect(),
            );
        }
        // Dead-reckoning bases: what each receiver extrapolates each
        // entity from. Shipped so a promoted standby keeps suppressing
        // consistently with the receivers' actual state instead of
        // rebasing (and retransmitting) every visible entity.
        for (cid, bases) in self.pipeline.export_bases() {
            snap.bases.insert(
                cid,
                bases
                    .into_iter()
                    .map(|(entity, b)| PredictBasis {
                        entity,
                        pos: b.pos,
                        vx: b.vel.0,
                        vy: b.vel.1,
                        time_secs: b.time,
                    })
                    .collect(),
            );
        }
        // Ship the tuner state whenever there is something to inherit:
        // the tuner is live, or an earlier inheritance moved the grid
        // off the configured resolution.
        if self.pipeline.autotune_enabled()
            || self.pipeline.cells_per_axis() != self.cfg.cells_per_axis.max(1)
        {
            let (cells, streak, pending) = self.pipeline.tuner_state();
            snap.tuner = Some(TunerState {
                cells,
                streak,
                pending,
            });
        }
        snap
    }

    /// Rebuilds the region from a snapshot: client records, the
    /// interest grid, delta-stream bases and pending batches. The
    /// node's own config (vision radius, budgets, quantum) is kept.
    pub fn restore(&mut self, snap: RegionSnapshot) {
        self.range = snap.range;
        if snap.radius > 0.0 {
            self.radius = snap.radius;
        }
        self.ready = snap.ready;
        self.seq = self.seq.max(snap.seq);
        self.last_flush = snap.last_flush;
        self.clients = snap
            .clients
            .iter()
            .map(|(cid, s)| {
                (
                    *cid,
                    ClientRecord {
                        pos: s.pos,
                        state_bytes: s.state_bytes,
                        resolving: false,
                    },
                )
            })
            .collect();
        let bounds = snap.range.unwrap_or(self.pipeline.grid().bounds());
        if let Some(t) = snap.tuner {
            // Inherit the primary's tuned resolution *before* the grid
            // rebuild below, so the restored population is indexed once
            // at the final resolution (on a fresh standby the pipeline
            // is empty here, making this adoption free).
            self.pipeline.restore_tuner(t.cells, t.streak, t.pending);
        }
        self.rebuild_grid(bounds);
        self.pipeline.clear_streams();
        self.pipeline.import_streams(
            snap.streams
                .into_iter()
                .map(|(cid, s)| (cid, s.base, s.countdown)),
        );
        self.pipeline.clear_bases();
        self.pipeline
            .import_bases(snap.bases.into_iter().map(|(cid, bases)| {
                (
                    cid,
                    bases
                        .into_iter()
                        .map(|b| {
                            (
                                b.entity,
                                Basis {
                                    pos: b.pos,
                                    vel: (b.vx, b.vy),
                                    time: b.time_secs,
                                },
                            )
                        })
                        .collect(),
                )
            }));
        self.pipeline.clear_pending();
        for (cid, items) in snap.pending {
            for u in items {
                // Already admitted by the primary's ring sampler: queue
                // directly, bypassing re-sampling.
                self.pipeline.enqueue(
                    cid,
                    UpdateItem {
                        origin: u.origin,
                        payload_bytes: u.payload_bytes,
                        entity: u.entity,
                        ring: u.ring,
                        vx: u.vx,
                        vy: u.vy,
                        trace: u.trace,
                    },
                );
            }
        }
    }

    /// Split shedding: push out everyone inside `region`, plus one bulk
    /// state transfer to the new server (§3.2.2).
    fn redirect_region(&mut self, region: Rect, to: ServerId) -> Vec<GameAction> {
        let mut out = vec![GameAction::ToMatrix(GameToMatrix::TransferState {
            to,
            bytes: self.cfg.global_state_bytes,
        })];
        out.extend(self.redirect_clients(|rec| region.contains(rec.pos), to));
        out
    }

    fn redirect_clients(
        &mut self,
        mut pred: impl FnMut(&ClientRecord) -> bool,
        to: ServerId,
    ) -> Vec<GameAction> {
        let moving: Vec<(ClientId, ClientRecord)> = self
            .clients
            .iter()
            .filter(|(_, rec)| pred(rec))
            .map(|(c, r)| (*c, *r))
            .collect();
        let mut out = Vec::with_capacity(moving.len() * 2);
        for (client, rec) in moving {
            self.clients.remove(&client);
            self.stats.updates_dropped += self.pipeline.unsubscribe(client) as u64;
            self.pipeline.forget_entity(client.0);
            self.replicate(ReplicaOp::Leave { client });
            self.stats.redirects_out += 1;
            out.push(GameAction::ToMatrix(GameToMatrix::TransferClient {
                to,
                client,
                bytes: rec.state_bytes.max(self.cfg.client_state_bytes),
            }));
            out.push(GameAction::ToClient(
                client,
                GameToClient::SwitchServer { to },
            ));
        }
        out
    }

    fn switch_client(&mut self, now: SimTime, client: ClientId, to: ServerId) -> Vec<GameAction> {
        let Some(rec) = self.clients.remove(&client) else {
            return Vec::new();
        };
        self.recorder.record(
            now,
            EventKind::Handover {
                client: client.0,
                from: self.id,
                to,
            },
        );
        self.stats.updates_dropped += self.pipeline.unsubscribe(client) as u64;
        self.pipeline.forget_entity(client.0);
        self.replicate(ReplicaOp::Leave { client });
        self.stats.redirects_out += 1;
        vec![
            GameAction::ToMatrix(GameToMatrix::TransferClient {
                to,
                client,
                bytes: rec.state_bytes.max(self.cfg.client_state_bytes),
            }),
            GameAction::ToClient(client, GameToClient::SwitchServer { to }),
        ]
    }

    // -- timer input ----------------------------------------------------------------

    /// Game tick. `queue_backlog` is the observed receive-queue backlog
    /// (measured by the driver, which owns the queue model); it is folded
    /// into the periodic load report (§3.2.3 "explicit load messages ...
    /// or system performance measurements"). Ticks also flush any
    /// client-bound update batches whose interval has elapsed, bounding
    /// batching latency even when no further events arrive.
    pub fn on_tick(&mut self, now: SimTime, queue_backlog: f64) -> Vec<GameAction> {
        self.ticks += 1;
        let mut out = self.flush_if_due(now);
        // Density-driven grid auto-tuning: one observation per tick;
        // the pipeline rebuilds its grid when the tuner decides.
        if let Some(cells) = self.pipeline.maybe_retune() {
            self.stats.grid_retunes += 1;
            self.recorder.record(
                now,
                EventKind::Retune {
                    server: self.id,
                    cells,
                },
            );
        }
        out.extend(self.ship_replica(now));
        if self
            .ticks
            .is_multiple_of(self.cfg.report_every_ticks.max(1) as u64)
        {
            let positions = if self.cfg.report_positions {
                self.client_positions()
            } else {
                Vec::new()
            };
            out.push(GameAction::ToMatrix(GameToMatrix::Load(LoadReport {
                clients: self.clients.len() as u32,
                queue_backlog,
                positions,
                telemetry: self.telemetry_snapshot().map(Box::new),
            })));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix_geometry::Metric;
    use matrix_sim::SimTime;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 400.0, 400.0)
    }

    fn node() -> GameServerNode {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default());
        g.register(world(), 50.0);
        g
    }

    fn join(g: &mut GameServerNode, id: u64, pos: Point) {
        g.on_client(
            SimTime::ZERO,
            ClientId(id),
            ClientToGame::Join {
                pos,
                state_bytes: 100,
            },
        );
    }

    #[test]
    fn register_claims_world_and_emits_registration() {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default());
        let actions = g.register(world(), 50.0);
        assert!(matches!(
            actions.as_slice(),
            [GameAction::ToMatrix(GameToMatrix::Register { radius, .. })] if *radius == 50.0
        ));
        assert!(g.is_ready());
        assert_eq!(g.range(), Some(world()));
    }

    #[test]
    fn join_is_acknowledged() {
        let mut g = node();
        let actions = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Join {
                pos: Point::new(10.0, 10.0),
                state_bytes: 64,
            },
        );
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, GameToClient::Joined { server })
                if *c == ClientId(1) && *server == ServerId(1))));
        assert_eq!(g.client_count(), 1);
    }

    #[test]
    fn move_forwards_tagged_packet() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let actions = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Move {
                pos: Point::new(11.0, 10.0),
            },
        );
        let forwarded = actions.iter().find_map(|a| match a {
            GameAction::ToMatrix(GameToMatrix::Forward(pkt)) => Some(pkt.clone()),
            _ => None,
        });
        let pkt = forwarded.expect("move must forward a packet");
        assert_eq!(pkt.tag.origin, Point::new(11.0, 10.0));
        assert_eq!(pkt.client, Some(ClientId(1)));
    }

    #[test]
    fn action_is_acked_for_latency_measurement() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let actions = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(10.0, 10.0),
                payload_bytes: 64,
            },
        );
        assert!(actions.iter().any(
            |a| matches!(a, GameAction::ToClient(c, GameToClient::Ack { .. }) if *c == ClientId(1))
        ));
    }

    #[test]
    fn fanout_counts_only_clients_in_radius() {
        let mut g = node();
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0)); // within 50
        join(&mut g, 3, Point::new(350.0, 350.0)); // far away
        g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        assert_eq!(g.stats().updates_fanned, 1, "only client 2 sees the action");
    }

    #[test]
    fn fanout_emission_requires_opt_in() {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));
        g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        // Updates coalesce until the batch interval elapses; the tick
        // flushes them as one UpdateBatch per receiver.
        let actions = g.on_tick(SimTime::from_millis(100), 0.0);
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, GameToClient::UpdateBatch { updates })
                if *c == ClientId(2) && updates.len() == 1 && updates[0].payload_bytes() == 10)));
        assert_eq!(g.stats().batches_flushed, 1);
        assert_eq!(g.stats().updates_batched, 1);
        assert!(g.stats().batch_bytes > 0);
        assert_eq!(
            g.stats().keyframe_items,
            1,
            "a fresh client's first item is a keyframe"
        );
    }

    #[test]
    fn without_opt_in_no_batches_are_emitted() {
        let mut g = node(); // emit_updates defaults to false
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));
        g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        let actions = g.on_tick(SimTime::from_millis(100), 0.0);
        assert!(!actions
            .iter()
            .any(|a| matches!(a, GameAction::ToClient(_, GameToClient::UpdateBatch { .. }))));
        assert_eq!(g.stats().updates_fanned, 1, "counting still happens");
    }

    #[test]
    fn batches_coalesce_multiple_events_per_client() {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));
        join(&mut g, 3, Point::new(120.0, 100.0));
        // Three events inside the batch interval.
        for i in 0..3u64 {
            g.on_client(
                SimTime::from_millis(i * 10),
                ClientId(1),
                ClientToGame::Action {
                    pos: Point::new(100.0, 100.0),
                    payload_bytes: 8,
                },
            );
        }
        let actions = g.on_tick(SimTime::from_millis(100), 0.0);
        let batches: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                GameAction::ToClient(c, GameToClient::UpdateBatch { updates }) => {
                    Some((*c, updates.len()))
                }
                _ => None,
            })
            .collect();
        assert_eq!(batches, vec![(ClientId(2), 3), (ClientId(3), 3)]);
        assert_eq!(g.stats().batches_flushed, 2);
        assert_eq!(g.stats().updates_batched, 6);
    }

    #[test]
    fn zero_batch_interval_flushes_immediately() {
        let cfg = GameServerConfig {
            batch_interval: matrix_sim::SimDuration::from_millis(0),
            ..GameServerConfig::default()
        };
        let mut g = GameServerNode::new(ServerId(1), cfg).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));
        let actions = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, GameToClient::UpdateBatch { updates })
                if *c == ClientId(2) && updates.len() == 1)));
    }

    #[test]
    fn switched_clients_pending_updates_are_dropped() {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));
        g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        // Client 2 leaves before the flush: its queued update must die
        // with it, not leak to a disconnected receiver.
        g.on_client(SimTime::ZERO, ClientId(2), ClientToGame::Leave);
        let actions = g.on_tick(SimTime::from_millis(100), 0.0);
        assert!(!actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, _) if *c == ClientId(2))));
        assert_eq!(g.stats().updates_dropped, 1);
        assert_eq!(g.stats().batches_flushed, 0);
    }

    #[test]
    fn vision_radius_overrides_consistency_radius_for_fanout() {
        let cfg = GameServerConfig {
            vision_radius: 15.0,
            ..GameServerConfig::default()
        };
        let mut g = GameServerNode::new(ServerId(1), cfg);
        g.register(world(), 50.0); // consistency radius stays 50
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0)); // within 15
        join(&mut g, 3, Point::new(130.0, 100.0)); // within 50 but not 15
        g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        assert_eq!(
            g.stats().updates_fanned,
            1,
            "only the 15-unit neighbour sees it"
        );
    }

    #[test]
    fn grid_fanout_matches_linear_scan_after_moves() {
        // Drive a small crowd through joins, moves and a range change and
        // compare the counted receiver set against a brute-force scan.
        let mut g = node();
        let positions = [
            (1, 100.0, 100.0),
            (2, 110.0, 100.0),
            (3, 149.9, 100.0),
            (4, 150.1, 100.0),
            (5, 350.0, 350.0),
        ];
        for (id, x, y) in positions {
            join(&mut g, id, Point::new(x, y));
        }
        // Jitter a client across a cell boundary a few times.
        for i in 0..5 {
            let x = if i % 2 == 0 { 199.9 } else { 200.1 };
            g.on_client(
                SimTime::ZERO,
                ClientId(5),
                ClientToGame::Move {
                    pos: Point::new(x, 100.0),
                },
            );
        }
        let before = g.stats().updates_fanned;
        g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        let counted = g.stats().updates_fanned - before;
        let expected = g
            .client_positions()
            .iter()
            .filter(|p| p.distance_by(Point::new(100.0, 100.0), Metric::Euclidean) <= 50.0)
            .count() as u64
            - 1; // minus the acting client itself
        assert_eq!(counted, expected);
    }

    #[test]
    fn deliver_from_peer_counts_remote_update() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let pkt =
            GamePacket::synthetic(ClientId(99), SpatialTag::at(Point::new(20.0, 10.0)), 16, 0);
        g.on_matrix(SimTime::ZERO, MatrixToGame::Deliver(pkt));
        assert_eq!(g.stats().remote_updates, 1);
        assert_eq!(g.stats().updates_fanned, 1);
    }

    #[test]
    fn redirect_region_moves_exactly_the_region() {
        let mut g = node();
        join(&mut g, 1, Point::new(50.0, 50.0)); // inside region
        join(&mut g, 2, Point::new(300.0, 300.0)); // outside
        let region = Rect::from_coords(0.0, 0.0, 200.0, 400.0);
        let actions = g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::RedirectClients {
                region,
                to: ServerId(2),
            },
        );
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, GameToClient::SwitchServer { to })
                if *c == ClientId(1) && *to == ServerId(2))));
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToMatrix(GameToMatrix::TransferState { to, .. }) if *to == ServerId(2))));
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToMatrix(GameToMatrix::TransferClient { client, .. }) if *client == ClientId(1))));
        assert_eq!(g.client_count(), 1);
        assert!(g.has_client(ClientId(2)));
        assert_eq!(g.stats().redirects_out, 1);
    }

    #[test]
    fn redirect_all_empties_the_server() {
        let mut g = node();
        join(&mut g, 1, Point::new(50.0, 50.0));
        join(&mut g, 2, Point::new(300.0, 300.0));
        let actions = g.on_matrix(SimTime::ZERO, MatrixToGame::RedirectAll { to: ServerId(9) });
        assert_eq!(g.client_count(), 0);
        let switches = actions
            .iter()
            .filter(|a| {
                matches!(
                    a,
                    GameAction::ToClient(_, GameToClient::SwitchServer { .. })
                )
            })
            .count();
        assert_eq!(switches, 2);
    }

    #[test]
    fn roaming_client_triggers_single_whereis() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        // Shrink our range so the client is now outside.
        g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::SetRange {
                range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                radius: 50.0,
            },
        );
        let a1 = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Move {
                pos: Point::new(11.0, 10.0),
            },
        );
        assert!(a1
            .iter()
            .any(|a| matches!(a, GameAction::ToMatrix(GameToMatrix::WhereIs { .. }))));
        // A second move while resolving must not re-query.
        let a2 = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Move {
                pos: Point::new(12.0, 10.0),
            },
        );
        assert!(!a2
            .iter()
            .any(|a| matches!(a, GameAction::ToMatrix(GameToMatrix::WhereIs { .. }))));
        assert_eq!(g.stats().whereis_queries, 1);
    }

    #[test]
    fn owner_reply_switches_the_client() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let actions = g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::Owner {
                client: ClientId(1),
                point: Point::new(10.0, 10.0),
                owner: Some(ServerId(3)),
            },
        );
        assert!(actions.iter().any(|a| matches!(a,
            GameAction::ToClient(c, GameToClient::SwitchServer { to })
                if *c == ClientId(1) && *to == ServerId(3))));
        assert_eq!(g.client_count(), 0);
    }

    #[test]
    fn owner_reply_naming_self_keeps_client() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let actions = g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::Owner {
                client: ClientId(1),
                point: Point::new(10.0, 10.0),
                owner: Some(ServerId(1)),
            },
        );
        assert!(actions.is_empty());
        assert_eq!(g.client_count(), 1);
    }

    #[test]
    fn load_report_fires_on_schedule() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        let every = GameServerConfig::default().report_every_ticks as u64;
        let mut reports = 0;
        for t in 1..=3 * every {
            let actions = g.on_tick(SimTime::from_millis(t * 100), 42.0);
            for a in actions {
                if let GameAction::ToMatrix(GameToMatrix::Load(r)) = a {
                    reports += 1;
                    assert_eq!(r.clients, 1);
                    assert_eq!(r.queue_backlog, 42.0);
                    assert_eq!(r.positions.len(), 1);
                }
            }
        }
        assert_eq!(reports, 3);
    }

    #[test]
    fn fresh_child_is_not_ready_until_state_arrives() {
        let mut g = GameServerNode::new(ServerId(7), GameServerConfig::default());
        g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::SetRange {
                range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
                radius: 50.0,
            },
        );
        assert!(!g.is_ready());
        join(&mut g, 1, Point::new(10.0, 10.0));
        assert_eq!(g.stats().joins_before_ready, 1);
        g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::ReceiveState {
                from: ServerId(1),
                bytes: 1_000_000,
            },
        );
        assert!(g.is_ready());
        assert_eq!(g.stats().state_bytes_in, 1_000_000);
    }

    fn batch_for(actions: &[GameAction], cid: ClientId) -> Option<Vec<BatchItem>> {
        actions.iter().find_map(|a| match a {
            GameAction::ToClient(c, GameToClient::UpdateBatch { updates }) if *c == cid => {
                Some(updates.clone())
            }
            _ => None,
        })
    }

    #[test]
    fn second_flush_delta_encodes_against_the_first() {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));

        g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        let first = batch_for(&g.on_tick(SimTime::from_millis(100), 0.0), ClientId(2)).unwrap();
        assert!(first[0].is_keyframe());

        let mut actions = g.on_client(
            SimTime::from_millis(150),
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(101.5, 100.0),
                payload_bytes: 10,
            },
        );
        actions.extend(g.on_tick(SimTime::from_millis(200), 0.0));
        let second = batch_for(&actions, ClientId(2)).unwrap();
        assert!(
            !second[0].is_keyframe(),
            "nearby follow-up must ship as a delta: {second:?}"
        );
        assert_eq!(g.stats().delta_items, 1);
        assert_eq!(
            g.stats().delta_bytes_saved,
            (UpdateItem::WIRE_BYTES - DeltaItem::WIRE_BYTES) as u64
        );

        // The receiver reconstructs the exact absolute origins.
        let mut base = None;
        let a = crate::messages::reconstruct_updates(&mut base, &first).unwrap();
        assert_eq!(a[0].origin, Point::new(100.0, 100.0));
        let b = crate::messages::reconstruct_updates(&mut base, &second).unwrap();
        assert_eq!(b[0].origin, Point::new(101.5, 100.0));
    }

    #[test]
    fn rate_limit_keeps_the_nearest_items() {
        let cfg = GameServerConfig {
            max_updates_per_flush: 2,
            ..GameServerConfig::default()
        };
        let mut g = GameServerNode::new(ServerId(1), cfg).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        // Three events at increasing distance from client 1.
        for (id, x) in [(2u64, 110.0), (3, 130.0), (4, 145.0)] {
            join(&mut g, id, Point::new(x, 100.0));
            g.on_client(
                SimTime::ZERO,
                ClientId(id),
                ClientToGame::Action {
                    pos: Point::new(x, 100.0),
                    payload_bytes: 10,
                },
            );
        }
        let batch = batch_for(&g.on_tick(SimTime::from_millis(100), 0.0), ClientId(1)).unwrap();
        assert_eq!(batch.len(), 2, "capped at max_updates_per_flush");
        let mut base = None;
        let items = crate::messages::reconstruct_updates(&mut base, &batch).unwrap();
        assert_eq!(
            items.iter().map(|u| u.origin.x).collect::<Vec<_>>(),
            vec![110.0, 130.0],
            "the farthest event (145) is dropped first, nearest ships first"
        );
        assert!(g.stats().updates_rate_limited >= 1);
    }

    #[test]
    fn shutdown_flush_clears_delta_bases_for_rejoin() {
        // Regression: a flush on driver shutdown must clear per-client
        // delta state, so a client served again later gets a keyframe
        // rather than a delta against a base it lost.
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));
        g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        g.on_tick(SimTime::from_millis(100), 0.0);
        assert!(g.delta_streams() > 0, "flushed clients hold delta bases");

        g.on_client(
            SimTime::from_millis(120),
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(101.0, 100.0),
                payload_bytes: 10,
            },
        );
        let final_batch = g.shutdown_flush(SimTime::from_millis(130));
        assert!(
            batch_for(&final_batch, ClientId(2)).is_some(),
            "shutdown still delivers what the batcher holds"
        );
        assert_eq!(g.delta_streams(), 0, "shutdown must clear stream state");

        // The same client served again (no rejoin): fresh keyframe.
        let mut actions = g.on_client(
            SimTime::from_millis(200),
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(102.0, 100.0),
                payload_bytes: 10,
            },
        );
        actions.extend(g.on_tick(SimTime::from_millis(300), 0.0));
        let batch = batch_for(&actions, ClientId(2)).unwrap();
        assert!(
            batch[0].is_keyframe(),
            "post-shutdown stream must restart with a keyframe: {batch:?}"
        );
    }

    #[test]
    fn rejoin_resets_the_delta_stream() {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));
        for (t, x) in [(0u64, 100.0), (150, 101.0)] {
            g.on_client(
                SimTime::from_millis(t),
                ClientId(1),
                ClientToGame::Action {
                    pos: Point::new(x, 100.0),
                    payload_bytes: 10,
                },
            );
            g.on_tick(SimTime::from_millis(t + 100), 0.0);
        }
        assert!(g.stats().delta_items >= 1, "stream warmed up");
        // Client 2 re-joins (e.g. after a reconnect): its stream resets.
        join(&mut g, 2, Point::new(110.0, 100.0));
        let mut actions = g.on_client(
            SimTime::from_millis(350),
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(102.0, 100.0),
                payload_bytes: 10,
            },
        );
        actions.extend(g.on_tick(SimTime::from_millis(400), 0.0));
        let batch = batch_for(&actions, ClientId(2)).unwrap();
        assert!(batch[0].is_keyframe(), "resync path must keyframe");
    }

    #[test]
    fn snapshot_restore_reproduces_the_region() {
        let mut g = GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        g.register(world(), 50.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0));
        // Warm the delta streams with a flushed batch, then queue one
        // pending (unflushed) update.
        g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        g.on_tick(SimTime::from_millis(100), 0.0);
        g.on_client(
            SimTime::from_millis(120),
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(101.0, 100.0),
                payload_bytes: 10,
            },
        );

        let snap = g.snapshot();
        let mut restored =
            GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        restored.restore(snap);

        assert_eq!(restored.client_count(), g.client_count());
        assert_eq!(restored.client_positions(), g.client_positions());
        assert_eq!(restored.delta_streams(), g.delta_streams());
        assert_eq!(restored.range(), g.range());
        assert!(restored.is_ready());
        // The next flush is byte-identical: same receivers, same items,
        // same keyframe/delta decisions.
        let a = g.flush_updates(SimTime::from_millis(200));
        let b = restored.flush_updates(SimTime::from_millis(200));
        assert_eq!(a, b);
        assert!(!a.is_empty(), "the pending update must flush");
    }

    #[test]
    fn primary_ships_full_snapshot_then_ops() {
        let mut g = node();
        join(&mut g, 1, Point::new(10.0, 10.0));
        g.on_matrix(
            SimTime::ZERO,
            MatrixToGame::SetStandby {
                standby: ServerId(9),
            },
        );
        let actions = g.on_tick(SimTime::from_millis(100), 0.0);
        let batch = actions
            .iter()
            .find_map(|a| match a {
                GameAction::ToMatrix(GameToMatrix::Replica { to, batch }) => {
                    assert_eq!(*to, ServerId(9));
                    Some(batch.clone())
                }
                _ => None,
            })
            .expect("first due tick ships a replica batch");
        assert!(batch.is_full(), "pairing starts with a full snapshot");
        assert_eq!(g.stats().replica_batches_out, 1);
        assert!(g.stats().replica_bytes_out > 0);

        // Ack the snapshot; subsequent session changes ship as ops.
        g.on_matrix(
            SimTime::from_millis(110),
            MatrixToGame::ReplicaAck {
                seq: batch.seq,
                resync: false,
            },
        );
        g.on_client(
            SimTime::from_millis(120),
            ClientId(1),
            ClientToGame::Move {
                pos: Point::new(11.0, 10.0),
            },
        );
        let actions = g.on_tick(SimTime::from_millis(400), 0.0);
        let batch = actions
            .iter()
            .find_map(|a| match a {
                GameAction::ToMatrix(GameToMatrix::Replica { batch, .. }) => Some(batch.clone()),
                _ => None,
            })
            .expect("ops batch due");
        assert!(!batch.is_full(), "synced standby receives ops: {batch:?}");
    }

    #[test]
    fn standby_applies_batches_and_promotes_without_reconnects() {
        // Primary with two clients ships its snapshot...
        let mut primary =
            GameServerNode::new(ServerId(1), GameServerConfig::default()).with_fanout();
        primary.register(world(), 50.0);
        join(&mut primary, 1, Point::new(100.0, 100.0));
        join(&mut primary, 2, Point::new(110.0, 100.0));
        primary.on_matrix(
            SimTime::ZERO,
            MatrixToGame::SetStandby {
                standby: ServerId(9),
            },
        );
        let actions = primary.on_tick(SimTime::from_millis(100), 0.0);
        let batch = actions
            .iter()
            .find_map(|a| match a {
                GameAction::ToMatrix(GameToMatrix::Replica { batch, .. }) => Some(batch.clone()),
                _ => None,
            })
            .unwrap();

        // ...the standby applies it and acks...
        let mut standby =
            GameServerNode::new(ServerId(9), GameServerConfig::default()).with_fanout();
        let ack = standby.on_matrix(
            SimTime::from_millis(101),
            MatrixToGame::ReplicaBatch {
                from: ServerId(1),
                batch,
            },
        );
        assert!(ack.iter().any(|a| matches!(a,
            GameAction::ToMatrix(GameToMatrix::ReplicaAck { to, resync: false, .. })
                if *to == ServerId(1))));
        assert!(standby.is_warm_standby());

        // ...and promotion restores every session and re-points the
        // clients here, with no Join required.
        let actions = standby.on_matrix(
            SimTime::from_secs(6),
            MatrixToGame::Promote {
                range: world(),
                radius: 50.0,
            },
        );
        assert_eq!(standby.client_count(), 2);
        assert_eq!(standby.stats().promotions, 1);
        assert_eq!(standby.stats().clients_restored, 2);
        for cid in [ClientId(1), ClientId(2)] {
            assert!(actions.iter().any(|a| matches!(a,
                GameAction::ToClient(c, GameToClient::SwitchServer { to })
                    if *c == cid && *to == ServerId(9))));
        }
        // The promoted region keeps serving: an event near client 2
        // reaches it, starting with a keyframe (streams resynced).
        let mut actions = standby.on_client(
            SimTime::from_secs(7),
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 10,
            },
        );
        actions.extend(standby.on_tick(SimTime::from_secs(8), 0.0));
        let batch = batch_for(&actions, ClientId(2)).expect("updates keep flowing");
        assert!(batch[0].is_keyframe(), "post-failover streams resync");
    }

    #[test]
    fn sequence_gap_forces_standby_resync() {
        let mut primary = node();
        join(&mut primary, 1, Point::new(10.0, 10.0));
        primary.on_matrix(
            SimTime::ZERO,
            MatrixToGame::SetStandby {
                standby: ServerId(9),
            },
        );
        let first = primary.on_tick(SimTime::from_millis(100), 0.0);
        let full = first
            .iter()
            .find_map(|a| match a {
                GameAction::ToMatrix(GameToMatrix::Replica { batch, .. }) => Some(batch.clone()),
                _ => None,
            })
            .unwrap();
        primary.on_matrix(
            SimTime::from_millis(110),
            MatrixToGame::ReplicaAck {
                seq: full.seq,
                resync: false,
            },
        );
        // Two ops batches; the first is "lost" in transit.
        primary.on_client(
            SimTime::from_millis(120),
            ClientId(1),
            ClientToGame::Move {
                pos: Point::new(11.0, 10.0),
            },
        );
        let lost = primary.on_tick(SimTime::from_millis(400), 0.0);
        assert!(lost
            .iter()
            .any(|a| matches!(a, GameAction::ToMatrix(GameToMatrix::Replica { .. }))));
        primary.on_client(
            SimTime::from_millis(420),
            ClientId(1),
            ClientToGame::Move {
                pos: Point::new(12.0, 10.0),
            },
        );
        let second = primary
            .on_tick(SimTime::from_millis(700), 0.0)
            .iter()
            .find_map(|a| match a {
                GameAction::ToMatrix(GameToMatrix::Replica { batch, .. }) => Some(batch.clone()),
                _ => None,
            })
            .unwrap();

        // The standby saw the full snapshot but not the first ops batch:
        // the gap triggers a resync request...
        let mut standby = GameServerNode::new(ServerId(9), GameServerConfig::default());
        standby.on_matrix(
            SimTime::from_millis(101),
            MatrixToGame::ReplicaBatch {
                from: ServerId(1),
                batch: full,
            },
        );
        let ack = standby.on_matrix(
            SimTime::from_millis(701),
            MatrixToGame::ReplicaBatch {
                from: ServerId(1),
                batch: second,
            },
        );
        let (seq, resync) = ack
            .iter()
            .find_map(|a| match a {
                GameAction::ToMatrix(GameToMatrix::ReplicaAck { seq, resync, .. }) => {
                    Some((*seq, *resync))
                }
                _ => None,
            })
            .unwrap();
        assert!(resync, "gap must request a resync");
        assert_eq!(standby.stats().replica_resyncs, 1);

        // ...and the primary's next ship is a fresh full snapshot.
        primary.on_matrix(
            SimTime::from_millis(710),
            MatrixToGame::ReplicaAck { seq, resync },
        );
        let again = primary
            .on_tick(SimTime::from_millis(1000), 0.0)
            .iter()
            .find_map(|a| match a {
                GameAction::ToMatrix(GameToMatrix::Replica { batch, .. }) => Some(batch.clone()),
                _ => None,
            })
            .unwrap();
        assert!(again.is_full(), "resync restarts from a snapshot");
    }

    /// A predicting node: two rings (20 / 200), outer budget 2 world
    /// units, per-event flushes so suppression decisions are observable
    /// one by one.
    fn predicting_node() -> GameServerNode {
        let mut cfg = GameServerConfig {
            predict: true,
            emit_updates: true,
            batch_interval: matrix_sim::SimDuration::from_millis(0),
            ..GameServerConfig::default()
        };
        cfg.set_rings(&[20.0, 200.0], &[1, 1]);
        cfg.set_error_budgets(&[0.0, 2.0]);
        let mut g = GameServerNode::new(ServerId(1), cfg).with_fanout();
        g.register(world(), 200.0);
        g
    }

    /// Drives client 1 on a straight 10 u/s run past client 2 (outer
    /// ring) starting at `t0_ms`, returning the emitted batches for
    /// client 2.
    fn straight_run(g: &mut GameServerNode, t0_ms: u64, steps: u64) -> Vec<Vec<BatchItem>> {
        let mut batches = Vec::new();
        for i in 0..steps {
            let actions = g.on_client(
                SimTime::from_millis(t0_ms + i * 100),
                ClientId(1),
                ClientToGame::Move {
                    pos: Point::new(50.0 + i as f64, 200.0),
                },
            );
            batches.extend(batch_for(&actions, ClientId(2)));
        }
        batches
    }

    #[test]
    fn prediction_suppresses_linear_motion_and_ships_velocity() {
        let mut g = predicting_node();
        join(&mut g, 1, Point::new(50.0, 200.0));
        join(&mut g, 2, Point::new(150.0, 300.0)); // outer ring of the run
        let batches = straight_run(&mut g, 0, 20);
        assert!(
            g.stats().updates_suppressed >= 15,
            "linear motion must be suppressed: {:?}",
            g.stats()
        );
        assert!(
            (batches.len() as u64) < 20,
            "most events never reached the wire: {} batches",
            batches.len()
        );
        assert!(
            g.stats().pred_error_max <= 2.0,
            "suppression never exceeds the ring budget: {}",
            g.stats().pred_error_max
        );
        // Once the motion model locks on, transmitted items carry the
        // 10 u/s velocity for the receiver to extrapolate with.
        assert!(
            batches.iter().flatten().any(|item| item.velocity().0 > 5.0),
            "rebasing items must ship the estimated velocity: {batches:?}"
        );
        assert!(g.prediction_receivers() > 0);
    }

    #[test]
    fn actions_are_never_suppressed_and_rebase_predictions() {
        let mut g = predicting_node();
        join(&mut g, 1, Point::new(50.0, 200.0));
        join(&mut g, 2, Point::new(150.0, 300.0)); // outer ring
                                                   // A stationary client firing actions: extrapolation reproduces
                                                   // its position perfectly, but the payloads are new information
                                                   // every time — all of them must ship.
        for i in 0..10u64 {
            let actions = g.on_client(
                SimTime::from_millis(i * 100),
                ClientId(1),
                ClientToGame::Action {
                    pos: Point::new(50.0, 200.0),
                    payload_bytes: 64,
                },
            );
            assert!(
                batch_for(&actions, ClientId(2)).is_some(),
                "action {i} must reach the observer"
            );
        }
        assert_eq!(
            g.stats().updates_suppressed,
            0,
            "payload-carrying events are not suppressible"
        );
        // Moves between actions still suppress: the actions rebased the
        // prediction, and the position stream remains predictable.
        let batches = straight_run(&mut g, 2000, 10);
        assert!(g.stats().updates_suppressed > 0, "{:?}", g.stats());
        assert!((batches.len() as u64) < 10);
    }

    #[test]
    fn prediction_off_keeps_the_wire_velocity_free() {
        let mut cfg = GameServerConfig {
            emit_updates: true,
            batch_interval: matrix_sim::SimDuration::from_millis(0),
            ..GameServerConfig::default()
        };
        cfg.set_rings(&[20.0, 200.0], &[1, 1]);
        let mut g = GameServerNode::new(ServerId(1), cfg).with_fanout();
        g.register(world(), 200.0);
        join(&mut g, 1, Point::new(50.0, 200.0));
        join(&mut g, 2, Point::new(150.0, 300.0));
        let batches = straight_run(&mut g, 0, 10);
        assert_eq!(g.stats().updates_suppressed, 0);
        assert_eq!(batches.len(), 10, "every event ships");
        assert!(
            batches.iter().flatten().all(|i| !i.has_velocity()),
            "prediction off ⇒ no velocity fields on the wire"
        );
        assert_eq!(g.prediction_receivers(), 0);
    }

    #[test]
    fn snapshot_carries_prediction_bases_and_restore_reproduces_suppression() {
        let mut g = predicting_node();
        join(&mut g, 1, Point::new(50.0, 200.0));
        join(&mut g, 2, Point::new(150.0, 300.0));
        straight_run(&mut g, 0, 10);
        let snap = g.snapshot();
        assert!(
            snap.bases.values().any(|b| !b.is_empty()),
            "snapshot must carry the prediction bases"
        );

        // A fresh standby with the same config adopts the snapshot.
        let mut restored = predicting_node();
        restored.restore(snap);
        assert!(
            restored.prediction_receivers() > 0,
            "restore must import the bases"
        );
        // The same on-track continuation is suppressed on both nodes:
        // the admit decision is basis-driven, and the bases replicated.
        let before_g = g.stats().updates_suppressed;
        let before_r = restored.stats().updates_suppressed;
        for node in [&mut g, &mut restored] {
            node.on_client(
                SimTime::from_millis(1000),
                ClientId(1),
                ClientToGame::Move {
                    pos: Point::new(60.0, 200.0),
                },
            );
        }
        assert_eq!(
            g.stats().updates_suppressed - before_g,
            restored.stats().updates_suppressed - before_r,
            "replicated bases must reproduce the suppression decision"
        );
    }

    #[test]
    fn position_only_ring_strips_far_payloads() {
        let mut cfg = GameServerConfig {
            emit_updates: true,
            batch_interval: matrix_sim::SimDuration::from_millis(0),
            position_only_ring: 1,
            ..GameServerConfig::default()
        };
        cfg.set_rings(&[20.0, 200.0], &[1, 1]);
        let mut g = GameServerNode::new(ServerId(1), cfg).with_fanout();
        g.register(world(), 200.0);
        join(&mut g, 1, Point::new(100.0, 100.0));
        join(&mut g, 2, Point::new(110.0, 100.0)); // near: full payload
        join(&mut g, 3, Point::new(250.0, 100.0)); // far: position-only
        let actions = g.on_client(
            SimTime::ZERO,
            ClientId(1),
            ClientToGame::Action {
                pos: Point::new(100.0, 100.0),
                payload_bytes: 64,
            },
        );
        let near = batch_for(&actions, ClientId(2)).unwrap();
        let far = batch_for(&actions, ClientId(3)).unwrap();
        assert_eq!(near[0].payload_bytes(), 64);
        assert_eq!(far[0].payload_bytes(), 0, "far ring ships position-only");
        assert_eq!(g.stats().payloads_stripped, 1);
    }

    #[test]
    fn stale_packets_from_switched_clients_are_ignored() {
        let mut g = node();
        let actions = g.on_client(
            SimTime::ZERO,
            ClientId(42),
            ClientToGame::Move {
                pos: Point::new(1.0, 1.0),
            },
        );
        assert!(actions.is_empty());
        assert_eq!(g.stats().moves, 1, "counted but not processed");
    }

    /// Drives a mixed workload — joins, a crowd of moves/actions, a
    /// leave, tick flushes — and returns the node's final actions.
    fn drive_sharded_workload(g: &mut GameServerNode) -> Vec<GameAction> {
        for i in 0..24u64 {
            join(
                g,
                i,
                Point::new(80.0 + (i % 8) as f64 * 10.0, 100.0 + (i / 8) as f64 * 15.0),
            );
        }
        let mut out = Vec::new();
        for step in 0..6u64 {
            for i in 0..24u64 {
                let t = SimTime::from_millis(step * 100 + i);
                let pos = Point::new(
                    80.0 + ((i + step) % 8) as f64 * 10.0,
                    100.0 + (i / 8) as f64 * 15.0 + step as f64,
                );
                let msg = if i % 5 == 0 {
                    ClientToGame::Action {
                        pos,
                        payload_bytes: 16 + (i as usize % 3) * 8,
                    }
                } else {
                    ClientToGame::Move { pos }
                };
                out.extend(g.on_client(t, ClientId(i), msg));
            }
            if step == 3 {
                out.extend(g.on_client(
                    SimTime::from_millis(step * 100 + 50),
                    ClientId(7),
                    ClientToGame::Leave,
                ));
            }
            out.extend(g.on_tick(SimTime::from_millis((step + 1) * 100), 0.0));
        }
        out
    }

    #[test]
    fn flush_workers_leave_stats_and_output_identical() {
        // Same workload under 1, 4 (parallel) and 8 shards: the emitted
        // actions and every GameStats counter must be byte-identical —
        // flush_workers is purely a throughput knob, and the per-flush
        // stat-delta merge keeps totals independent of the shard count.
        let make = |workers: u32, parallel: bool| {
            let mut cfg = GameServerConfig {
                emit_updates: true,
                flush_workers: workers,
                max_updates_per_flush: 4,
                client_budget_bytes: 256,
                ..GameServerConfig::default()
            };
            cfg.set_rings(&[30.0, 120.0], &[1, 2]);
            let mut g = GameServerNode::new(ServerId(1), cfg).with_fanout();
            if parallel {
                g = g.with_parallel_flush();
            }
            g.register(world(), 120.0);
            g
        };
        let mut reference = make(1, false);
        let base_actions = drive_sharded_workload(&mut reference);
        let base_stats = *reference.stats();
        assert!(base_stats.batches_flushed > 0, "workload must flush");
        assert!(base_stats.updates_rate_limited > 0, "caps must engage");
        for (workers, parallel) in [(4, false), (4, true), (8, false)] {
            let mut g = make(workers, parallel);
            let actions = drive_sharded_workload(&mut g);
            assert_eq!(
                actions, base_actions,
                "{workers}-shard (parallel={parallel}) output diverged"
            );
            assert_eq!(
                g.stats(),
                &base_stats,
                "{workers}-shard (parallel={parallel}) stats diverged"
            );
        }
    }

    #[test]
    fn snapshot_restores_across_differing_flush_workers() {
        // A standby running a different flush_workers than the primary
        // must promote to an equivalent region: the snapshot's
        // per-client state re-routes to the local shards on import.
        let make = |workers: u32| {
            let cfg = GameServerConfig {
                emit_updates: true,
                flush_workers: workers,
                predict: true,
                ..GameServerConfig::default()
            };
            let mut g = GameServerNode::new(ServerId(1), cfg).with_fanout();
            g.register(world(), 50.0);
            g
        };
        let mut primary = make(4);
        for i in 0..12u64 {
            join(&mut primary, i, Point::new(100.0 + i as f64 * 4.0, 100.0));
        }
        for step in 0..4u64 {
            for i in 0..12u64 {
                primary.on_client(
                    SimTime::from_millis(step * 100 + i),
                    ClientId(i),
                    ClientToGame::Move {
                        pos: Point::new(100.0 + i as f64 * 4.0 + step as f64, 100.0),
                    },
                );
            }
            primary.on_tick(SimTime::from_millis((step + 1) * 100), 0.0);
        }
        let snapshot = primary.snapshot();
        let mut standby = make(2);
        standby.restore(snapshot);
        // Same pending state, same streams, same flush output.
        assert_eq!(standby.delta_streams(), primary.delta_streams());
        let a = primary.flush_updates(SimTime::from_millis(1000));
        let b = standby.flush_updates(SimTime::from_millis(1000));
        assert_eq!(a, b, "restored node must flush identically");
    }
}
