//! Load tracking and the split/reclaim decision policy.
//!
//! §3.2.3: a Matrix server detects that its game server is overloaded
//! "through explicit load messages from the game server or via system
//! performance measurements", and "uses simple heuristics ... to prevent
//! oscillations and ensure stability in the splitting / reclamation
//! process". The heuristics implemented here are streak-based hysteresis
//! plus a post-action cooldown; the ablation experiment A2 switches them
//! off to show the resulting flapping.

use crate::config::MatrixConfig;
use crate::messages::LoadReport;
use matrix_geometry::Point;
use matrix_sim::SimTime;

/// Rolling view of the co-located game server's load.
#[derive(Debug, Clone, Default)]
pub struct LoadTracker {
    last: Option<LoadReport>,
    overload_streak: u32,
    underload_streak: u32,
    reports: u64,
}

impl LoadTracker {
    /// Creates an empty tracker.
    pub fn new() -> LoadTracker {
        LoadTracker::default()
    }

    /// Ingests one load report, updating both hysteresis streaks.
    pub fn observe(&mut self, cfg: &MatrixConfig, report: LoadReport) {
        let over =
            report.clients >= cfg.overload_clients || report.queue_backlog >= cfg.overload_backlog;
        let under = report.clients < cfg.underload_clients
            && report.queue_backlog < cfg.overload_backlog / 2.0;
        if over {
            self.overload_streak += 1;
        } else {
            self.overload_streak = 0;
        }
        if under {
            self.underload_streak += 1;
        } else {
            self.underload_streak = 0;
        }
        self.last = Some(report);
        self.reports += 1;
    }

    /// Most recent report, if any arrived yet.
    pub fn last(&self) -> Option<&LoadReport> {
        self.last.as_ref()
    }

    /// Client count from the most recent report (0 before the first).
    pub fn clients(&self) -> u32 {
        self.last.as_ref().map_or(0, |r| r.clients)
    }

    /// Positions from the most recent report (empty if not reported).
    pub fn positions(&self) -> &[Point] {
        self.last.as_ref().map_or(&[], |r| r.positions.as_slice())
    }

    /// Total number of reports ingested.
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Whether the overload condition has persisted long enough to act.
    pub fn is_overloaded(&self, cfg: &MatrixConfig) -> bool {
        let needed = if cfg.adaptive {
            cfg.overload_streak.max(1)
        } else {
            u32::MAX
        };
        self.overload_streak >= needed
    }

    /// Whether the underload condition has persisted long enough to act.
    pub fn is_underloaded(&self, cfg: &MatrixConfig) -> bool {
        let needed = if cfg.adaptive {
            cfg.underload_streak.max(1)
        } else {
            u32::MAX
        };
        self.underload_streak >= needed
    }

    /// Clears both streaks (after an adaptive action, so the next action
    /// needs fresh evidence).
    pub fn reset_streaks(&mut self) {
        self.overload_streak = 0;
        self.underload_streak = 0;
    }
}

/// Cooldown gate: at most one adaptive action per [`MatrixConfig::cooldown`]
/// window per server.
#[derive(Debug, Clone, Copy, Default)]
pub struct Cooldown {
    until: Option<SimTime>,
}

impl Cooldown {
    /// A gate that is initially open.
    pub fn new() -> Cooldown {
        Cooldown::default()
    }

    /// Whether an adaptive action is currently allowed.
    pub fn ready(&self, now: SimTime) -> bool {
        self.until.is_none_or(|t| now >= t)
    }

    /// Arms the gate after an action at `now`.
    pub fn arm(&mut self, now: SimTime, cfg: &MatrixConfig) {
        self.until = Some(now + cfg.cooldown);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(clients: u32) -> LoadReport {
        LoadReport {
            clients,
            queue_backlog: 0.0,
            positions: Vec::new(),
            telemetry: None,
        }
    }

    #[test]
    fn overload_requires_streak() {
        let cfg = MatrixConfig::default(); // streak = 2
        let mut t = LoadTracker::new();
        t.observe(&cfg, report(400));
        assert!(!t.is_overloaded(&cfg), "one report is not enough");
        t.observe(&cfg, report(400));
        assert!(t.is_overloaded(&cfg));
    }

    #[test]
    fn overload_streak_resets_on_normal_report() {
        let cfg = MatrixConfig::default();
        let mut t = LoadTracker::new();
        t.observe(&cfg, report(400));
        t.observe(&cfg, report(100));
        t.observe(&cfg, report(400));
        assert!(!t.is_overloaded(&cfg));
    }

    #[test]
    fn backlog_alone_can_signal_overload() {
        let cfg = MatrixConfig::default();
        let mut t = LoadTracker::new();
        for _ in 0..2 {
            t.observe(
                &cfg,
                LoadReport {
                    clients: 10,
                    queue_backlog: 10_000.0,
                    positions: Vec::new(),
                    telemetry: None,
                },
            );
        }
        assert!(t.is_overloaded(&cfg));
    }

    #[test]
    fn underload_requires_longer_streak() {
        let cfg = MatrixConfig::default(); // underload_streak = 3
        let mut t = LoadTracker::new();
        for _ in 0..2 {
            t.observe(&cfg, report(50));
        }
        assert!(!t.is_underloaded(&cfg));
        t.observe(&cfg, report(50));
        assert!(t.is_underloaded(&cfg));
    }

    #[test]
    fn boundary_clients_count_as_overload() {
        let cfg = MatrixConfig::default();
        let mut t = LoadTracker::new();
        for _ in 0..2 {
            t.observe(&cfg, report(300)); // "300+ clients"
        }
        assert!(t.is_overloaded(&cfg));
        let mut t = LoadTracker::new();
        for _ in 0..2 {
            t.observe(&cfg, report(299));
        }
        assert!(!t.is_overloaded(&cfg));
    }

    #[test]
    fn non_adaptive_config_never_triggers() {
        let cfg = MatrixConfig::static_baseline();
        let mut t = LoadTracker::new();
        for _ in 0..100 {
            t.observe(&cfg, report(10_000));
        }
        assert!(!t.is_overloaded(&cfg));
        let mut t = LoadTracker::new();
        for _ in 0..100 {
            t.observe(&cfg, report(0));
        }
        assert!(!t.is_underloaded(&cfg));
    }

    #[test]
    fn reset_streaks_clears_state() {
        let cfg = MatrixConfig::default();
        let mut t = LoadTracker::new();
        for _ in 0..5 {
            t.observe(&cfg, report(400));
        }
        t.reset_streaks();
        assert!(!t.is_overloaded(&cfg));
    }

    #[test]
    fn cooldown_gates_actions() {
        let cfg = MatrixConfig::default(); // 5 s cooldown
        let mut c = Cooldown::new();
        assert!(c.ready(SimTime::ZERO));
        c.arm(SimTime::from_secs(10), &cfg);
        assert!(!c.ready(SimTime::from_secs(12)));
        assert!(c.ready(SimTime::from_secs(15)));
    }

    #[test]
    fn tracker_keeps_positions_for_load_aware_split() {
        let cfg = MatrixConfig::default();
        let mut t = LoadTracker::new();
        t.observe(
            &cfg,
            LoadReport {
                clients: 2,
                queue_backlog: 0.0,
                positions: vec![Point::new(1.0, 1.0), Point::new(2.0, 2.0)],
                telemetry: None,
            },
        );
        assert_eq!(t.positions().len(), 2);
        assert_eq!(t.clients(), 2);
    }
}
