//! Every protocol message exchanged in a Matrix deployment.
//!
//! The message taxonomy mirrors Figure 1b of the paper: clients talk to
//! game servers; game servers talk only to their co-located Matrix server;
//! Matrix servers talk to peer Matrix servers, the coordinator, and the
//! resource pool. All messages are plain data so the same protocol runs
//! under the discrete-event harness and the tokio runtime.

use crate::packet::{ClientId, GamePacket};
use matrix_geometry::{OverlapTable, PartitionMap, Point, Rect, ServerId};
use matrix_sim::SimTime;
use matrix_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};

/// The replication batch type the protocol ships, instantiated with the
/// middleware's client key (see [`matrix_replication::ReplicaBatch`]).
pub type ReplicaBatch = matrix_replication::ReplicaBatch<ClientId>;

/// The region snapshot type the protocol ships (see
/// [`matrix_replication::RegionSnapshot`]).
pub type RegionSnapshot = matrix_replication::RegionSnapshot<ClientId>;

/// The incremental replication op type (see
/// [`matrix_replication::ReplicaOp`]).
pub type ReplicaOp = matrix_replication::ReplicaOp<ClientId>;

// ---------------------------------------------------------------------------
// Client <-> game server
// ---------------------------------------------------------------------------

/// Messages a game client sends to its game server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClientToGame {
    /// Join the game (or re-attach after a server switch) at a position,
    /// carrying the client's session state.
    Join {
        /// Spawn or current position.
        pos: Point,
        /// Serialised per-client state size (bytes) travelling with the
        /// client on a switch.
        state_bytes: u64,
    },
    /// Position update from normal movement.
    Move {
        /// New position.
        pos: Point,
    },
    /// A game action (shot, chat, interaction) at the client's position.
    Action {
        /// Position at which the action happens.
        pos: Point,
        /// Game payload size in bytes.
        payload_bytes: usize,
    },
    /// Leave the game.
    Leave,
    /// Echo of a sampled causal trace: the client applied a traced item
    /// and reports its end-to-end delivery latency and staleness-at-apply
    /// (both in µs, computed from the item's
    /// [`TraceTag`](matrix_telemetry::TraceTag)). The server folds these
    /// into its per-ring `delivery_latency_r{N}_us` / `staleness_r{N}_us`
    /// histograms — the raw material of the coordinator's freshness SLO
    /// tracker. Sent only for traced items (`trace_sample_rate`), so the
    /// upstream cost scales with the sample rate, not the update rate.
    TraceAck {
        /// The vision ring the traced item was delivered through.
        ring: u8,
        /// Ingest-to-apply latency of the traced item itself (µs).
        latency_us: u64,
        /// Staleness at apply: latency plus the charged age of suppressed
        /// or policy-dropped predecessors (µs).
        staleness_us: u64,
    },
}

/// One visible event inside a [`GameToClient::UpdateBatch`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdateItem {
    /// Where the event happened.
    pub origin: Point,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Source entity id ([`ANON_ENTITY`](matrix_interest::ANON_ENTITY)
    /// = anonymous): the client whose move/action produced the event.
    /// Receivers use it to attribute updates; the flush policy uses it
    /// to merge superseded per-entity position updates under pressure.
    pub entity: u64,
    /// The vision ring the receiver saw this event through (`0` = the
    /// near ring, delivered in full; higher tiers are sampled). Clients
    /// use it to grade rendering fidelity — a far-ring entity is known
    /// to update at a fraction of the rate.
    pub ring: u8,
    /// The entity's estimated velocity (world units/second, x axis) at
    /// transmission time — the dead-reckoning basis the receiver
    /// extrapolates from between updates. `(0.0, 0.0)` when prediction
    /// is off; omitted from the wire then, keeping pre-prediction
    /// frames byte-identical.
    pub vx: f64,
    /// Estimated velocity, y axis (see [`UpdateItem::vx`]).
    pub vy: f64,
    /// Causal trace tag, present on the sampled subset of events
    /// (`trace_sample_rate`) and absent otherwise. Untraced items encode
    /// byte-identically to the pre-trace wire (both codecs omit the
    /// field/section entirely), so tracing-off frames are pinned
    /// unchanged.
    pub trace: Option<matrix_telemetry::TraceTag>,
}

impl UpdateItem {
    /// Per-item overhead on the wire beyond the payload itself, used
    /// for bandwidth accounting: full 8-byte coordinates (2×f64), a
    /// 2-byte length and a 4-byte entity tag (a header byte plus a
    /// 3-byte id) — exactly what the v2 binary codec emits for a
    /// canonical keyframe (`matrix_core::codec_v2`; the wire-bytes
    /// audit pins the equality). The ring tier rides in two spare bits
    /// of the entity tag's header byte, so it costs no extra wire
    /// bytes.
    pub const WIRE_BYTES: usize = 22;

    /// Extra wire cost of a velocity-carrying item: two 3-byte signed
    /// fixed-point components on the same 1/256 lattice as delta
    /// offsets (velocities are quantised before transmission). Charged
    /// only when a velocity is present.
    pub const VELOCITY_WIRE_BYTES: usize = 6;

    /// Whether this item carries a dead-reckoning velocity. A true zero
    /// velocity carries no information — extrapolating it reproduces
    /// the hold-position rendering receivers already do — so zero means
    /// "none" and stays off the wire.
    pub fn has_velocity(&self) -> bool {
        self.vx != 0.0 || self.vy != 0.0
    }
}

/// A delta-encoded event inside a [`GameToClient::UpdateBatch`]: its
/// origin is an offset from the previous item's reconstructed origin
/// (for the first item of a batch, from the last origin of the previous
/// batch on the same client stream).
///
/// Senders only emit deltas when `base + (dx, dy)` reproduces the
/// absolute origin bit-for-bit (see
/// [`DeltaEncoder`](matrix_interest::DeltaEncoder)), so reconstruction
/// through [`reconstruct_updates`] is exact, never approximate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeltaItem {
    /// X offset from the base origin.
    pub dx: f64,
    /// Y offset from the base origin.
    pub dy: f64,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Source entity id (`0` = anonymous), same as
    /// [`UpdateItem::entity`].
    pub entity: u64,
    /// The vision ring the receiver saw this event through, same as
    /// [`UpdateItem::ring`].
    pub ring: u8,
    /// Dead-reckoning velocity, x axis, same as [`UpdateItem::vx`].
    pub vx: f64,
    /// Dead-reckoning velocity, y axis, same as [`UpdateItem::vy`].
    pub vy: f64,
    /// Causal trace tag, same as [`UpdateItem::trace`]. Delta encoding
    /// preserves the tag: a traced event stays traced whether it ships
    /// as a keyframe or a delta.
    pub trace: Option<matrix_telemetry::TraceTag>,
}

impl DeltaItem {
    /// Whether this item carries a dead-reckoning velocity (see
    /// [`UpdateItem::has_velocity`]).
    pub fn has_velocity(&self) -> bool {
        self.vx != 0.0 || self.vy != 0.0
    }
    /// Per-item overhead on the wire beyond the payload, used for
    /// bandwidth accounting. The v2 binary framing
    /// (`matrix_core::codec_v2`) carries two 3-byte signed fixed-point
    /// offsets, a 2-byte length and a 4-byte entity tag (a header byte
    /// plus a 3-byte id) instead of the keyframe's full coordinates —
    /// attainable because the encoder only emits deltas that are exact
    /// multiples of the 1/256 wire quantum within the ±4096 threshold
    /// (21 bits per axis); anything else ships as an absolute keyframe.
    /// The ring tier rides in two spare bits of the entity tag's header
    /// byte, so it costs no extra wire bytes.
    pub const WIRE_BYTES: usize = 12;
}

/// One item of a [`GameToClient::UpdateBatch`]: an absolute keyframe or
/// a delta against the stream so far.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchItem {
    /// Absolute origin — a keyframe, decodable regardless of receiver
    /// state.
    Absolute(UpdateItem),
    /// Origin offset from the previous reconstructed origin.
    Delta(DeltaItem),
}

impl BatchItem {
    /// Payload size carried by this item.
    pub fn payload_bytes(&self) -> usize {
        match self {
            BatchItem::Absolute(u) => u.payload_bytes,
            BatchItem::Delta(d) => d.payload_bytes,
        }
    }

    /// Estimated wire size of the item (per-item overhead + payload +
    /// velocity tag when present).
    pub fn wire_bytes(&self) -> usize {
        let vel = if self.has_velocity() {
            UpdateItem::VELOCITY_WIRE_BYTES
        } else {
            0
        };
        vel + match self {
            BatchItem::Absolute(u) => UpdateItem::WIRE_BYTES + u.payload_bytes,
            BatchItem::Delta(d) => DeltaItem::WIRE_BYTES + d.payload_bytes,
        }
    }

    /// Whether this item is an absolute keyframe.
    pub fn is_keyframe(&self) -> bool {
        matches!(self, BatchItem::Absolute(_))
    }

    /// Source entity id carried by this item (`0` = anonymous).
    pub fn entity(&self) -> u64 {
        match self {
            BatchItem::Absolute(u) => u.entity,
            BatchItem::Delta(d) => d.entity,
        }
    }

    /// The vision ring the receiver saw this event through (`0` = near).
    pub fn ring(&self) -> u8 {
        match self {
            BatchItem::Absolute(u) => u.ring,
            BatchItem::Delta(d) => d.ring,
        }
    }

    /// The dead-reckoning velocity carried by this item (`(0.0, 0.0)` =
    /// none).
    pub fn velocity(&self) -> (f64, f64) {
        match self {
            BatchItem::Absolute(u) => (u.vx, u.vy),
            BatchItem::Delta(d) => (d.vx, d.vy),
        }
    }

    /// Whether this item carries a dead-reckoning velocity.
    pub fn has_velocity(&self) -> bool {
        self.velocity() != (0.0, 0.0)
    }

    /// The causal trace tag carried by this item, if sampled.
    pub fn trace(&self) -> Option<matrix_telemetry::TraceTag> {
        match self {
            BatchItem::Absolute(u) => u.trace,
            BatchItem::Delta(d) => d.trace,
        }
    }
}

/// Reconstructs the absolute [`UpdateItem`]s of one batch, threading the
/// per-stream delta base across calls (`base` is the last origin of the
/// previous batch; pass a fresh `None` after a join or server switch).
///
/// Returns `None` if a delta item arrives with no base — a protocol
/// violation, since senders keyframe after every resync.
pub fn reconstruct_updates(
    base: &mut Option<Point>,
    items: &[BatchItem],
) -> Option<Vec<UpdateItem>> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let origin = match *item {
            BatchItem::Absolute(u) => u.origin,
            BatchItem::Delta(d) => {
                let b = (*base)?;
                Point::new(b.x + d.dx, b.y + d.dy)
            }
        };
        *base = Some(origin);
        let (vx, vy) = item.velocity();
        out.push(UpdateItem {
            origin,
            payload_bytes: item.payload_bytes(),
            entity: item.entity(),
            ring: item.ring(),
            vx,
            vy,
            trace: item.trace(),
        });
    }
    Some(out)
}

/// The pipeline's view of an [`UpdateItem`]: origin, source entity and
/// absolute wire cost (item framing + payload + velocity tag), as the
/// budget policy estimates it.
impl matrix_interest::Disseminated for UpdateItem {
    fn origin(&self) -> Point {
        self.origin
    }

    fn entity(&self) -> u64 {
        self.entity
    }

    fn wire_bytes(&self) -> usize {
        let vel = if self.has_velocity() {
            UpdateItem::VELOCITY_WIRE_BYTES
        } else {
            0
        };
        UpdateItem::WIRE_BYTES + self.payload_bytes + vel
    }

    fn ring(&self) -> u8 {
        self.ring
    }

    fn strip_payload(&mut self) {
        self.payload_bytes = 0;
    }

    fn trace(&self) -> Option<matrix_telemetry::TraceTag> {
        self.trace
    }

    fn trace_charge(&mut self, age_us: u64) {
        if let Some(tag) = &mut self.trace {
            tag.charge(age_us);
        }
    }
}

/// Messages a game server sends to a client.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GameToClient {
    /// The join (or re-join) was accepted.
    Joined {
        /// The accepting server.
        server: ServerId,
    },
    /// Acknowledgement of an action — the observable half of response
    /// latency.
    Ack {
        /// Sequence number of the acknowledged action.
        seq: u64,
    },
    /// A nearby event the client should render.
    ///
    /// Emitted for unbatched deliveries; the interest-managed fan-out
    /// path coalesces events into [`GameToClient::UpdateBatch`] instead.
    Update {
        /// Where the event happened.
        origin: Point,
        /// Payload size in bytes.
        payload_bytes: usize,
    },
    /// A coalesced run of nearby events, flushed on the batch interval.
    ///
    /// Batching replaces per-update message overhead with per-batch
    /// overhead; items are delta-compressed against the client's stream
    /// ([`BatchItem`]) and ordered most relevant (nearest the client)
    /// first, as produced by the flush policy. Traffic is tracked in
    /// `GameStats::batch_bytes` / `GameStats::delta_bytes_saved`.
    UpdateBatch {
        /// The events, most relevant first. Never empty.
        updates: Vec<BatchItem>,
    },
    /// Instruction to reconnect to a different game server (§3.2.1: "the
    /// client is informed of these switches by its current game server and
    /// is unaware of Matrix").
    SwitchServer {
        /// The server to reconnect to.
        to: ServerId,
    },
}

// ---------------------------------------------------------------------------
// Game server <-> local Matrix server
// ---------------------------------------------------------------------------

/// A game server's load snapshot (§3.2.2: periodic load reports).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadReport {
    /// Number of connected clients.
    pub clients: u32,
    /// Receive-queue backlog in work units (0 if the game server does not
    /// measure it).
    pub queue_backlog: f64,
    /// Client positions, if `GameServerConfig::report_positions` — enables
    /// the load-aware split strategy.
    pub positions: Vec<Point>,
    /// Telemetry snapshot, if `GameServerConfig::telemetry` — rides the
    /// load report to the local Matrix server, which forwards it on its
    /// next heartbeat so the coordinator holds a live per-node view.
    /// Boxed: reports are frequent, the snapshot occasional and bulky.
    pub telemetry: Option<Box<TelemetrySnapshot>>,
}

/// Messages from the game server to its co-located Matrix server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum GameToMatrix {
    /// First contact: the game registers its world and radius of
    /// visibility (§3.2.2 "when a game server starts, it sends Matrix the
    /// visibility radius of clients in the game").
    Register {
        /// The full game world (only honoured on the bootstrap server).
        world: Rect,
        /// Radius of visibility for ordinary packets.
        radius: f64,
    },
    /// Registers an additional visibility radius for packets carrying a
    /// `radius_override` (§3.1: distinct overlap-region sets per radius).
    RegisterRadius {
        /// The extra radius.
        radius: f64,
    },
    /// A spatially tagged packet to route to whoever needs it.
    Forward(GamePacket),
    /// Periodic load report.
    Load(LoadReport),
    /// Ask which server owns a point (roaming handoff, §3.2.2: "Matrix
    /// provides the identity of the appropriate game server").
    WhereIs {
        /// The roaming client, echoed back in the reply.
        client: ClientId,
        /// The client's new position.
        point: Point,
    },
    /// Bulk game-state transfer to a peer game server during a split
    /// (routed through Matrix; §3.2.2 "forward all game specific state ...
    /// to the new game server via Matrix").
    TransferState {
        /// Destination server.
        to: ServerId,
        /// Size of the state in bytes.
        bytes: u64,
    },
    /// Per-client state pushed ahead of a redirected client.
    TransferClient {
        /// Destination server.
        to: ServerId,
        /// The client being moved.
        client: ClientId,
        /// Serialised state size in bytes.
        bytes: u64,
    },
    /// A replication batch (snapshot or incremental ops) bound for this
    /// region's warm standby, routed through Matrix like every other
    /// inter-server transfer.
    Replica {
        /// The standby server.
        to: ServerId,
        /// The batch.
        batch: ReplicaBatch,
    },
    /// A standby's acknowledgement of a replication batch, bound for
    /// the primary it mirrors.
    ReplicaAck {
        /// The primary server.
        to: ServerId,
        /// Acknowledged batch sequence number.
        seq: u64,
        /// Whether the standby needs a fresh full snapshot.
        resync: bool,
    },
}

/// Messages from a Matrix server to its co-located game server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MatrixToGame {
    /// Adopt a map range (sent on bootstrap, splits, and reclaims).
    SetRange {
        /// The new range.
        range: Rect,
        /// Radius of visibility for the game (forwarded on bootstrap of a
        /// freshly spawned server).
        radius: f64,
    },
    /// Redirect every client inside `region` to server `to` (split
    /// shedding).
    RedirectClients {
        /// The sub-range being handed off.
        region: Rect,
        /// The server taking over the region.
        to: ServerId,
    },
    /// Redirect *all* clients to `to` (the final act of a reclaimed child).
    RedirectAll {
        /// The parent server absorbing the clients.
        to: ServerId,
    },
    /// A routed packet from a peer server, to be applied to local state.
    Deliver(GamePacket),
    /// Answer to [`GameToMatrix::WhereIs`].
    Owner {
        /// The client the query was about.
        client: ClientId,
        /// The queried point.
        point: Point,
        /// The server owning that point, if any.
        owner: Option<ServerId>,
    },
    /// Bulk state from a splitting parent has arrived.
    ReceiveState {
        /// Originating server.
        from: ServerId,
        /// Size in bytes.
        bytes: u64,
    },
    /// Per-client state from a peer ahead of a client switch.
    ReceiveClient {
        /// Originating server.
        from: ServerId,
        /// The client whose state arrived.
        client: ClientId,
        /// Size in bytes.
        bytes: u64,
    },
    /// Start (or re-target) warm-standby replication: ship region
    /// snapshots and ops to `standby` from now on.
    SetStandby {
        /// The standby server granted by the pool.
        standby: ServerId,
    },
    /// Drop all replication state, both roles: the primary-side log and
    /// standby target, and any received standby snapshot. Sent when a
    /// pairing ends (release, retirement) and when a recycled server id
    /// starts a fresh life (adoption).
    ReplicaReset,
    /// A replication batch from the primary this node stands by for.
    ReplicaBatch {
        /// The primary server.
        from: ServerId,
        /// The batch.
        batch: ReplicaBatch,
    },
    /// The standby's acknowledgement of a replication batch this node
    /// shipped.
    ReplicaAck {
        /// Acknowledged batch sequence number.
        seq: u64,
        /// Whether the standby needs a fresh full snapshot.
        resync: bool,
    },
    /// Take over a dead primary's region (failover): restore the
    /// replicated snapshot, adopt the range, and re-point the affected
    /// clients here with `SwitchServer` — their sessions survive, their
    /// delta streams resync through the keyframe-on-handover machinery.
    Promote {
        /// The range the dead primary managed.
        range: Rect,
        /// Radius of visibility of the game.
        radius: f64,
    },
}

// ---------------------------------------------------------------------------
// Matrix server <-> peer Matrix servers
// ---------------------------------------------------------------------------

/// A child or parent's load, shared for reclaim decisions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LoadSnapshot {
    /// Client count.
    pub clients: u32,
    /// Queue backlog.
    pub queue_backlog: f64,
    /// Whether this server has live children of its own.
    pub has_children: bool,
}

/// Messages between Matrix servers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PeerMsg {
    /// A routed consistency update for the receiver's game server.
    Update(GamePacket),
    /// Hand a partition to a freshly allocated server (split).
    AdoptPartition {
        /// The splitting (parent) server.
        parent: ServerId,
        /// The range the child now owns.
        range: Rect,
        /// Radius of visibility of the game.
        radius: f64,
        /// The parent's table epoch at split time.
        epoch: u64,
    },
    /// Child's acknowledgement of adoption.
    AdoptAck {
        /// The new child.
        child: ServerId,
    },
    /// Bulk game state routed between game servers (split).
    StateTransfer {
        /// Originating server.
        from: ServerId,
        /// Size in bytes.
        bytes: u64,
    },
    /// Per-client state routed ahead of a switching client.
    ClientTransfer {
        /// Originating server.
        from: ServerId,
        /// The client in flight.
        client: ClientId,
        /// Size in bytes.
        bytes: u64,
    },
    /// Parent asks an underloaded child to fold back in.
    ReclaimRequest {
        /// The requesting parent.
        parent: ServerId,
    },
    /// Child agrees: its clients are being redirected, range returned.
    ReclaimGrant {
        /// The folding child.
        child: ServerId,
        /// The range being returned.
        range: Rect,
        /// Clients that were redirected to the parent.
        clients: u32,
    },
    /// Child refuses (it is loaded or has children of its own).
    ReclaimDeny {
        /// The refusing child.
        child: ServerId,
    },
    /// Periodic child → parent load share.
    LoadStatus(LoadSnapshot),
    /// The sender designates the receiver as its warm standby (the
    /// receiver stays idle but starts heartbeating and accepting
    /// replica batches).
    StandbyAssign {
        /// The primary being mirrored.
        primary: ServerId,
        /// The primary's current range (observability; the snapshot is
        /// authoritative).
        range: Rect,
        /// Radius of visibility of the game.
        radius: f64,
    },
    /// The pairing ended without promotion (the primary retired): the
    /// receiver drops its replica state.
    StandbyRelease {
        /// The releasing primary.
        primary: ServerId,
    },
    /// A replication batch, primary → standby.
    Replica {
        /// The shipping primary.
        from: ServerId,
        /// The batch.
        batch: ReplicaBatch,
    },
    /// A replication acknowledgement, standby → primary.
    ReplicaAck {
        /// The acking standby.
        from: ServerId,
        /// Acknowledged batch sequence number.
        seq: u64,
        /// Whether the standby needs a fresh full snapshot.
        resync: bool,
    },
}

// ---------------------------------------------------------------------------
// Matrix server <-> coordinator
// ---------------------------------------------------------------------------

/// Messages to the Matrix Coordinator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordMsg {
    /// Bootstrap registration of the first server with the game world.
    RegisterWorld {
        /// The registering server.
        server: ServerId,
        /// The world rectangle.
        world: Rect,
        /// Primary radius of visibility.
        radius: f64,
    },
    /// An extra visibility radius needs tables too.
    RegisterRadius {
        /// The requesting server.
        server: ServerId,
        /// The extra radius.
        radius: f64,
    },
    /// A split happened (parent kept `parent_range`, child got
    /// `child_range`); the MC must recompute overlap tables (§3.2.4).
    SplitOccurred {
        /// The splitting server.
        parent: ServerId,
        /// The new server.
        child: ServerId,
        /// Parent's retained range.
        parent_range: Rect,
        /// Child's new range.
        child_range: Rect,
    },
    /// A reclaim happened; `parent` now owns `merged_range`.
    ReclaimOccurred {
        /// The absorbing parent.
        parent: ServerId,
        /// The removed child.
        child: ServerId,
        /// The parent's merged range.
        merged_range: Rect,
    },
    /// Liveness heartbeat, carrying the sender's installed table epoch
    /// so the coordinator can detect and repair lost table pushes.
    Heartbeat {
        /// The live server.
        server: ServerId,
        /// The table epoch the server currently routes with.
        epoch: u64,
        /// The co-located game server's latest telemetry snapshot, if one
        /// arrived since the previous heartbeat (None with telemetry off —
        /// the legacy wire shape is unchanged).
        telemetry: Option<Box<TelemetrySnapshot>>,
    },
    /// A reclaim grant arrived but the returned range no longer tiles with
    /// the parent's (the child's range changed through crash absorption).
    /// The coordinator must find the orphaned range a mergeable owner.
    OrphanRange {
        /// The parent that failed to merge.
        parent: ServerId,
        /// The retired child whose range is orphaned.
        child: ServerId,
        /// The orphaned range.
        range: Rect,
    },
    /// A primary paired with a warm standby; on the primary's liveness
    /// expiry the coordinator promotes the standby instead of handing
    /// the range to a neighbour.
    StandbyAssigned {
        /// The replicating primary.
        primary: ServerId,
        /// Its warm standby.
        standby: ServerId,
    },
    /// Resolve a point to its owner and consistency set (non-proximal
    /// interactions, §3.2.4).
    ResolvePoint {
        /// The asking server.
        server: ServerId,
        /// The client the query is on behalf of, echoed through.
        client: ClientId,
        /// The point to resolve.
        point: Point,
        /// Radius for the consistency set (defaults to the game radius).
        radius: Option<f64>,
    },
}

/// Messages from the coordinator to a Matrix server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CoordReply {
    /// Fresh overlap tables after a topology change. Each server receives
    /// its own table plus the partition directory for owner lookups.
    Tables {
        /// Monotone epoch of the recomputation.
        epoch: u64,
        /// This server's overlap table for the primary radius.
        table: OverlapTable,
        /// Tables for additional registered radii, keyed by radius bits.
        extra_tables: Vec<(u64, OverlapTable)>,
        /// Snapshot of the full partition map (the directory).
        map: PartitionMap,
    },
    /// Answer to [`CoordMsg::ResolvePoint`].
    Resolved {
        /// The client echoed from the query.
        client: ClientId,
        /// The queried point.
        point: Point,
        /// Owner of the point, if inside the world.
        owner: Option<ServerId>,
        /// Consistency set of the point.
        set: Vec<ServerId>,
    },
    /// The coordinator believes a peer died; the receiver must absorb the
    /// given range (crash recovery).
    AbsorbFailed {
        /// The dead server.
        failed: ServerId,
        /// The range to absorb.
        range: Rect,
    },
    /// The receiver — a warm standby — must take over its dead
    /// primary's region (fast failover).
    Promote {
        /// The dead primary.
        failed: ServerId,
        /// The range to adopt.
        range: Rect,
        /// Radius of visibility of the game.
        radius: f64,
    },
    /// The receiver's warm standby died; replication must re-pair.
    StandbyLost {
        /// The dead standby.
        standby: ServerId,
    },
}

// ---------------------------------------------------------------------------
// Matrix server <-> resource pool
// ---------------------------------------------------------------------------

/// Why a server is being drawn from the pool. Echoed in the grant so a
/// requester with a split and a standby acquisition in flight can tell
/// the replies apart.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PoolPurpose {
    /// Split target: the server will adopt a partition immediately.
    Split,
    /// Warm standby: the server mirrors a region for fast failover.
    Standby,
}

/// Messages to the resource pool (the paper's "non-Matrix external
/// entity" that hands out spare servers, §3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolMsg {
    /// Request one spare server.
    Acquire {
        /// The requester (overloaded, or seeking a standby).
        requester: ServerId,
        /// What the server is for.
        purpose: PoolPurpose,
    },
    /// Return a reclaimed server to the pool.
    Release {
        /// The retired server.
        server: ServerId,
    },
}

/// Replies from the resource pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolReply {
    /// A spare server was allocated.
    Grant {
        /// The allocated server id.
        server: ServerId,
        /// The purpose echoed from the request.
        purpose: PoolPurpose,
    },
    /// No spare capacity — the requester stays overloaded (the situation
    /// static over-provisioning tries to buy its way out of).
    Denied {
        /// The purpose echoed from the request.
        purpose: PoolPurpose,
    },
}

/// Timestamped envelope used by drivers that need send-time bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Envelope<M> {
    /// When the message was sent.
    pub sent_at: SimTime,
    /// The message.
    pub msg: M,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_snapshot_is_copy() {
        let s = LoadSnapshot {
            clients: 10,
            queue_backlog: 1.0,
            has_children: false,
        };
        let t = s;
        assert_eq!(s, t);
    }

    #[test]
    fn client_protocol_round_trips_through_codec() {
        // The client-facing half of the protocol crosses real sockets via
        // the hand-written JSON codec; every variant must round-trip.
        use crate::codec;
        let up = ClientToGame::Join {
            pos: Point::new(1.5, -2.25),
            state_bytes: 64,
        };
        let line = codec::encode_client_to_game(&up);
        assert_eq!(codec::decode_client_to_game(&line).unwrap(), up);

        let down = GameToClient::UpdateBatch {
            updates: vec![
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(0.1, 0.2),
                    payload_bytes: 90,
                    entity: 7,
                    ring: 0,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
                BatchItem::Delta(DeltaItem {
                    dx: 2.9,
                    dy: 3.8,
                    payload_bytes: 32,
                    entity: 0,
                    ring: 0,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
            ],
        };
        let line = codec::encode_game_to_client(&down);
        assert_eq!(codec::decode_game_to_client(&line).unwrap(), down);
    }

    #[test]
    fn reconstruction_threads_the_base_across_batches() {
        let mut base = None;
        let first = reconstruct_updates(
            &mut base,
            &[
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(10.0, 10.0),
                    payload_bytes: 4,
                    entity: 3,
                    ring: 0,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
                BatchItem::Delta(DeltaItem {
                    dx: 1.5,
                    dy: -0.5,
                    payload_bytes: 8,
                    entity: 4,
                    ring: 0,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
            ],
        )
        .unwrap();
        assert_eq!(first[1].origin, Point::new(11.5, 9.5));
        // The next batch's leading delta chains off the threaded base.
        let second = reconstruct_updates(
            &mut base,
            &[BatchItem::Delta(DeltaItem {
                dx: 0.5,
                dy: 0.5,
                payload_bytes: 1,
                entity: 3,
                ring: 0,
                vx: 0.0,
                vy: 0.0,
                trace: None,
            })],
        )
        .unwrap();
        assert_eq!(second[0].origin, Point::new(12.0, 10.0));
        // A delta with no base is a protocol violation.
        assert_eq!(
            reconstruct_updates(
                &mut None,
                &[BatchItem::Delta(DeltaItem {
                    dx: 1.0,
                    dy: 1.0,
                    payload_bytes: 0,
                    entity: 0,
                    ring: 0,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                })]
            ),
            None
        );
    }
}
