//! The resource pool — the paper's "non-Matrix external entity" that hands
//! out spare servers (§3.2.3).
//!
//! The paper treats server allocation as an oracle; modelling it explicitly
//! lets experiments study pool exhaustion (what happens when there is no
//! spare capacity left, i.e. the failure mode static over-provisioning is
//! meant to prevent).
//!
//! Servers may carry **zone tags** (rack / availability-zone ids). A
//! standby acquisition then prefers a spare in a *different* zone from
//! the requesting primary, so a single failure domain cannot take out a
//! region and its replica together — falling back to any spare when no
//! cross-zone one is free (a co-located standby still beats none).

use crate::messages::{PoolMsg, PoolPurpose, PoolReply};
use matrix_geometry::ServerId;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Counters describing pool behaviour over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Successful allocations.
    pub grants: u64,
    /// Allocations that went to warm standbys (a subset of `grants`) —
    /// the capacity replication spends on availability instead of
    /// throughput.
    pub standby_grants: u64,
    /// Requests refused for lack of capacity.
    pub denials: u64,
    /// Servers returned after reclaims.
    pub releases: u64,
    /// High-water mark of simultaneously allocated servers.
    pub peak_allocated: usize,
    /// Standby grants placed in a different zone from their primary (a
    /// subset of `standby_grants`; only counted when both zones are
    /// known).
    pub cross_zone_grants: u64,
}

/// A finite pool of spare server identities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourcePool {
    free: BTreeSet<ServerId>,
    allocated: BTreeSet<ServerId>,
    /// Optional failure-domain tags (rack / availability zone) per
    /// server — spares and active servers alike may be tagged.
    zones: BTreeMap<ServerId, u32>,
    stats: PoolStats,
}

impl ResourcePool {
    /// Creates a pool holding the given spare server ids.
    pub fn new(spares: impl IntoIterator<Item = ServerId>) -> ResourcePool {
        ResourcePool {
            free: spares.into_iter().collect(),
            allocated: BTreeSet::new(),
            zones: BTreeMap::new(),
            stats: PoolStats::default(),
        }
    }

    /// A pool of `n` spares with ids starting after `first_id`.
    pub fn with_capacity(first_id: u32, n: u32) -> ResourcePool {
        ResourcePool::new((0..n).map(|i| ServerId(first_id + i)))
    }

    /// Tags servers with failure-domain (zone) ids. Tags survive
    /// acquire/release cycles; untagged servers have an unknown zone.
    pub fn with_zones(mut self, zones: impl IntoIterator<Item = (ServerId, u32)>) -> ResourcePool {
        self.zones.extend(zones);
        self
    }

    /// Tags (or re-tags) one server's zone.
    pub fn set_zone(&mut self, server: ServerId, zone: u32) {
        self.zones.insert(server, zone);
    }

    /// The zone a server is tagged with, if any.
    pub fn zone_of(&self, server: ServerId) -> Option<u32> {
        self.zones.get(&server).copied()
    }

    /// Spare servers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Servers currently out in the field.
    pub fn allocated(&self) -> usize {
        self.allocated.len()
    }

    /// Counters for experiments.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Handles an acquire/release message, producing the reply (if any).
    /// Standby acquisitions use the requester's zone tag (when known)
    /// to prefer a spare in a different failure domain.
    pub fn handle(&mut self, msg: PoolMsg) -> Option<PoolReply> {
        match msg {
            PoolMsg::Acquire { requester, purpose } => {
                Some(self.acquire_placed(purpose, Some(requester)))
            }
            PoolMsg::Release { server } => {
                self.release(server);
                None
            }
        }
    }

    /// Allocates the lowest-numbered spare for a split, or denies.
    pub fn acquire(&mut self) -> PoolReply {
        self.acquire_placed(PoolPurpose::Split, None)
    }

    /// Allocates the lowest-numbered spare for `purpose`, or denies —
    /// with no placement preference (requester unknown). The purpose is
    /// echoed in the reply so a requester with both a split and a
    /// standby acquisition in flight can tell them apart.
    pub fn acquire_for(&mut self, purpose: PoolPurpose) -> PoolReply {
        self.acquire_placed(purpose, None)
    }

    /// Allocates a spare for `purpose`, applying the standby placement
    /// policy: when the requester's zone is known, a standby grant
    /// prefers the lowest-numbered spare *not* provably in that zone
    /// (untagged spares qualify — they cannot be shown co-located),
    /// falling back to any spare. Splits always take the lowest id:
    /// a split target serves live load next to its parent anyway.
    pub fn acquire_placed(
        &mut self,
        purpose: PoolPurpose,
        requester: Option<ServerId>,
    ) -> PoolReply {
        let primary_zone = match (purpose, requester) {
            (PoolPurpose::Standby, Some(r)) => self.zone_of(r),
            _ => None,
        };
        let preferred = primary_zone.and_then(|zone| {
            self.free
                .iter()
                .find(|s| self.zones.get(s) != Some(&zone))
                .copied()
        });
        let picked = preferred.or_else(|| self.free.iter().next().copied());
        match picked {
            Some(server) => {
                self.free.remove(&server);
                self.allocated.insert(server);
                self.stats.grants += 1;
                if purpose == PoolPurpose::Standby {
                    self.stats.standby_grants += 1;
                    if let (Some(pz), Some(sz)) = (primary_zone, self.zone_of(server)) {
                        if pz != sz {
                            self.stats.cross_zone_grants += 1;
                        }
                    }
                }
                self.stats.peak_allocated = self.stats.peak_allocated.max(self.allocated.len());
                PoolReply::Grant { server, purpose }
            }
            None => {
                self.stats.denials += 1;
                PoolReply::Denied { purpose }
            }
        }
    }

    /// Returns a server to the pool. Unknown ids are tolerated (a release
    /// can race a failure declaration) but not double-counted.
    pub fn release(&mut self, server: ServerId) {
        if self.allocated.remove(&server) {
            self.free.insert(server);
            self.stats.releases += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_exhausted() {
        let mut pool = ResourcePool::with_capacity(10, 2);
        assert_eq!(
            pool.acquire(),
            PoolReply::Grant {
                server: ServerId(10),
                purpose: PoolPurpose::Split,
            }
        );
        assert_eq!(
            pool.acquire_for(PoolPurpose::Standby),
            PoolReply::Grant {
                server: ServerId(11),
                purpose: PoolPurpose::Standby,
            }
        );
        assert_eq!(
            pool.acquire(),
            PoolReply::Denied {
                purpose: PoolPurpose::Split
            }
        );
        assert_eq!(pool.stats().grants, 2);
        assert_eq!(pool.stats().standby_grants, 1);
        assert_eq!(pool.stats().denials, 1);
        assert_eq!(pool.stats().peak_allocated, 2);
    }

    #[test]
    fn release_recycles_servers() {
        let mut pool = ResourcePool::with_capacity(10, 1);
        let PoolReply::Grant { server, .. } = pool.acquire() else {
            panic!()
        };
        pool.release(server);
        assert_eq!(pool.available(), 1);
        assert_eq!(
            pool.acquire(),
            PoolReply::Grant {
                server,
                purpose: PoolPurpose::Split
            }
        );
    }

    #[test]
    fn double_release_is_idempotent() {
        let mut pool = ResourcePool::with_capacity(1, 1);
        let PoolReply::Grant { server, .. } = pool.acquire() else {
            panic!()
        };
        pool.release(server);
        pool.release(server);
        assert_eq!(pool.stats().releases, 1);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn release_of_unknown_server_is_ignored() {
        let mut pool = ResourcePool::with_capacity(1, 1);
        pool.release(ServerId(99));
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.stats().releases, 0);
    }

    #[test]
    fn standby_acquisition_prefers_a_different_zone() {
        // Spares 10 (zone 0) and 11 (zone 1); the primary sits in zone 0.
        let mut pool = ResourcePool::with_capacity(10, 2).with_zones([
            (ServerId(1), 0),
            (ServerId(10), 0),
            (ServerId(11), 1),
        ]);
        let reply = pool.handle(PoolMsg::Acquire {
            requester: ServerId(1),
            purpose: PoolPurpose::Standby,
        });
        assert_eq!(
            reply,
            Some(PoolReply::Grant {
                server: ServerId(11),
                purpose: PoolPurpose::Standby,
            }),
            "the zone-1 spare is preferred over the lower-numbered zone-0 one"
        );
        assert_eq!(pool.stats().cross_zone_grants, 1);

        // Only the co-zoned spare remains: fall back rather than deny.
        let reply = pool.handle(PoolMsg::Acquire {
            requester: ServerId(1),
            purpose: PoolPurpose::Standby,
        });
        assert_eq!(
            reply,
            Some(PoolReply::Grant {
                server: ServerId(10),
                purpose: PoolPurpose::Standby,
            }),
            "a co-located standby still beats none"
        );
        assert_eq!(pool.stats().cross_zone_grants, 1);
        assert_eq!(pool.stats().standby_grants, 2);
    }

    #[test]
    fn split_acquisition_ignores_zones() {
        let mut pool = ResourcePool::with_capacity(10, 2).with_zones([
            (ServerId(1), 0),
            (ServerId(10), 0),
            (ServerId(11), 1),
        ]);
        let reply = pool.handle(PoolMsg::Acquire {
            requester: ServerId(1),
            purpose: PoolPurpose::Split,
        });
        assert_eq!(
            reply,
            Some(PoolReply::Grant {
                server: ServerId(10),
                purpose: PoolPurpose::Split,
            }),
            "splits take the lowest id regardless of zones"
        );
    }

    #[test]
    fn untagged_spares_qualify_as_cross_zone_candidates() {
        // Spare 10 shares the primary's zone; spare 11 is untagged. The
        // untagged one cannot be proven co-located, so it is preferred —
        // but not counted as a confirmed cross-zone placement.
        let mut pool =
            ResourcePool::with_capacity(10, 2).with_zones([(ServerId(1), 3), (ServerId(10), 3)]);
        let reply = pool.handle(PoolMsg::Acquire {
            requester: ServerId(1),
            purpose: PoolPurpose::Standby,
        });
        assert_eq!(
            reply,
            Some(PoolReply::Grant {
                server: ServerId(11),
                purpose: PoolPurpose::Standby,
            })
        );
        assert_eq!(
            pool.stats().cross_zone_grants,
            0,
            "zone unknown, not counted"
        );
        // An untagged primary gets no preference at all.
        pool.release(ServerId(11));
        let reply = pool.handle(PoolMsg::Acquire {
            requester: ServerId(99),
            purpose: PoolPurpose::Standby,
        });
        assert_eq!(
            reply,
            Some(PoolReply::Grant {
                server: ServerId(10),
                purpose: PoolPurpose::Standby,
            })
        );
    }

    #[test]
    fn zone_tags_survive_release_cycles() {
        let mut pool = ResourcePool::with_capacity(10, 1);
        pool.set_zone(ServerId(10), 7);
        let PoolReply::Grant { server, .. } = pool.acquire() else {
            panic!()
        };
        pool.release(server);
        assert_eq!(pool.zone_of(ServerId(10)), Some(7));
    }

    #[test]
    fn handle_maps_messages() {
        let mut pool = ResourcePool::with_capacity(5, 1);
        let reply = pool.handle(PoolMsg::Acquire {
            requester: ServerId(1),
            purpose: PoolPurpose::Split,
        });
        assert_eq!(
            reply,
            Some(PoolReply::Grant {
                server: ServerId(5),
                purpose: PoolPurpose::Split,
            })
        );
        assert_eq!(
            pool.handle(PoolMsg::Release {
                server: ServerId(5)
            }),
            None
        );
        assert_eq!(pool.available(), 1);
    }
}
