//! The resource pool — the paper's "non-Matrix external entity" that hands
//! out spare servers (§3.2.3).
//!
//! The paper treats server allocation as an oracle; modelling it explicitly
//! lets experiments study pool exhaustion (what happens when there is no
//! spare capacity left, i.e. the failure mode static over-provisioning is
//! meant to prevent).

use crate::messages::{PoolMsg, PoolPurpose, PoolReply};
use matrix_geometry::ServerId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Counters describing pool behaviour over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PoolStats {
    /// Successful allocations.
    pub grants: u64,
    /// Allocations that went to warm standbys (a subset of `grants`) —
    /// the capacity replication spends on availability instead of
    /// throughput.
    pub standby_grants: u64,
    /// Requests refused for lack of capacity.
    pub denials: u64,
    /// Servers returned after reclaims.
    pub releases: u64,
    /// High-water mark of simultaneously allocated servers.
    pub peak_allocated: usize,
}

/// A finite pool of spare server identities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourcePool {
    free: BTreeSet<ServerId>,
    allocated: BTreeSet<ServerId>,
    stats: PoolStats,
}

impl ResourcePool {
    /// Creates a pool holding the given spare server ids.
    pub fn new(spares: impl IntoIterator<Item = ServerId>) -> ResourcePool {
        ResourcePool {
            free: spares.into_iter().collect(),
            allocated: BTreeSet::new(),
            stats: PoolStats::default(),
        }
    }

    /// A pool of `n` spares with ids starting after `first_id`.
    pub fn with_capacity(first_id: u32, n: u32) -> ResourcePool {
        ResourcePool::new((0..n).map(|i| ServerId(first_id + i)))
    }

    /// Spare servers currently available.
    pub fn available(&self) -> usize {
        self.free.len()
    }

    /// Servers currently out in the field.
    pub fn allocated(&self) -> usize {
        self.allocated.len()
    }

    /// Counters for experiments.
    pub fn stats(&self) -> &PoolStats {
        &self.stats
    }

    /// Handles an acquire/release message, producing the reply (if any).
    pub fn handle(&mut self, msg: PoolMsg) -> Option<PoolReply> {
        match msg {
            PoolMsg::Acquire {
                requester: _,
                purpose,
            } => Some(self.acquire_for(purpose)),
            PoolMsg::Release { server } => {
                self.release(server);
                None
            }
        }
    }

    /// Allocates the lowest-numbered spare for a split, or denies.
    pub fn acquire(&mut self) -> PoolReply {
        self.acquire_for(PoolPurpose::Split)
    }

    /// Allocates the lowest-numbered spare for `purpose`, or denies.
    /// The purpose is echoed in the reply so a requester with both a
    /// split and a standby acquisition in flight can tell them apart.
    pub fn acquire_for(&mut self, purpose: PoolPurpose) -> PoolReply {
        match self.free.iter().next().copied() {
            Some(server) => {
                self.free.remove(&server);
                self.allocated.insert(server);
                self.stats.grants += 1;
                if purpose == PoolPurpose::Standby {
                    self.stats.standby_grants += 1;
                }
                self.stats.peak_allocated = self.stats.peak_allocated.max(self.allocated.len());
                PoolReply::Grant { server, purpose }
            }
            None => {
                self.stats.denials += 1;
                PoolReply::Denied { purpose }
            }
        }
    }

    /// Returns a server to the pool. Unknown ids are tolerated (a release
    /// can race a failure declaration) but not double-counted.
    pub fn release(&mut self, server: ServerId) {
        if self.allocated.remove(&server) {
            self.free.insert(server);
            self.stats.releases += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_until_exhausted() {
        let mut pool = ResourcePool::with_capacity(10, 2);
        assert_eq!(
            pool.acquire(),
            PoolReply::Grant {
                server: ServerId(10),
                purpose: PoolPurpose::Split,
            }
        );
        assert_eq!(
            pool.acquire_for(PoolPurpose::Standby),
            PoolReply::Grant {
                server: ServerId(11),
                purpose: PoolPurpose::Standby,
            }
        );
        assert_eq!(
            pool.acquire(),
            PoolReply::Denied {
                purpose: PoolPurpose::Split
            }
        );
        assert_eq!(pool.stats().grants, 2);
        assert_eq!(pool.stats().standby_grants, 1);
        assert_eq!(pool.stats().denials, 1);
        assert_eq!(pool.stats().peak_allocated, 2);
    }

    #[test]
    fn release_recycles_servers() {
        let mut pool = ResourcePool::with_capacity(10, 1);
        let PoolReply::Grant { server, .. } = pool.acquire() else {
            panic!()
        };
        pool.release(server);
        assert_eq!(pool.available(), 1);
        assert_eq!(
            pool.acquire(),
            PoolReply::Grant {
                server,
                purpose: PoolPurpose::Split
            }
        );
    }

    #[test]
    fn double_release_is_idempotent() {
        let mut pool = ResourcePool::with_capacity(1, 1);
        let PoolReply::Grant { server, .. } = pool.acquire() else {
            panic!()
        };
        pool.release(server);
        pool.release(server);
        assert_eq!(pool.stats().releases, 1);
        assert_eq!(pool.available(), 1);
    }

    #[test]
    fn release_of_unknown_server_is_ignored() {
        let mut pool = ResourcePool::with_capacity(1, 1);
        pool.release(ServerId(99));
        assert_eq!(pool.available(), 1);
        assert_eq!(pool.stats().releases, 0);
    }

    #[test]
    fn handle_maps_messages() {
        let mut pool = ResourcePool::with_capacity(5, 1);
        let reply = pool.handle(PoolMsg::Acquire {
            requester: ServerId(1),
            purpose: PoolPurpose::Split,
        });
        assert_eq!(
            reply,
            Some(PoolReply::Grant {
                server: ServerId(5),
                purpose: PoolPurpose::Split,
            })
        );
        assert_eq!(
            pool.handle(PoolMsg::Release {
                server: ServerId(5)
            }),
            None
        );
        assert_eq!(pool.available(), 1);
    }
}
