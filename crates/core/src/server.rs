//! The Matrix server state machine — "the heart of our distributed
//! middleware" (§3.2.3).
//!
//! Each Matrix server is co-located with one game server. It routes
//! spatially tagged packets to the consistency set of their origin using
//! the overlap tables pushed by the coordinator, monitors its game
//! server's load, and makes *purely local* split and reclaim decisions.
//!
//! The implementation is sans-io: every handler consumes one input message
//! and returns the list of [`Action`]s to perform. The discrete-event
//! harness and the tokio runtime both drive this same type, so simulated
//! experiments and real deployments exercise identical protocol logic.

use crate::config::MatrixConfig;
use crate::load::{Cooldown, LoadTracker};
use crate::messages::{
    CoordMsg, CoordReply, GameToMatrix, LoadSnapshot, MatrixToGame, PeerMsg, PoolMsg, PoolPurpose,
    PoolReply,
};
use crate::packet::{ClientId, GamePacket};
use matrix_geometry::{
    consistency_set_from_rects, OverlapTable, PartitionIndex, PartitionMap, Point, Rect, ServerId,
};
use matrix_sim::SimTime;
use matrix_telemetry::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An effect the driver must carry out for the state machine.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Deliver to the co-located game server.
    ToGame(MatrixToGame),
    /// Send to a peer Matrix server.
    ToPeer(ServerId, PeerMsg),
    /// Send to the Matrix Coordinator.
    ToCoord(CoordMsg),
    /// Send to the resource pool.
    ToPool(PoolMsg),
}

/// Where the server is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lifecycle {
    /// Allocated but not yet managing a partition (fresh from the pool).
    Idle,
    /// Managing a partition.
    Active,
    /// Reclaimed; drained and awaiting teardown.
    Retired,
}

/// Counters exposed for experiments and debugging.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ServerStats {
    /// Packets received from the local game server for routing.
    pub packets_in: u64,
    /// Peer updates sent (one per destination server).
    pub peer_updates_out: u64,
    /// Bytes sent to peer Matrix servers (consistency traffic).
    pub bytes_to_peers: u64,
    /// Peer updates received and delivered to the game server.
    pub peer_updates_in: u64,
    /// Peer updates dropped because their origin was outside our range of
    /// interest (stale routes during topology changes).
    pub misrouted_dropped: u64,
    /// Packets routed while no overlap table was installed yet (delivered
    /// to no one — the transient consistency gap after a fresh split).
    pub routed_without_table: u64,
    /// Splits this server initiated.
    pub splits: u64,
    /// Children this server reclaimed.
    pub reclaims: u64,
    /// Pool requests that came back denied.
    pub pool_denied: u64,
    /// Point resolutions answered from the local directory cache.
    pub local_resolves: u64,
    /// Point resolutions referred to the coordinator.
    pub coordinator_resolves: u64,
    /// Packets routed with a per-packet radius override.
    pub override_routes: u64,
    /// Failed-peer ranges absorbed during crash recovery.
    pub absorbs: u64,
    /// Warm standbys this server paired with (as primary).
    pub standbys_acquired: u64,
    /// Promotions: this server took over a dead primary's region.
    pub promotions: u64,
}

#[derive(Debug, Clone)]
struct PendingResolve {
    client: ClientId,
    point: Point,
    /// Packet to route on resolution (`None` for plain WhereIs queries).
    packet: Option<GamePacket>,
}

/// The per-node middleware state machine. See the module docs for the
/// driving contract.
#[derive(Debug, Clone)]
pub struct MatrixServer {
    id: ServerId,
    cfg: MatrixConfig,
    lifecycle: Lifecycle,
    radius: f64,
    range: Option<Rect>,
    parent: Option<ServerId>,
    children: Vec<ServerId>,
    child_load: BTreeMap<ServerId, LoadSnapshot>,
    /// Range handed to each child at split time; a leaf child still owns
    /// exactly this range, so it doubles as the mergeability check for
    /// reclaim candidates.
    child_ranges: BTreeMap<ServerId, Rect>,
    epoch: u64,
    table: Option<OverlapTable>,
    extra_tables: BTreeMap<u64, OverlapTable>,
    map: Option<PartitionMap>,
    /// Grid index over `map` for O(1) owner resolution.
    map_index: Option<PartitionIndex>,
    load: LoadTracker,
    cooldown: Cooldown,
    pending_pool: bool,
    pending_reclaim: Option<ServerId>,
    pending_resolves: Vec<PendingResolve>,
    last_heartbeat: Option<SimTime>,
    /// Warm standby paired with this region (primary role).
    standby: Option<ServerId>,
    /// A standby acquisition is in flight at the pool.
    pending_standby: bool,
    /// Earliest time to retry a denied standby acquisition.
    standby_retry_at: Option<SimTime>,
    /// The primary this idle server stands by for (standby role) —
    /// standbys heartbeat so the coordinator can detect their death.
    standby_for: Option<ServerId>,
    /// The co-located game server's latest telemetry snapshot, peeled off
    /// an incoming load report and held until the next heartbeat carries
    /// it to the coordinator.
    pending_telemetry: Option<Box<TelemetrySnapshot>>,
    stats: ServerStats,
}

impl MatrixServer {
    /// Creates an idle server, as handed out by the resource pool. It
    /// becomes active when a game server registers with it (bootstrap) or
    /// a peer hands it a partition (split adoption).
    pub fn new(id: ServerId, cfg: MatrixConfig) -> MatrixServer {
        MatrixServer {
            id,
            cfg,
            lifecycle: Lifecycle::Idle,
            radius: 0.0,
            range: None,
            parent: None,
            children: Vec::new(),
            child_load: BTreeMap::new(),
            child_ranges: BTreeMap::new(),
            epoch: 0,
            table: None,
            extra_tables: BTreeMap::new(),
            map: None,
            map_index: None,
            load: LoadTracker::new(),
            cooldown: Cooldown::new(),
            pending_pool: false,
            pending_reclaim: None,
            pending_resolves: Vec::new(),
            last_heartbeat: None,
            standby: None,
            pending_standby: false,
            standby_retry_at: None,
            standby_for: None,
            pending_telemetry: None,
            stats: ServerStats::default(),
        }
    }

    /// Creates a server that already owns `range` — used to bootstrap the
    /// static-partitioning baseline and multi-server test fixtures without
    /// running the registration handshake.
    pub fn with_range(id: ServerId, cfg: MatrixConfig, range: Rect, radius: f64) -> MatrixServer {
        let mut s = MatrixServer::new(id, cfg);
        s.range = Some(range);
        s.radius = radius;
        s.lifecycle = Lifecycle::Active;
        s
    }

    // -- accessors ----------------------------------------------------------

    /// This server's id.
    pub fn id(&self) -> ServerId {
        self.id
    }

    /// The partition currently managed, if active.
    pub fn range(&self) -> Option<Rect> {
        self.range
    }

    /// Lifecycle state.
    pub fn lifecycle(&self) -> Lifecycle {
        self.lifecycle
    }

    /// The parent that split to create this server, if any.
    pub fn parent(&self) -> Option<ServerId> {
        self.parent
    }

    /// Live children created by splits of this server.
    pub fn children(&self) -> &[ServerId] {
        &self.children
    }

    /// Routing-table epoch currently installed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Counters for experiments.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// The game's registered radius of visibility.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Most recently reported client count (0 before any report).
    pub fn client_count(&self) -> u32 {
        self.load.clients()
    }

    /// The warm standby paired with this region, if any.
    pub fn standby(&self) -> Option<ServerId> {
        self.standby
    }

    /// The primary this server stands by for, if it is a warm standby.
    pub fn standby_for(&self) -> Option<ServerId> {
        self.standby_for
    }

    // -- game server input ---------------------------------------------------

    /// Handles a message from the co-located game server.
    pub fn on_game(&mut self, now: SimTime, msg: GameToMatrix) -> Vec<Action> {
        match msg {
            GameToMatrix::Register { world, radius } => self.handle_register(world, radius),
            GameToMatrix::RegisterRadius { radius } => {
                vec![Action::ToCoord(CoordMsg::RegisterRadius {
                    server: self.id,
                    radius,
                })]
            }
            GameToMatrix::Forward(pkt) => self.route_packet(pkt),
            GameToMatrix::Load(report) => self.handle_load(now, report),
            GameToMatrix::WhereIs { client, point } => self.resolve_point(client, point, None),
            GameToMatrix::TransferState { to, bytes } => {
                vec![Action::ToPeer(
                    to,
                    PeerMsg::StateTransfer {
                        from: self.id,
                        bytes,
                    },
                )]
            }
            GameToMatrix::TransferClient { to, client, bytes } => {
                vec![Action::ToPeer(
                    to,
                    PeerMsg::ClientTransfer {
                        from: self.id,
                        client,
                        bytes,
                    },
                )]
            }
            GameToMatrix::Replica { to, batch } => {
                vec![Action::ToPeer(
                    to,
                    PeerMsg::Replica {
                        from: self.id,
                        batch,
                    },
                )]
            }
            GameToMatrix::ReplicaAck { to, seq, resync } => {
                vec![Action::ToPeer(
                    to,
                    PeerMsg::ReplicaAck {
                        from: self.id,
                        seq,
                        resync,
                    },
                )]
            }
        }
    }

    fn handle_register(&mut self, world: Rect, radius: f64) -> Vec<Action> {
        self.radius = radius;
        if self.range.is_none() && self.parent.is_none() {
            // Bootstrap: the very first server owns the whole world.
            self.range = Some(world);
            self.lifecycle = Lifecycle::Active;
            vec![Action::ToCoord(CoordMsg::RegisterWorld {
                server: self.id,
                world,
                radius,
            })]
        } else {
            // A re-register on an already-ranged server only refreshes the
            // radius; tables for it exist already (split path).
            Vec::new()
        }
    }

    fn handle_load(
        &mut self,
        now: SimTime,
        mut report: crate::messages::LoadReport,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        if let Some(snap) = report.telemetry.take() {
            // Latest wins: heartbeats are sparser than load reports, and
            // the snapshot is cumulative, so skipped ones lose nothing.
            self.pending_telemetry = Some(snap);
        }
        self.load.observe(&self.cfg, report);
        if let Some(parent) = self.parent {
            out.push(Action::ToPeer(
                parent,
                PeerMsg::LoadStatus(self.load_snapshot()),
            ));
        }
        out.extend(self.maybe_adapt(now));
        out
    }

    fn load_snapshot(&self) -> LoadSnapshot {
        LoadSnapshot {
            clients: self.load.clients(),
            queue_backlog: self.load.last().map_or(0.0, |r| r.queue_backlog),
            has_children: !self.children.is_empty(),
        }
    }

    // -- routing -------------------------------------------------------------

    fn route_packet(&mut self, pkt: GamePacket) -> Vec<Action> {
        self.stats.packets_in += 1;
        if self.lifecycle != Lifecycle::Active {
            return Vec::new();
        }
        // Non-proximal interaction: the event lands at `dest`, so route by
        // the destination point (possibly via the coordinator).
        if let Some(dest) = pkt.tag.dest {
            return self.route_non_proximal(pkt, dest);
        }
        let origin = pkt.tag.origin;
        let set: Vec<ServerId> = match pkt.tag.radius_override {
            None => match &self.table {
                Some(t) => t.lookup(origin).to_vec(),
                None => {
                    self.stats.routed_without_table += 1;
                    Vec::new()
                }
            },
            Some(r) => {
                self.stats.override_routes += 1;
                self.set_for_radius(origin, r)
            }
        };
        let mut out = Vec::with_capacity(set.len());
        for peer in set {
            if peer == self.id {
                continue;
            }
            self.stats.peer_updates_out += 1;
            self.stats.bytes_to_peers += pkt.wire_size() as u64;
            out.push(Action::ToPeer(peer, PeerMsg::Update(pkt.clone())));
        }
        out
    }

    /// Consistency set for a packet with a radius override: served from the
    /// override's dedicated table when the coordinator built one, otherwise
    /// computed exactly from the cached directory.
    fn set_for_radius(&mut self, origin: Point, radius: f64) -> Vec<ServerId> {
        if let Some(t) = self.extra_tables.get(&radius.to_bits()) {
            return t.lookup(origin).to_vec();
        }
        match &self.map {
            Some(map) => {
                let parts: Vec<(ServerId, Rect)> = map.iter().collect();
                consistency_set_from_rects(&parts, origin, self.id, radius, self.cfg.metric)
            }
            // No directory yet: fall back to the primary table. For
            // overrides below the primary radius this is conservative
            // (a superset); for larger ones some peers may be missed until
            // tables arrive.
            None => self
                .table
                .as_ref()
                .map(|t| t.lookup(origin).to_vec())
                .unwrap_or_default(),
        }
    }

    fn route_non_proximal(&mut self, pkt: GamePacket, dest: Point) -> Vec<Action> {
        let radius = pkt.tag.radius_override.unwrap_or(self.radius);
        if self.cfg.resolve_locally {
            if let Some(map) = &self.map {
                self.stats.local_resolves += 1;
                let owner = self
                    .map_index
                    .as_ref()
                    .and_then(|i| i.owner_of(dest))
                    .or_else(|| map.owner_of(dest));
                let parts: Vec<(ServerId, Rect)> = map.iter().collect();
                let mut set =
                    consistency_set_from_rects(&parts, dest, self.id, radius, self.cfg.metric);
                if let Some(o) = owner {
                    if o != self.id && !set.contains(&o) {
                        set.push(o);
                    }
                }
                let mut out = Vec::new();
                for peer in set {
                    self.stats.peer_updates_out += 1;
                    self.stats.bytes_to_peers += pkt.wire_size() as u64;
                    out.push(Action::ToPeer(peer, PeerMsg::Update(pkt.clone())));
                }
                if owner == Some(self.id) {
                    out.push(Action::ToGame(MatrixToGame::Deliver(pkt)));
                }
                return out;
            }
        }
        // Rare path the paper describes: ask the MC for the consistency set
        // of this particular interaction (§3.2.4).
        self.stats.coordinator_resolves += 1;
        let client = pkt.client.unwrap_or_default();
        self.pending_resolves.push(PendingResolve {
            client,
            point: dest,
            packet: Some(pkt),
        });
        vec![Action::ToCoord(CoordMsg::ResolvePoint {
            server: self.id,
            client,
            point: dest,
            radius: Some(radius),
        })]
    }

    fn resolve_point(
        &mut self,
        client: ClientId,
        point: Point,
        packet: Option<GamePacket>,
    ) -> Vec<Action> {
        if self.cfg.resolve_locally {
            if let Some(index) = &self.map_index {
                self.stats.local_resolves += 1;
                return vec![Action::ToGame(MatrixToGame::Owner {
                    client,
                    point,
                    owner: index.owner_of(point),
                })];
            }
        }
        self.stats.coordinator_resolves += 1;
        self.pending_resolves.push(PendingResolve {
            client,
            point,
            packet,
        });
        vec![Action::ToCoord(CoordMsg::ResolvePoint {
            server: self.id,
            client,
            point,
            radius: None,
        })]
    }

    // -- adaptation ----------------------------------------------------------

    fn maybe_adapt(&mut self, now: SimTime) -> Vec<Action> {
        if !self.cfg.adaptive || self.lifecycle != Lifecycle::Active {
            return Vec::new();
        }
        if !self.cooldown.ready(now) || self.pending_pool || self.pending_reclaim.is_some() {
            return Vec::new();
        }
        if self.load.is_overloaded(&self.cfg) && self.range.is_some() {
            self.pending_pool = true;
            return vec![Action::ToPool(PoolMsg::Acquire {
                requester: self.id,
                purpose: PoolPurpose::Split,
            })];
        }
        if self.load.is_underloaded(&self.cfg) {
            // Reclaim the youngest child whose load is known, small, and
            // leaf-like; combined load must stay clearly under the overload
            // threshold or the merge would immediately re-split.
            let my_clients = self.load.clients();
            let my_range = self.range;
            let candidate = self.children.iter().rev().copied().find(|c| {
                let merged_limit =
                    (self.cfg.overload_clients as f64 * self.cfg.reclaim_headroom) as u32;
                let load_ok = self.child_load.get(c).is_some_and(|l| {
                    !l.has_children
                        && l.clients < self.cfg.underload_clients
                        && my_clients + l.clients < merged_limit
                });
                // Only children whose partition still tiles with ours can
                // fold back in; after further splits of this server, only
                // the most recent child is adjacent.
                let geometry_ok = match (my_range, self.child_ranges.get(c)) {
                    (Some(mine), Some(theirs)) => mine.merges_with(theirs).is_some(),
                    _ => false,
                };
                load_ok && geometry_ok
            });
            if let Some(child) = candidate {
                self.pending_reclaim = Some(child);
                return vec![Action::ToPeer(
                    child,
                    PeerMsg::ReclaimRequest { parent: self.id },
                )];
            }
        }
        Vec::new()
    }

    // -- peer input ------------------------------------------------------------

    /// Handles a message from a peer Matrix server.
    pub fn on_peer(&mut self, now: SimTime, from: ServerId, msg: PeerMsg) -> Vec<Action> {
        match msg {
            PeerMsg::Update(pkt) => self.deliver_update(pkt),
            PeerMsg::AdoptPartition {
                parent,
                range,
                radius,
                epoch,
            } => self.adopt(now, parent, range, radius, epoch),
            PeerMsg::AdoptAck { child: _ } => Vec::new(),
            PeerMsg::StateTransfer { from, bytes } => {
                vec![Action::ToGame(MatrixToGame::ReceiveState { from, bytes })]
            }
            PeerMsg::ClientTransfer {
                from,
                client,
                bytes,
            } => {
                vec![Action::ToGame(MatrixToGame::ReceiveClient {
                    from,
                    client,
                    bytes,
                })]
            }
            PeerMsg::ReclaimRequest { parent } => self.handle_reclaim_request(parent),
            PeerMsg::ReclaimGrant {
                child,
                range,
                clients: _,
            } => self.handle_reclaim_grant(now, child, range),
            PeerMsg::ReclaimDeny { child } => {
                if self.pending_reclaim == Some(child) {
                    self.pending_reclaim = None;
                    self.cooldown.arm(now, &self.cfg);
                }
                Vec::new()
            }
            PeerMsg::LoadStatus(snapshot) => {
                self.child_load.insert(from, snapshot);
                Vec::new()
            }
            PeerMsg::StandbyAssign {
                primary,
                range: _,
                radius: _,
            } => {
                if self.lifecycle == Lifecycle::Active {
                    // An active server cannot mirror a peer; the primary
                    // will re-pair when its batches go unacked.
                    return Vec::new();
                }
                self.standby_for = Some(primary);
                // Start with a clean slate and announce liveness: the
                // coordinator watches standby heartbeats too.
                vec![
                    Action::ToGame(MatrixToGame::ReplicaReset),
                    Action::ToCoord(CoordMsg::Heartbeat {
                        server: self.id,
                        epoch: self.epoch,
                        telemetry: None,
                    }),
                ]
            }
            PeerMsg::StandbyRelease { primary } => {
                if self.standby_for == Some(primary) {
                    self.standby_for = None;
                    return vec![Action::ToGame(MatrixToGame::ReplicaReset)];
                }
                Vec::new()
            }
            PeerMsg::Replica { from, batch } => {
                vec![Action::ToGame(MatrixToGame::ReplicaBatch { from, batch })]
            }
            PeerMsg::ReplicaAck {
                from: _,
                seq,
                resync,
            } => {
                vec![Action::ToGame(MatrixToGame::ReplicaAck { seq, resync })]
            }
        }
    }

    fn deliver_update(&mut self, pkt: GamePacket) -> Vec<Action> {
        if self.lifecycle != Lifecycle::Active {
            self.stats.misrouted_dropped += 1;
            return Vec::new();
        }
        // §3.2.3: peers forward the packet "after verifying the packet's
        // range". Relevant iff the event point is within the radius of
        // visibility of some point of our partition.
        let point = pkt.tag.dest.unwrap_or(pkt.tag.origin);
        let radius = pkt.tag.radius_override.unwrap_or(self.radius);
        let relevant = self
            .range
            .map(|r| r.distance_to(point, self.cfg.metric) <= radius)
            .unwrap_or(false);
        if !relevant {
            self.stats.misrouted_dropped += 1;
            return Vec::new();
        }
        self.stats.peer_updates_in += 1;
        vec![Action::ToGame(MatrixToGame::Deliver(pkt))]
    }

    fn adopt(
        &mut self,
        now: SimTime,
        parent: ServerId,
        range: Rect,
        radius: f64,
        epoch: u64,
    ) -> Vec<Action> {
        if self.lifecycle == Lifecycle::Active {
            // Already active: a duplicate adoption is a protocol error from
            // a stale retry; ignore it.
            return Vec::new();
        }
        // A retired server's id can be handed out again by the pool; wipe
        // every trace of its previous life before adopting.
        self.children.clear();
        self.child_load.clear();
        self.child_ranges.clear();
        self.load = LoadTracker::new();
        self.pending_pool = false;
        self.pending_reclaim = None;
        self.pending_resolves.clear();
        self.table = None;
        self.extra_tables.clear();
        self.standby = None;
        self.pending_standby = false;
        self.standby_retry_at = None;
        self.standby_for = None;
        self.lifecycle = Lifecycle::Active;
        self.parent = Some(parent);
        self.range = Some(range);
        self.radius = radius;
        self.epoch = epoch;
        // A fresh child must not immediately split or be reclaimed.
        self.cooldown.arm(now, &self.cfg);
        vec![
            Action::ToGame(MatrixToGame::ReplicaReset),
            Action::ToGame(MatrixToGame::SetRange { range, radius }),
            Action::ToPeer(parent, PeerMsg::AdoptAck { child: self.id }),
            Action::ToCoord(CoordMsg::Heartbeat {
                server: self.id,
                epoch: self.epoch,
                telemetry: None,
            }),
        ]
    }

    fn handle_reclaim_request(&mut self, parent: ServerId) -> Vec<Action> {
        let reclaimable = self.lifecycle == Lifecycle::Active
            && self.parent == Some(parent)
            && self.children.is_empty()
            && !self.load.is_overloaded(&self.cfg)
            && self.range.is_some();
        if !reclaimable {
            return vec![Action::ToPeer(
                parent,
                PeerMsg::ReclaimDeny { child: self.id },
            )];
        }
        let range = self.range.take().expect("checked above");
        self.lifecycle = Lifecycle::Retired;
        let mut out = Vec::new();
        // The pairing ends with the region: release the standby back to
        // the pool and have both sides drop their replication state.
        if let Some(standby) = self.standby.take() {
            out.push(Action::ToPeer(
                standby,
                PeerMsg::StandbyRelease { primary: self.id },
            ));
            out.push(Action::ToPool(PoolMsg::Release { server: standby }));
            out.push(Action::ToGame(MatrixToGame::ReplicaReset));
        }
        self.pending_standby = false;
        out.extend([
            Action::ToGame(MatrixToGame::RedirectAll { to: parent }),
            Action::ToPeer(
                parent,
                PeerMsg::ReclaimGrant {
                    child: self.id,
                    range,
                    clients: self.load.clients(),
                },
            ),
            Action::ToPool(PoolMsg::Release { server: self.id }),
        ]);
        out
    }

    fn handle_reclaim_grant(&mut self, now: SimTime, child: ServerId, range: Rect) -> Vec<Action> {
        self.pending_reclaim = None;
        self.children.retain(|c| *c != child);
        self.child_load.remove(&child);
        self.child_ranges.remove(&child);
        let Some(mine) = self.range else {
            return Vec::new();
        };
        let Some(merged) = mine.merges_with(&range) else {
            // The child's range no longer tiles with ours (its range grew
            // through crash absorption since the split). The retired child
            // has already shed its clients, so its range must find a new
            // owner: hand it to the coordinator.
            return vec![Action::ToCoord(CoordMsg::OrphanRange {
                parent: self.id,
                child,
                range,
            })];
        };
        self.range = Some(merged);
        self.stats.reclaims += 1;
        self.cooldown.arm(now, &self.cfg);
        self.load.reset_streaks();
        vec![
            Action::ToGame(MatrixToGame::SetRange {
                range: merged,
                radius: self.radius,
            }),
            Action::ToCoord(CoordMsg::ReclaimOccurred {
                parent: self.id,
                child,
                merged_range: merged,
            }),
        ]
    }

    // -- coordinator input -----------------------------------------------------

    /// Handles a reply from the coordinator.
    pub fn on_coord(&mut self, _now: SimTime, msg: CoordReply) -> Vec<Action> {
        match msg {
            CoordReply::Tables {
                epoch,
                table,
                extra_tables,
                map,
            } => {
                if epoch < self.epoch {
                    return Vec::new(); // stale recomputation in flight
                }
                self.epoch = epoch;
                self.table = Some(table);
                self.extra_tables = extra_tables.into_iter().collect();
                self.map_index = Some(PartitionIndex::build_auto(&map));
                self.map = Some(map);
                Vec::new()
            }
            CoordReply::Resolved {
                client,
                point,
                owner,
                set,
            } => self.finish_resolve(client, point, owner, set),
            CoordReply::AbsorbFailed { failed, range } => self.absorb_failed(failed, range),
            CoordReply::Promote {
                failed: _,
                range,
                radius,
            } => self.promote_self(_now, range, radius),
            CoordReply::StandbyLost { standby } => {
                if self.standby == Some(standby) {
                    self.standby = None;
                    self.standby_retry_at = None;
                    // Drop the log; a replacement pairs on the next tick.
                    return vec![Action::ToGame(MatrixToGame::ReplicaReset)];
                }
                Vec::new()
            }
        }
    }

    /// Failover: this warm standby becomes the active owner of its dead
    /// primary's range. The co-located game server restores the
    /// replicated snapshot and re-points the surviving clients here.
    fn promote_self(&mut self, now: SimTime, range: Rect, radius: f64) -> Vec<Action> {
        if self.lifecycle == Lifecycle::Active {
            return Vec::new(); // duplicate promotion from a stale sweep
        }
        self.lifecycle = Lifecycle::Active;
        self.range = Some(range);
        self.radius = radius;
        self.parent = None;
        self.standby_for = None;
        self.stats.promotions += 1;
        // A freshly promoted server must not immediately split.
        self.cooldown.arm(now, &self.cfg);
        vec![
            Action::ToGame(MatrixToGame::Promote { range, radius }),
            Action::ToCoord(CoordMsg::Heartbeat {
                server: self.id,
                epoch: self.epoch,
                telemetry: None,
            }),
        ]
    }

    fn finish_resolve(
        &mut self,
        client: ClientId,
        point: Point,
        owner: Option<ServerId>,
        set: Vec<ServerId>,
    ) -> Vec<Action> {
        let mut out = Vec::new();
        let mut remaining = Vec::new();
        for pending in self.pending_resolves.drain(..) {
            if pending.client == client && pending.point == point {
                match pending.packet {
                    Some(pkt) => {
                        let mut targets = set.clone();
                        if let Some(o) = owner {
                            if !targets.contains(&o) {
                                targets.push(o);
                            }
                        }
                        for peer in targets {
                            if peer == self.id {
                                out.push(Action::ToGame(MatrixToGame::Deliver(pkt.clone())));
                            } else {
                                self.stats.peer_updates_out += 1;
                                self.stats.bytes_to_peers += pkt.wire_size() as u64;
                                out.push(Action::ToPeer(peer, PeerMsg::Update(pkt.clone())));
                            }
                        }
                    }
                    None => {
                        out.push(Action::ToGame(MatrixToGame::Owner {
                            client,
                            point,
                            owner,
                        }));
                    }
                }
            } else {
                remaining.push(pending);
            }
        }
        self.pending_resolves = remaining;
        out
    }

    fn absorb_failed(&mut self, failed: ServerId, range: Rect) -> Vec<Action> {
        self.children.retain(|c| *c != failed);
        self.child_load.remove(&failed);
        self.child_ranges.remove(&failed);
        let Some(mine) = self.range else {
            return Vec::new();
        };
        let merged = mine.merges_with(&range).unwrap_or(mine);
        self.range = Some(merged);
        self.stats.absorbs += 1;
        vec![Action::ToGame(MatrixToGame::SetRange {
            range: merged,
            radius: self.radius,
        })]
    }

    // -- pool input --------------------------------------------------------------

    /// Handles a reply from the resource pool.
    pub fn on_pool(&mut self, now: SimTime, msg: PoolReply) -> Vec<Action> {
        match msg {
            PoolReply::Grant {
                server,
                purpose: PoolPurpose::Split,
            } => self.perform_split(now, server),
            PoolReply::Grant {
                server,
                purpose: PoolPurpose::Standby,
            } => self.pair_standby(server),
            PoolReply::Denied {
                purpose: PoolPurpose::Split,
            } => {
                self.pending_pool = false;
                self.stats.pool_denied += 1;
                // Back off; the overload persists and will retry after the
                // cooldown window.
                self.cooldown.arm(now, &self.cfg);
                Vec::new()
            }
            PoolReply::Denied {
                purpose: PoolPurpose::Standby,
            } => {
                self.pending_standby = false;
                self.stats.pool_denied += 1;
                // Splits outrank availability for spare capacity: retry
                // only after a full cooldown window.
                self.standby_retry_at = Some(now + self.cfg.cooldown);
                Vec::new()
            }
        }
    }

    /// Pairs a pool-granted server as this region's warm standby.
    fn pair_standby(&mut self, server: ServerId) -> Vec<Action> {
        self.pending_standby = false;
        let Some(range) = self.range else {
            // No longer active: give the server straight back.
            return vec![Action::ToPool(PoolMsg::Release { server })];
        };
        self.standby = Some(server);
        self.stats.standbys_acquired += 1;
        vec![
            Action::ToPeer(
                server,
                PeerMsg::StandbyAssign {
                    primary: self.id,
                    range,
                    radius: self.radius,
                },
            ),
            Action::ToCoord(CoordMsg::StandbyAssigned {
                primary: self.id,
                standby: server,
            }),
            Action::ToGame(MatrixToGame::SetStandby { standby: server }),
        ]
    }

    fn perform_split(&mut self, now: SimTime, new_server: ServerId) -> Vec<Action> {
        self.pending_pool = false;
        let Some(rect) = self.range else {
            return vec![Action::ToPool(PoolMsg::Release { server: new_server })];
        };
        let positions = self.load.positions().to_vec();
        let Some((given, kept)) = self.cfg.split_strategy.split(&rect, &positions) else {
            // Partition too small to split: give the server back.
            return vec![Action::ToPool(PoolMsg::Release { server: new_server })];
        };
        self.range = Some(kept);
        self.children.push(new_server);
        self.child_ranges.insert(new_server, given);
        self.stats.splits += 1;
        self.cooldown.arm(now, &self.cfg);
        self.load.reset_streaks();
        vec![
            Action::ToPeer(
                new_server,
                PeerMsg::AdoptPartition {
                    parent: self.id,
                    range: given,
                    radius: self.radius,
                    epoch: self.epoch,
                },
            ),
            Action::ToCoord(CoordMsg::SplitOccurred {
                parent: self.id,
                child: new_server,
                parent_range: kept,
                child_range: given,
            }),
            Action::ToGame(MatrixToGame::SetRange {
                range: kept,
                radius: self.radius,
            }),
            Action::ToGame(MatrixToGame::RedirectClients {
                region: given,
                to: new_server,
            }),
        ]
    }

    // -- timer input ----------------------------------------------------------

    /// Periodic tick: heartbeats, child load pushes, standby pairing and
    /// adaptation checks that must not depend on load-report arrival
    /// alone.
    pub fn on_tick(&mut self, now: SimTime) -> Vec<Action> {
        if self.lifecycle != Lifecycle::Active {
            // Idle standbys heartbeat too: the coordinator must notice a
            // dead standby so the primary can re-pair.
            if self.standby_for.is_some() {
                let due = self
                    .last_heartbeat
                    .is_none_or(|t| now.since(t) >= self.cfg.heartbeat_every);
                if due {
                    self.last_heartbeat = Some(now);
                    return vec![Action::ToCoord(CoordMsg::Heartbeat {
                        server: self.id,
                        epoch: self.epoch,
                        telemetry: None,
                    })];
                }
            }
            return Vec::new();
        }
        let mut out = Vec::new();
        let due = self
            .last_heartbeat
            .is_none_or(|t| now.since(t) >= self.cfg.heartbeat_every);
        if due {
            self.last_heartbeat = Some(now);
            out.push(Action::ToCoord(CoordMsg::Heartbeat {
                server: self.id,
                epoch: self.epoch,
                telemetry: self.pending_telemetry.take(),
            }));
            if let Some(parent) = self.parent {
                out.push(Action::ToPeer(
                    parent,
                    PeerMsg::LoadStatus(self.load_snapshot()),
                ));
            }
        }
        if self.cfg.standby_replication
            && self.standby.is_none()
            && !self.pending_standby
            && self.range.is_some()
            && self.standby_retry_at.is_none_or(|t| now >= t)
        {
            self.pending_standby = true;
            out.push(Action::ToPool(PoolMsg::Acquire {
                requester: self.id,
                purpose: PoolPurpose::Standby,
            }));
        }
        out.extend(self.maybe_adapt(now));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::LoadReport;
    use crate::packet::SpatialTag;
    use matrix_geometry::{build_overlap, Metric, PartitionMap, SplitStrategy};

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 400.0, 400.0)
    }

    fn cfg() -> MatrixConfig {
        MatrixConfig {
            cooldown: matrix_sim::SimDuration::from_secs(1),
            ..MatrixConfig::default()
        }
    }

    fn overloaded_report() -> GameToMatrix {
        GameToMatrix::Load(LoadReport {
            clients: 400,
            queue_backlog: 0.0,
            positions: Vec::new(),
            telemetry: None,
        })
    }

    /// Drives a server through registration and table installation against
    /// a two-partition map.
    fn active_pair() -> (MatrixServer, MatrixServer, PartitionMap) {
        let mut map = PartitionMap::new(world(), ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        let overlap = build_overlap(&map, 50.0, Metric::Euclidean);
        let mut s1 =
            MatrixServer::with_range(ServerId(1), cfg(), map.range_of(ServerId(1)).unwrap(), 50.0);
        let mut s2 =
            MatrixServer::with_range(ServerId(2), cfg(), map.range_of(ServerId(2)).unwrap(), 50.0);
        for s in [&mut s1, &mut s2] {
            s.on_coord(
                SimTime::ZERO,
                CoordReply::Tables {
                    epoch: 1,
                    table: overlap.table_for(s.id()).unwrap().clone(),
                    extra_tables: Vec::new(),
                    map: map.clone(),
                },
            );
        }
        (s1, s2, map)
    }

    #[test]
    fn bootstrap_register_claims_world() {
        let mut s = MatrixServer::new(ServerId(1), cfg());
        let actions = s.on_game(
            SimTime::ZERO,
            GameToMatrix::Register {
                world: world(),
                radius: 50.0,
            },
        );
        assert_eq!(s.range(), Some(world()));
        assert_eq!(s.lifecycle(), Lifecycle::Active);
        assert!(matches!(
            actions.as_slice(),
            [Action::ToCoord(CoordMsg::RegisterWorld { .. })]
        ));
    }

    #[test]
    fn interior_packet_routes_nowhere() {
        let (mut s1, _, _) = active_pair();
        let pkt =
            GamePacket::synthetic(ClientId(1), SpatialTag::at(Point::new(390.0, 200.0)), 64, 0);
        let actions = s1.on_game(SimTime::ZERO, GameToMatrix::Forward(pkt));
        assert!(actions.is_empty());
    }

    #[test]
    fn boundary_packet_routes_to_neighbour() {
        let (mut s1, _, _) = active_pair();
        // S1 owns [200,400]; x=210 is within 50 of S2's half.
        let pkt =
            GamePacket::synthetic(ClientId(1), SpatialTag::at(Point::new(210.0, 200.0)), 64, 0);
        let actions = s1.on_game(SimTime::ZERO, GameToMatrix::Forward(pkt.clone()));
        assert_eq!(
            actions,
            vec![Action::ToPeer(ServerId(2), PeerMsg::Update(pkt))]
        );
        assert_eq!(s1.stats().peer_updates_out, 1);
        assert!(s1.stats().bytes_to_peers > 0);
    }

    #[test]
    fn peer_update_is_verified_then_delivered() {
        let (mut s1, mut s2, _) = active_pair();
        let pkt =
            GamePacket::synthetic(ClientId(1), SpatialTag::at(Point::new(210.0, 200.0)), 64, 0);
        let actions = s1.on_game(SimTime::ZERO, GameToMatrix::Forward(pkt.clone()));
        let Action::ToPeer(to, PeerMsg::Update(p)) = &actions[0] else {
            panic!("expected peer update");
        };
        let delivered = s2.on_peer(SimTime::ZERO, s1.id(), PeerMsg::Update(p.clone()));
        assert_eq!(*to, ServerId(2));
        assert_eq!(
            delivered,
            vec![Action::ToGame(MatrixToGame::Deliver(p.clone()))]
        );
        assert_eq!(s2.stats().peer_updates_in, 1);
    }

    #[test]
    fn irrelevant_peer_update_is_dropped() {
        let (_, mut s2, _) = active_pair();
        // Origin deep inside S1: not within 50 of S2's partition.
        let pkt =
            GamePacket::synthetic(ClientId(1), SpatialTag::at(Point::new(390.0, 200.0)), 64, 0);
        let actions = s2.on_peer(SimTime::ZERO, ServerId(1), PeerMsg::Update(pkt));
        assert!(actions.is_empty());
        assert_eq!(s2.stats().misrouted_dropped, 1);
    }

    #[test]
    fn overload_requests_pool_once() {
        let (mut s1, _, _) = active_pair();
        let t = SimTime::from_secs(10);
        assert!(
            s1.on_game(t, overloaded_report()).is_empty(),
            "streak of 1 must not act"
        );
        let actions = s1.on_game(t, overloaded_report());
        assert_eq!(
            actions,
            vec![Action::ToPool(PoolMsg::Acquire {
                requester: ServerId(1),
                purpose: PoolPurpose::Split,
            })]
        );
        // Further overload reports while the request is pending do nothing.
        assert!(s1.on_game(t, overloaded_report()).is_empty());
    }

    #[test]
    fn split_hands_left_half_to_grant() {
        let (mut s1, _, _) = active_pair();
        let t = SimTime::from_secs(10);
        s1.on_game(t, overloaded_report());
        s1.on_game(t, overloaded_report());
        let actions = s1.on_pool(
            t,
            PoolReply::Grant {
                server: ServerId(7),
                purpose: PoolPurpose::Split,
            },
        );
        // S1 owned [200,400]x[0,400]; split-to-left gives [200,300] away.
        let given = Rect::from_coords(200.0, 0.0, 300.0, 400.0);
        let kept = Rect::from_coords(300.0, 0.0, 400.0, 400.0);
        assert_eq!(s1.range(), Some(kept));
        assert_eq!(s1.children(), &[ServerId(7)]);
        assert_eq!(s1.stats().splits, 1);
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToPeer(s, PeerMsg::AdoptPartition { range, .. }) if *s == ServerId(7) && *range == given)));
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToCoord(CoordMsg::SplitOccurred { parent, child, .. })
                if *parent == ServerId(1) && *child == ServerId(7))));
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToGame(MatrixToGame::RedirectClients { to, .. }) if *to == ServerId(7))));
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToGame(MatrixToGame::SetRange { range, .. }) if *range == kept)));
    }

    #[test]
    fn child_adoption_acks_and_heartbeats() {
        let mut child = MatrixServer::new(ServerId(7), cfg());
        let actions = child.on_peer(
            SimTime::from_secs(1),
            ServerId(1),
            PeerMsg::AdoptPartition {
                parent: ServerId(1),
                range: Rect::from_coords(200.0, 0.0, 300.0, 400.0),
                radius: 50.0,
                epoch: 3,
            },
        );
        assert_eq!(child.lifecycle(), Lifecycle::Active);
        assert_eq!(child.parent(), Some(ServerId(1)));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::ToGame(MatrixToGame::SetRange { .. }))));
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToPeer(p, PeerMsg::AdoptAck { child: c }) if *p == ServerId(1) && *c == ServerId(7))));
    }

    #[test]
    fn pool_denied_backs_off() {
        let (mut s1, _, _) = active_pair();
        let t = SimTime::from_secs(10);
        s1.on_game(t, overloaded_report());
        s1.on_game(t, overloaded_report());
        s1.on_pool(
            t,
            PoolReply::Denied {
                purpose: PoolPurpose::Split,
            },
        );
        assert_eq!(s1.stats().pool_denied, 1);
        // Still overloaded, but inside the cooldown: no new request.
        assert!(s1.on_game(t, overloaded_report()).is_empty());
        // After the cooldown the retry fires on the next overloaded report
        // (the streak is already long enough).
        let later = t + matrix_sim::SimDuration::from_secs(2);
        let actions = s1.on_game(later, overloaded_report());
        assert_eq!(
            actions,
            vec![Action::ToPool(PoolMsg::Acquire {
                requester: ServerId(1),
                purpose: PoolPurpose::Split,
            })]
        );
    }

    #[test]
    fn unsplittable_range_returns_server_to_pool() {
        let tiny = Rect::from_coords(0.0, 0.0, 0.0, 10.0);
        // A degenerate strip cannot be split by any strategy.
        let mut s = MatrixServer::with_range(ServerId(1), cfg(), tiny, 5.0);
        let t = SimTime::from_secs(10);
        s.on_game(t, overloaded_report());
        s.on_game(t, overloaded_report());
        let actions = s.on_pool(
            t,
            PoolReply::Grant {
                server: ServerId(9),
                purpose: PoolPurpose::Split,
            },
        );
        assert_eq!(
            actions,
            vec![Action::ToPool(PoolMsg::Release {
                server: ServerId(9)
            })]
        );
        assert_eq!(s.stats().splits, 0);
    }

    #[test]
    fn full_reclaim_handshake() {
        let (mut s1, _, _) = active_pair();
        let t0 = SimTime::from_secs(10);
        // Split to create child 7.
        s1.on_game(t0, overloaded_report());
        s1.on_game(t0, overloaded_report());
        let actions = s1.on_pool(
            t0,
            PoolReply::Grant {
                server: ServerId(7),
                purpose: PoolPurpose::Split,
            },
        );
        let mut child = MatrixServer::new(ServerId(7), cfg());
        for a in &actions {
            if let Action::ToPeer(_, msg) = a {
                child.on_peer(t0, ServerId(1), msg.clone());
            }
        }
        // Child reports low load to the parent.
        let t1 = t0 + matrix_sim::SimDuration::from_secs(5);
        s1.on_peer(
            t1,
            ServerId(7),
            PeerMsg::LoadStatus(LoadSnapshot {
                clients: 10,
                queue_backlog: 0.0,
                has_children: false,
            }),
        );
        // Parent underloaded for 3 consecutive reports.
        let low = || {
            GameToMatrix::Load(LoadReport {
                clients: 20,
                queue_backlog: 0.0,
                positions: vec![],
                telemetry: None,
            })
        };
        s1.on_game(t1, low());
        s1.on_game(t1, low());
        let actions = s1.on_game(t1, low());
        assert_eq!(
            actions,
            vec![Action::ToPeer(
                ServerId(7),
                PeerMsg::ReclaimRequest {
                    parent: ServerId(1)
                }
            )]
        );
        // Child grants, redirecting its clients and releasing itself.
        let granted = child.on_peer(
            t1,
            ServerId(1),
            PeerMsg::ReclaimRequest {
                parent: ServerId(1),
            },
        );
        assert!(granted.iter().any(
            |a| matches!(a, Action::ToGame(MatrixToGame::RedirectAll { to }) if *to == ServerId(1))
        ));
        assert!(granted.iter().any(
            |a| matches!(a, Action::ToPool(PoolMsg::Release { server }) if *server == ServerId(7))
        ));
        assert_eq!(child.lifecycle(), Lifecycle::Retired);
        // Parent merges the range back.
        let grant = granted
            .iter()
            .find_map(|a| match a {
                Action::ToPeer(_, m @ PeerMsg::ReclaimGrant { .. }) => Some(m.clone()),
                _ => None,
            })
            .unwrap();
        let merged_actions = s1.on_peer(t1, ServerId(7), grant);
        assert_eq!(
            s1.range(),
            Some(Rect::from_coords(200.0, 0.0, 400.0, 400.0))
        );
        assert_eq!(s1.children(), &[] as &[ServerId]);
        assert_eq!(s1.stats().reclaims, 1);
        assert!(merged_actions
            .iter()
            .any(|a| matches!(a, Action::ToCoord(CoordMsg::ReclaimOccurred { .. }))));
    }

    #[test]
    fn loaded_child_denies_reclaim() {
        let mut child = MatrixServer::with_range(
            ServerId(7),
            cfg(),
            Rect::from_coords(0.0, 0.0, 100.0, 100.0),
            10.0,
        );
        let over = LoadReport {
            clients: 500,
            queue_backlog: 0.0,
            positions: vec![],
            telemetry: None,
        };
        child.on_game(SimTime::ZERO, GameToMatrix::Load(over.clone()));
        child.on_game(SimTime::ZERO, GameToMatrix::Load(over));
        let actions = child.on_peer(
            SimTime::ZERO,
            ServerId(1),
            PeerMsg::ReclaimRequest {
                parent: ServerId(1),
            },
        );
        assert_eq!(
            actions,
            vec![Action::ToPeer(
                ServerId(1),
                PeerMsg::ReclaimDeny { child: ServerId(7) }
            )]
        );
        assert_eq!(child.lifecycle(), Lifecycle::Active);
    }

    #[test]
    fn where_is_resolved_locally_from_directory() {
        let (mut s1, _, _) = active_pair();
        let actions = s1.on_game(
            SimTime::ZERO,
            GameToMatrix::WhereIs {
                client: ClientId(5),
                point: Point::new(50.0, 50.0),
            },
        );
        assert_eq!(
            actions,
            vec![Action::ToGame(MatrixToGame::Owner {
                client: ClientId(5),
                point: Point::new(50.0, 50.0),
                owner: Some(ServerId(2)),
            })]
        );
        assert_eq!(s1.stats().local_resolves, 1);
    }

    #[test]
    fn where_is_via_coordinator_when_configured() {
        let mut cfg = cfg();
        cfg.resolve_locally = false;
        let mut s = MatrixServer::with_range(ServerId(1), cfg, world(), 50.0);
        let actions = s.on_game(
            SimTime::ZERO,
            GameToMatrix::WhereIs {
                client: ClientId(5),
                point: Point::new(50.0, 50.0),
            },
        );
        assert!(matches!(
            actions.as_slice(),
            [Action::ToCoord(CoordMsg::ResolvePoint { .. })]
        ));
        // The reply completes the query.
        let replies = s.on_coord(
            SimTime::ZERO,
            CoordReply::Resolved {
                client: ClientId(5),
                point: Point::new(50.0, 50.0),
                owner: Some(ServerId(1)),
                set: vec![],
            },
        );
        assert_eq!(
            replies,
            vec![Action::ToGame(MatrixToGame::Owner {
                client: ClientId(5),
                point: Point::new(50.0, 50.0),
                owner: Some(ServerId(1)),
            })]
        );
        assert_eq!(s.stats().coordinator_resolves, 1);
    }

    #[test]
    fn non_proximal_packet_reaches_destination_owner() {
        let (mut s1, _, _) = active_pair();
        // Teleport event landing deep in S2's half.
        let pkt = GamePacket::synthetic(
            ClientId(3),
            SpatialTag::towards(Point::new(390.0, 200.0), Point::new(20.0, 20.0)),
            64,
            0,
        );
        let actions = s1.on_game(SimTime::ZERO, GameToMatrix::Forward(pkt.clone()));
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToPeer(s, PeerMsg::Update(_)) if *s == ServerId(2))));
    }

    #[test]
    fn stale_tables_are_rejected() {
        let (mut s1, _, map) = active_pair();
        assert_eq!(s1.epoch(), 1);
        let overlap = build_overlap(&map, 50.0, Metric::Euclidean);
        let stale = CoordReply::Tables {
            epoch: 0,
            table: overlap.table_for(ServerId(1)).unwrap().clone(),
            extra_tables: Vec::new(),
            map: map.clone(),
        };
        s1.on_coord(SimTime::ZERO, stale);
        assert_eq!(s1.epoch(), 1, "older epoch must not overwrite newer tables");
    }

    #[test]
    fn tick_emits_heartbeat_once_per_interval() {
        let (mut s1, _, _) = active_pair();
        let a1 = s1.on_tick(SimTime::from_millis(100));
        assert!(a1
            .iter()
            .any(|a| matches!(a, Action::ToCoord(CoordMsg::Heartbeat { .. }))));
        let a2 = s1.on_tick(SimTime::from_millis(200));
        assert!(!a2
            .iter()
            .any(|a| matches!(a, Action::ToCoord(CoordMsg::Heartbeat { .. }))));
        let a3 = s1.on_tick(SimTime::from_millis(1200));
        assert!(a3
            .iter()
            .any(|a| matches!(a, Action::ToCoord(CoordMsg::Heartbeat { .. }))));
    }

    #[test]
    fn static_baseline_never_splits() {
        let mut s =
            MatrixServer::with_range(ServerId(1), MatrixConfig::static_baseline(), world(), 50.0);
        for i in 0..50 {
            let actions = s.on_game(SimTime::from_secs(i), overloaded_report());
            assert!(actions.is_empty(), "static server must not adapt");
        }
        assert_eq!(s.stats().splits, 0);
    }

    #[test]
    fn absorb_failed_peer_extends_range() {
        let (mut s1, _, _) = active_pair();
        // S2 ([0,200]) dies; S1 ([200,400]) absorbs it.
        let actions = s1.on_coord(
            SimTime::ZERO,
            CoordReply::AbsorbFailed {
                failed: ServerId(2),
                range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        assert_eq!(s1.range(), Some(world()));
        assert_eq!(s1.stats().absorbs, 1);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::ToGame(MatrixToGame::SetRange { .. }))));
    }

    #[test]
    fn reclaim_from_non_parent_is_denied() {
        let (mut s1, _, _) = active_pair();
        let actions = s1.on_peer(
            SimTime::ZERO,
            ServerId(9),
            PeerMsg::ReclaimRequest {
                parent: ServerId(9),
            },
        );
        assert_eq!(
            actions,
            vec![Action::ToPeer(
                ServerId(9),
                PeerMsg::ReclaimDeny { child: ServerId(1) }
            )]
        );
        assert_eq!(s1.lifecycle(), Lifecycle::Active);
    }

    #[test]
    fn retired_server_drops_everything() {
        let mut child = MatrixServer::new(ServerId(7), cfg());
        child.on_peer(
            SimTime::ZERO,
            ServerId(1),
            PeerMsg::AdoptPartition {
                parent: ServerId(1),
                range: Rect::from_coords(200.0, 0.0, 300.0, 400.0),
                radius: 50.0,
                epoch: 1,
            },
        );
        child.on_peer(
            SimTime::ZERO,
            ServerId(1),
            PeerMsg::ReclaimRequest {
                parent: ServerId(1),
            },
        );
        assert_eq!(child.lifecycle(), Lifecycle::Retired);
        let pkt =
            GamePacket::synthetic(ClientId(1), SpatialTag::at(Point::new(210.0, 200.0)), 64, 0);
        assert!(child
            .on_game(SimTime::ZERO, GameToMatrix::Forward(pkt.clone()))
            .is_empty());
        assert!(child
            .on_peer(SimTime::ZERO, ServerId(2), PeerMsg::Update(pkt))
            .is_empty());
        assert!(child.on_tick(SimTime::from_secs(99)).is_empty());
    }

    #[test]
    fn standby_replication_pairs_through_the_pool() {
        let mut cfg = cfg();
        cfg.standby_replication = true;
        let mut s = MatrixServer::with_range(ServerId(1), cfg, world(), 50.0);
        let t = SimTime::from_millis(100);
        let actions = s.on_tick(t);
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToPool(PoolMsg::Acquire { requester, purpose: PoolPurpose::Standby })
                if *requester == ServerId(1))));
        // A second tick must not double-request while one is in flight.
        assert!(!s
            .on_tick(SimTime::from_millis(200))
            .iter()
            .any(|a| matches!(a, Action::ToPool(_))));
        let actions = s.on_pool(
            t,
            PoolReply::Grant {
                server: ServerId(9),
                purpose: PoolPurpose::Standby,
            },
        );
        assert_eq!(s.standby(), Some(ServerId(9)));
        assert_eq!(s.stats().standbys_acquired, 1);
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToPeer(p, PeerMsg::StandbyAssign { primary, .. })
                if *p == ServerId(9) && *primary == ServerId(1))));
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToCoord(CoordMsg::StandbyAssigned { primary, standby })
                if *primary == ServerId(1) && *standby == ServerId(9))));
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToGame(MatrixToGame::SetStandby { standby }) if *standby == ServerId(9))));
    }

    #[test]
    fn standby_denial_backs_off_a_cooldown() {
        let mut cfg = cfg();
        cfg.standby_replication = true;
        let mut s = MatrixServer::with_range(ServerId(1), cfg, world(), 50.0);
        let t = SimTime::from_millis(100);
        s.on_tick(t);
        s.on_pool(
            t,
            PoolReply::Denied {
                purpose: PoolPurpose::Standby,
            },
        );
        assert_eq!(s.stats().pool_denied, 1);
        // Inside the cooldown: no retry.
        assert!(!s
            .on_tick(t + matrix_sim::SimDuration::from_millis(500))
            .iter()
            .any(|a| matches!(a, Action::ToPool(_))));
        // After it: the pairing is retried.
        assert!(s
            .on_tick(t + matrix_sim::SimDuration::from_secs(2))
            .iter()
            .any(|a| matches!(
                a,
                Action::ToPool(PoolMsg::Acquire {
                    purpose: PoolPurpose::Standby,
                    ..
                })
            )));
    }

    #[test]
    fn assigned_standby_heartbeats_and_relays_replica_traffic() {
        let mut s = MatrixServer::new(ServerId(9), cfg());
        let actions = s.on_peer(
            SimTime::ZERO,
            ServerId(1),
            PeerMsg::StandbyAssign {
                primary: ServerId(1),
                range: world(),
                radius: 50.0,
            },
        );
        assert_eq!(s.standby_for(), Some(ServerId(1)));
        assert_eq!(s.lifecycle(), Lifecycle::Idle, "standing by is not active");
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::ToGame(MatrixToGame::ReplicaReset))));
        // Idle standbys heartbeat so their own death is detectable.
        let ticked = s.on_tick(SimTime::from_secs(2));
        assert!(ticked
            .iter()
            .any(|a| matches!(a, Action::ToCoord(CoordMsg::Heartbeat { .. }))));
        // Replica batches route to the co-located game node; acks route
        // back to the primary.
        let batch = crate::messages::ReplicaBatch {
            seq: 1,
            payload: crate::ReplicaPayload::Ops(Vec::new()),
        };
        let actions = s.on_peer(
            SimTime::from_secs(2),
            ServerId(1),
            PeerMsg::Replica {
                from: ServerId(1),
                batch: batch.clone(),
            },
        );
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::ToGame(MatrixToGame::ReplicaBatch { .. }))));
        let actions = s.on_game(
            SimTime::from_secs(2),
            GameToMatrix::ReplicaAck {
                to: ServerId(1),
                seq: 1,
                resync: true,
            },
        );
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToPeer(p, PeerMsg::ReplicaAck { seq: 1, resync: true, .. })
                if *p == ServerId(1))));
    }

    #[test]
    fn promotion_activates_an_idle_standby() {
        let mut s = MatrixServer::new(ServerId(9), cfg());
        s.on_peer(
            SimTime::ZERO,
            ServerId(1),
            PeerMsg::StandbyAssign {
                primary: ServerId(1),
                range: world(),
                radius: 50.0,
            },
        );
        let actions = s.on_coord(
            SimTime::from_secs(6),
            CoordReply::Promote {
                failed: ServerId(1),
                range: world(),
                radius: 50.0,
            },
        );
        assert_eq!(s.lifecycle(), Lifecycle::Active);
        assert_eq!(s.range(), Some(world()));
        assert_eq!(s.standby_for(), None);
        assert_eq!(s.stats().promotions, 1);
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToGame(MatrixToGame::Promote { range, radius })
                if *range == world() && *radius == 50.0)));
        // A duplicate promotion from a stale sweep is ignored.
        assert!(s
            .on_coord(
                SimTime::from_secs(7),
                CoordReply::Promote {
                    failed: ServerId(1),
                    range: world(),
                    radius: 50.0,
                },
            )
            .is_empty());
    }

    #[test]
    fn retirement_releases_the_standby_pairing() {
        let mut cfg = cfg();
        cfg.standby_replication = true;
        let mut child = MatrixServer::new(ServerId(7), cfg);
        child.on_peer(
            SimTime::ZERO,
            ServerId(1),
            PeerMsg::AdoptPartition {
                parent: ServerId(1),
                range: Rect::from_coords(200.0, 0.0, 300.0, 400.0),
                radius: 50.0,
                epoch: 1,
            },
        );
        child.on_tick(SimTime::from_millis(100));
        child.on_pool(
            SimTime::from_millis(200),
            PoolReply::Grant {
                server: ServerId(9),
                purpose: PoolPurpose::Standby,
            },
        );
        assert_eq!(child.standby(), Some(ServerId(9)));
        let actions = child.on_peer(
            SimTime::from_secs(10),
            ServerId(1),
            PeerMsg::ReclaimRequest {
                parent: ServerId(1),
            },
        );
        assert_eq!(child.lifecycle(), Lifecycle::Retired);
        assert_eq!(child.standby(), None);
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToPeer(p, PeerMsg::StandbyRelease { primary })
                if *p == ServerId(9) && *primary == ServerId(7))));
        assert!(actions.iter().any(|a| matches!(a,
            Action::ToPool(PoolMsg::Release { server }) if *server == ServerId(9))));
    }

    #[test]
    fn standby_lost_triggers_repair_and_repairing() {
        let mut cfg = cfg();
        cfg.standby_replication = true;
        let mut s = MatrixServer::with_range(ServerId(1), cfg, world(), 50.0);
        s.on_tick(SimTime::from_millis(100));
        s.on_pool(
            SimTime::from_millis(200),
            PoolReply::Grant {
                server: ServerId(9),
                purpose: PoolPurpose::Standby,
            },
        );
        let actions = s.on_coord(
            SimTime::from_secs(10),
            CoordReply::StandbyLost {
                standby: ServerId(9),
            },
        );
        assert_eq!(s.standby(), None);
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::ToGame(MatrixToGame::ReplicaReset))));
        // The next tick re-pairs.
        assert!(s.on_tick(SimTime::from_secs(11)).iter().any(|a| matches!(
            a,
            Action::ToPool(PoolMsg::Acquire {
                purpose: PoolPurpose::Standby,
                ..
            })
        )));
    }

    #[test]
    fn radius_override_routes_exactly() {
        let (mut s1, _, _) = active_pair();
        // Origin 120 from the neighbour: the primary radius (50) would not
        // reach it, an override of 150 must.
        let pkt = GamePacket {
            client: Some(ClientId(1)),
            tag: SpatialTag::at(Point::new(320.0, 200.0)).with_radius(150.0),
            payload: bytes::Bytes::from_static(&[0u8; 8]),
            seq: 0,
        };
        let actions = s1.on_game(SimTime::ZERO, GameToMatrix::Forward(pkt));
        assert!(actions
            .iter()
            .any(|a| matches!(a, Action::ToPeer(s, _) if *s == ServerId(2))));
        assert_eq!(s1.stats().override_routes, 1);
    }
}
