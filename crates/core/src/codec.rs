//! Hand-written JSON-lines codec for the client-facing protocol.
//!
//! The TCP gateway frames [`ClientToGame`] / [`GameToClient`] as one JSON
//! object per line. The codec is written by hand (rather than through a
//! serde backend) so the workspace builds fully offline; the format is
//! ordinary JSON, so any client language can speak it.
//!
//! Wire shapes:
//!
//! ```text
//! client → game   {"t":"join","x":1.0,"y":2.0,"state":64}
//!                 {"t":"move","x":1.0,"y":2.0}
//!                 {"t":"action","x":1.0,"y":2.0,"bytes":90}
//!                 {"t":"leave"}
//!                 {"t":"trace-ack","ring":0,"lat":1500,"stale":2500}
//! game → client   {"t":"joined","server":3}
//!                 {"t":"ack","seq":17}
//!                 {"t":"update","x":1.0,"y":2.0,"bytes":90}
//!                 {"t":"batch","updates":[[1.0,2.0,90,7],["d",0.5,-0.25,32,7]]}
//!                 {"t":"switch","to":4}
//! ```
//!
//! Batch items come in two shapes: an absolute keyframe
//! `[x, y, bytes, entity?, ring?, vx?, vy?]` and a delta
//! `["d", dx, dy, bytes, entity?, ring?, vx?, vy?]` whose origin is the
//! previous item's reconstructed origin offset by `(dx, dy)` (the first
//! item of a batch chains off the last origin of the previous batch;
//! see [`reconstruct_updates`](crate::reconstruct_updates)). The
//! trailing source-entity and vision-ring tags are omitted when zero
//! (anonymous item / near ring) and tolerated as absent on decode, so
//! pre-entity and pre-ring frames still parse; a non-zero ring forces
//! the entity tag to be present as its positional placeholder. The
//! dead-reckoning velocity `vx, vy` (world units/second) travels as a
//! trailing *pair* — both present or both absent — and forces the
//! entity and ring placeholders; a zero velocity is omitted, keeping
//! prediction-off frames byte-identical to pre-prediction ones.
//!
//! Sampled causal traces ride a batch as a separate optional `"tr"`
//! field — `[[item_index, origin, seq, ingest_us, stale_us], …]`, one
//! entry per traced item — so the item arrays themselves never change
//! shape and untraced batches stay byte-identical to pre-trace frames.
//! The client echoes a traced item's measured latency back as the
//! `trace-ack` frame above.
//!
//! The replication layer adds three frames, all carrying an explicit
//! format version (`"v"`) so incompatible peers fail loudly instead of
//! mis-decoding state they are about to adopt a region from:
//!
//! The telemetry plane adds a versioned stats query/reply pair spoken on
//! the runtime's stats endpoint (legacy frames above are untouched):
//!
//! ```text
//! stats query     {"t":"stats","v":1,"fmt":"json"}        ("json" | "prom")
//! stats reply     {"t":"stats-reply","v":1,"nodes":[[3,{"counters":[["joins",5]],
//!                  "hists":[["flush_us",10,123.5,1.0,50.0,[[96,3],[97,7]]]],
//!                  "dropped":0,"seen":7}]]}
//! ```
//!
//! ```text
//! region snapshot {"t":"snapshot","v":1,"seq":9,"ready":true,
//!                  "range":[0.0,0.0,400.0,400.0],"radius":50.0,
//!                  "flushed_us":120000,
//!                  "clients":[[7,1.0,2.0,64]],
//!                  "streams":[[7,1.0,2.0,3]],
//!                  "pending":[[7,[[1.0,2.0,32,9]]]],
//!                  "bases":[[7,[[9,1.0,2.0,12.5,-3.0,4.2]]]]}   (optional)
//! replica batch   {"t":"replica","v":1,"seq":4,"snapshot":{...}}
//!                 {"t":"replica","v":1,"seq":5,"ops":[["j",7,1.0,2.0,64],
//!                  ["m",7,1.5,2.0],["l",7],["r",0.0,0.0,400.0,400.0,50.0]]}
//! replica ack     {"t":"replica-ack","v":1,"seq":5,"resync":false}
//! ```
//!
//! Floats are emitted with Rust's shortest round-trip formatting, so
//! decode(encode(m)) == m exactly.

use crate::messages::{
    BatchItem, ClientToGame, DeltaItem, GameToClient, LoadReport, RegionSnapshot, ReplicaBatch,
    ReplicaOp, UpdateItem,
};
use crate::packet::ClientId;
use matrix_geometry::{Point, Rect, ServerId};
use matrix_replication::{
    PendingUpdate, PredictBasis, ReplicaPayload, SessionState, StreamBase, TunerState,
};
use matrix_sim::SimTime;
use matrix_telemetry::{HistSnapshot, TelemetrySnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A malformed frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecError {
    /// What went wrong, for diagnostics.
    pub reason: String,
}

impl CodecError {
    pub(crate) fn new(reason: impl Into<String>) -> CodecError {
        CodecError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad frame: {}", self.reason)
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Minimal JSON value model
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset the protocol uses).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn err(&self, what: &str) -> CodecError {
        CodecError::new(format!("{what} at byte {}", self.at))
    }

    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), CodecError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, CodecError> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Value, CodecError> {
        let start = self.at;
        while self.at < self.bytes.len()
            && matches!(
                self.bytes[self.at],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("non-utf8 number"))?;
        let value = text.parse::<f64>().map_err(|_| self.err("bad number"))?;
        // JSON has no Inf/NaN; `"1e999".parse::<f64>()` yields infinity,
        // which would round-trip into frames no JSON parser accepts —
        // reject it at the boundary instead of poisoning later encodes.
        if !value.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Value::Num(value))
    }

    fn string(&mut self) -> Result<String, CodecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.at)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.at)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let tail = &self.bytes[self.at - 1..];
                    let text = std::str::from_utf8(tail).map_err(|_| self.err("non-utf8"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(ch);
                    self.at += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, CodecError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, CodecError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse(text: &str) -> Result<BTreeMap<String, Value>, CodecError> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    match v {
        Value::Obj(map) => Ok(map),
        _ => Err(CodecError::new("frame must be a JSON object")),
    }
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn field<'v>(obj: &'v BTreeMap<String, Value>, key: &str) -> Result<&'v Value, CodecError> {
    obj.get(key)
        .ok_or_else(|| CodecError::new(format!("missing field '{key}'")))
}

fn num(obj: &BTreeMap<String, Value>, key: &str) -> Result<f64, CodecError> {
    field(obj, key)?
        .as_num()
        .ok_or_else(|| CodecError::new(format!("field '{key}' must be a number")))
}

fn uint(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, CodecError> {
    let n = num(obj, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(CodecError::new(format!(
            "field '{key}' must be a non-negative integer"
        )));
    }
    Ok(n as u64)
}

fn point(obj: &BTreeMap<String, Value>) -> Result<Point, CodecError> {
    Ok(Point::new(num(obj, "x")?, num(obj, "y")?))
}

fn push_f64(out: &mut String, v: f64) {
    // An integral value needs no fraction marker in JSON: `84` parses
    // back to the same f64 as `84.0`, two bytes shorter — and snapped
    // wire values (origin/velocity lattices) are integral often enough
    // for this to matter on the hot batch path. `{:.0}` keeps the sign
    // of `-0.0` so even that round-trips. Everything else takes `{:?}`,
    // the shortest representation that round-trips.
    if v.is_finite() && v.fract() == 0.0 {
        let _ = write!(out, "{v:.0}");
    } else {
        let _ = write!(out, "{v:?}");
    }
}

// ---------------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------------

/// Encodes a client→server message as a single JSON line (no newline).
pub fn encode_client_to_game(msg: &ClientToGame) -> String {
    let mut s = String::with_capacity(64);
    match msg {
        ClientToGame::Join { pos, state_bytes } => {
            s.push_str("{\"t\":\"join\",\"x\":");
            push_f64(&mut s, pos.x);
            s.push_str(",\"y\":");
            push_f64(&mut s, pos.y);
            let _ = write!(s, ",\"state\":{state_bytes}}}");
        }
        ClientToGame::Move { pos } => {
            s.push_str("{\"t\":\"move\",\"x\":");
            push_f64(&mut s, pos.x);
            s.push_str(",\"y\":");
            push_f64(&mut s, pos.y);
            s.push('}');
        }
        ClientToGame::Action { pos, payload_bytes } => {
            s.push_str("{\"t\":\"action\",\"x\":");
            push_f64(&mut s, pos.x);
            s.push_str(",\"y\":");
            push_f64(&mut s, pos.y);
            let _ = write!(s, ",\"bytes\":{payload_bytes}}}");
        }
        ClientToGame::Leave => s.push_str("{\"t\":\"leave\"}"),
        ClientToGame::TraceAck {
            ring,
            latency_us,
            staleness_us,
        } => {
            let _ = write!(
                s,
                "{{\"t\":\"trace-ack\",\"ring\":{ring},\"lat\":{latency_us},\"stale\":{staleness_us}}}"
            );
        }
    }
    s
}

/// Decodes one client→server JSON line.
///
/// # Errors
///
/// [`CodecError`] when the frame is not valid JSON or not a known message.
pub fn decode_client_to_game(line: &str) -> Result<ClientToGame, CodecError> {
    let obj = parse(line)?;
    let tag = match field(&obj, "t")? {
        Value::Str(t) => t.as_str(),
        _ => return Err(CodecError::new("field 't' must be a string")),
    };
    match tag {
        "join" => Ok(ClientToGame::Join {
            pos: point(&obj)?,
            state_bytes: uint(&obj, "state")?,
        }),
        "move" => Ok(ClientToGame::Move { pos: point(&obj)? }),
        "action" => Ok(ClientToGame::Action {
            pos: point(&obj)?,
            payload_bytes: uint(&obj, "bytes")? as usize,
        }),
        "leave" => Ok(ClientToGame::Leave),
        "trace-ack" => Ok(ClientToGame::TraceAck {
            ring: uint(&obj, "ring")? as u8,
            latency_us: uint(&obj, "lat")?,
            staleness_us: uint(&obj, "stale")?,
        }),
        other => Err(CodecError::new(format!("unknown client message '{other}'"))),
    }
}

/// Encodes a server→client message as a single JSON line (no newline).
pub fn encode_game_to_client(msg: &GameToClient) -> String {
    let mut s = String::with_capacity(64);
    match msg {
        GameToClient::Joined { server } => {
            let _ = write!(s, "{{\"t\":\"joined\",\"server\":{}}}", server.0);
        }
        GameToClient::Ack { seq } => {
            let _ = write!(s, "{{\"t\":\"ack\",\"seq\":{seq}}}");
        }
        GameToClient::Update {
            origin,
            payload_bytes,
        } => {
            s.push_str("{\"t\":\"update\",\"x\":");
            push_f64(&mut s, origin.x);
            s.push_str(",\"y\":");
            push_f64(&mut s, origin.y);
            let _ = write!(s, ",\"bytes\":{payload_bytes}}}");
        }
        GameToClient::UpdateBatch { updates } => {
            s.push_str("{\"t\":\"batch\",\"updates\":[");
            for (i, item) in updates.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                match item {
                    BatchItem::Absolute(u) => {
                        let vel = u.has_velocity();
                        s.push('[');
                        push_f64(&mut s, u.origin.x);
                        s.push(',');
                        push_f64(&mut s, u.origin.y);
                        let _ = write!(s, ",{}", u.payload_bytes);
                        if u.entity != 0 || u.ring != 0 || vel {
                            let _ = write!(s, ",{}", u.entity);
                        }
                        if u.ring != 0 || vel {
                            let _ = write!(s, ",{}", u.ring);
                        }
                        if vel {
                            s.push(',');
                            push_f64(&mut s, u.vx);
                            s.push(',');
                            push_f64(&mut s, u.vy);
                        }
                        s.push(']');
                    }
                    BatchItem::Delta(d) => {
                        let vel = d.has_velocity();
                        s.push_str("[\"d\",");
                        push_f64(&mut s, d.dx);
                        s.push(',');
                        push_f64(&mut s, d.dy);
                        let _ = write!(s, ",{}", d.payload_bytes);
                        if d.entity != 0 || d.ring != 0 || vel {
                            let _ = write!(s, ",{}", d.entity);
                        }
                        if d.ring != 0 || vel {
                            let _ = write!(s, ",{}", d.ring);
                        }
                        if vel {
                            s.push(',');
                            push_f64(&mut s, d.vx);
                            s.push(',');
                            push_f64(&mut s, d.vy);
                        }
                        s.push(']');
                    }
                }
            }
            s.push(']');
            // Sampled causal traces, keyed by item index so the item
            // arrays stay untouched (untraced batches are byte-identical
            // to pre-trace frames).
            if updates.iter().any(|u| u.trace().is_some()) {
                s.push_str(",\"tr\":[");
                let mut first = true;
                for (i, item) in updates.iter().enumerate() {
                    if let Some(tag) = item.trace() {
                        if !first {
                            s.push(',');
                        }
                        first = false;
                        let _ = write!(
                            s,
                            "[{i},{},{},{},{}]",
                            tag.origin, tag.seq, tag.ingest_us, tag.stale_us
                        );
                    }
                }
                s.push(']');
            }
            s.push('}');
        }
        GameToClient::SwitchServer { to } => {
            let _ = write!(s, "{{\"t\":\"switch\",\"to\":{}}}", to.0);
        }
    }
    s
}

/// Decodes one server→client JSON line.
///
/// # Errors
///
/// [`CodecError`] when the frame is not valid JSON or not a known message.
pub fn decode_game_to_client(line: &str) -> Result<GameToClient, CodecError> {
    let obj = parse(line)?;
    let tag = match field(&obj, "t")? {
        Value::Str(t) => t.as_str(),
        _ => return Err(CodecError::new("field 't' must be a string")),
    };
    match tag {
        "joined" => Ok(GameToClient::Joined {
            server: ServerId(uint(&obj, "server")? as u32),
        }),
        "ack" => Ok(GameToClient::Ack {
            seq: uint(&obj, "seq")?,
        }),
        "update" => Ok(GameToClient::Update {
            origin: point(&obj)?,
            payload_bytes: uint(&obj, "bytes")? as usize,
        }),
        "batch" => {
            let items = match field(&obj, "updates")? {
                Value::Arr(items) => items,
                _ => return Err(CodecError::new("field 'updates' must be an array")),
            };
            let mut updates = Vec::with_capacity(items.len());
            for item in items {
                let Value::Arr(fields) = item else {
                    return Err(CodecError::new(
                        "batch item must be [x, y, bytes] or [\"d\", dx, dy, bytes]",
                    ));
                };
                let num_at = |i: usize| {
                    fields
                        .get(i)
                        .and_then(Value::as_num)
                        .ok_or_else(|| CodecError::new("batch item fields must be numbers"))
                };
                match fields.first() {
                    Some(Value::Str(tag)) if tag == "d" => {
                        // 4–6 elements, or 8 with the trailing velocity
                        // pair (7 would be a dangling vx).
                        if !(4..=6).contains(&fields.len()) && fields.len() != 8 {
                            return Err(CodecError::new(
                                "delta batch item must have 4 to 6 or 8 elements",
                            ));
                        }
                        let entity = if fields.len() >= 5 {
                            num_at(4)? as u64
                        } else {
                            0
                        };
                        let ring = if fields.len() >= 6 {
                            num_at(5)? as u8
                        } else {
                            0
                        };
                        let (vx, vy) = if fields.len() == 8 {
                            (num_at(6)?, num_at(7)?)
                        } else {
                            (0.0, 0.0)
                        };
                        updates.push(BatchItem::Delta(DeltaItem {
                            dx: num_at(1)?,
                            dy: num_at(2)?,
                            payload_bytes: num_at(3)? as usize,
                            entity,
                            ring,
                            vx,
                            vy,
                            trace: None,
                        }));
                    }
                    Some(Value::Str(_)) => {
                        return Err(CodecError::new("unknown batch item tag"));
                    }
                    _ => {
                        // 3–5 elements, or 7 with the trailing velocity
                        // pair (6 would be a dangling vx).
                        if !(3..=5).contains(&fields.len()) && fields.len() != 7 {
                            return Err(CodecError::new(
                                "absolute batch item must have 3 to 5 or 7 elements",
                            ));
                        }
                        let entity = if fields.len() >= 4 {
                            num_at(3)? as u64
                        } else {
                            0
                        };
                        let ring = if fields.len() >= 5 {
                            num_at(4)? as u8
                        } else {
                            0
                        };
                        let (vx, vy) = if fields.len() == 7 {
                            (num_at(5)?, num_at(6)?)
                        } else {
                            (0.0, 0.0)
                        };
                        updates.push(BatchItem::Absolute(UpdateItem {
                            origin: Point::new(num_at(0)?, num_at(1)?),
                            payload_bytes: num_at(2)? as usize,
                            entity,
                            ring,
                            vx,
                            vy,
                            trace: None,
                        }));
                    }
                }
            }
            // Optional sampled trace tags, keyed by item index.
            if let Some(value) = obj.get("tr") {
                let Value::Arr(entries) = value else {
                    return Err(CodecError::new("field 'tr' must be an array"));
                };
                for entry in entries {
                    let Value::Arr(fields) = entry else {
                        return Err(CodecError::new("trace entry must be an array"));
                    };
                    let f = nums(fields, "trace entry")?;
                    if f.len() != 5 {
                        return Err(CodecError::new(
                            "trace entry must be [index, origin, seq, ingest_us, stale_us]",
                        ));
                    }
                    let idx = f[0] as usize;
                    let tag = matrix_telemetry::TraceTag {
                        origin: f[1] as u32,
                        seq: f[2] as u32,
                        ingest_us: f[3] as u64,
                        stale_us: f[4] as u64,
                    };
                    match updates.get_mut(idx) {
                        Some(BatchItem::Absolute(u)) => u.trace = Some(tag),
                        Some(BatchItem::Delta(d)) => d.trace = Some(tag),
                        None => {
                            return Err(CodecError::new("trace entry index out of range"));
                        }
                    }
                }
            }
            Ok(GameToClient::UpdateBatch { updates })
        }
        "switch" => Ok(GameToClient::SwitchServer {
            to: ServerId(uint(&obj, "to")? as u32),
        }),
        other => Err(CodecError::new(format!("unknown server message '{other}'"))),
    }
}

// ---------------------------------------------------------------------------
// Replication frames (versioned)
// ---------------------------------------------------------------------------

fn bool_field(obj: &BTreeMap<String, Value>, key: &str) -> Result<bool, CodecError> {
    match field(obj, key)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(CodecError::new(format!("field '{key}' must be a boolean"))),
    }
}

fn arr_field<'v>(obj: &'v BTreeMap<String, Value>, key: &str) -> Result<&'v [Value], CodecError> {
    match field(obj, key)? {
        Value::Arr(items) => Ok(items),
        _ => Err(CodecError::new(format!("field '{key}' must be an array"))),
    }
}

fn check_version(obj: &BTreeMap<String, Value>) -> Result<(), CodecError> {
    let v = uint(obj, "v")? as u32;
    if v != RegionSnapshot::VERSION {
        return Err(CodecError::new(format!(
            "unsupported replication format version {v} (expected {})",
            RegionSnapshot::VERSION
        )));
    }
    Ok(())
}

fn nums(fields: &[Value], what: &str) -> Result<Vec<f64>, CodecError> {
    fields
        .iter()
        .map(|v| {
            v.as_num()
                .ok_or_else(|| CodecError::new(format!("{what} fields must be numbers")))
        })
        .collect()
}

fn push_rect(s: &mut String, r: &Rect) {
    s.push('[');
    push_f64(s, r.min().x);
    s.push(',');
    push_f64(s, r.min().y);
    s.push(',');
    push_f64(s, r.max().x);
    s.push(',');
    push_f64(s, r.max().y);
    s.push(']');
}

fn rect_from(fields: &[f64]) -> Rect {
    Rect::from_coords(fields[0], fields[1], fields[2], fields[3])
}

fn push_snapshot_body(s: &mut String, snap: &RegionSnapshot) {
    let _ = write!(
        s,
        "{{\"t\":\"snapshot\",\"v\":{},\"seq\":{},\"ready\":{},\"range\":",
        RegionSnapshot::VERSION,
        snap.seq,
        snap.ready
    );
    match &snap.range {
        Some(r) => push_rect(s, r),
        None => s.push_str("null"),
    }
    s.push_str(",\"radius\":");
    push_f64(s, snap.radius);
    let _ = write!(s, ",\"flushed_us\":{}", snap.last_flush.as_micros());
    if let Some(t) = &snap.tuner {
        // Optional, omitted when the primary runs a static grid: old
        // decoders never see it, new decoders tolerate its absence.
        // The third element (the in-flight streak's target) is itself
        // omitted when idle.
        if t.pending != 0 {
            let _ = write!(s, ",\"tuner\":[{},{},{}]", t.cells, t.streak, t.pending);
        } else {
            let _ = write!(s, ",\"tuner\":[{},{}]", t.cells, t.streak);
        }
    }
    s.push_str(",\"clients\":[");
    for (i, (id, c)) in snap.clients.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{},", id.0);
        push_f64(s, c.pos.x);
        s.push(',');
        push_f64(s, c.pos.y);
        let _ = write!(s, ",{}]", c.state_bytes);
    }
    s.push_str("],\"streams\":[");
    for (i, (id, st)) in snap.streams.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{},", id.0);
        push_f64(s, st.base.x);
        s.push(',');
        push_f64(s, st.base.y);
        let _ = write!(s, ",{}]", st.countdown);
    }
    s.push_str("],\"pending\":[");
    for (i, (id, items)) in snap.pending.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{},[", id.0);
        for (j, u) in items.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            let vel = u.vx != 0.0 || u.vy != 0.0;
            let traced = u.trace.is_some();
            s.push('[');
            push_f64(s, u.origin.x);
            s.push(',');
            push_f64(s, u.origin.y);
            let _ = write!(s, ",{},{}", u.payload_bytes, u.entity);
            if u.ring != 0 || vel || traced {
                let _ = write!(s, ",{}", u.ring);
            }
            if vel || traced {
                s.push(',');
                push_f64(s, u.vx);
                s.push(',');
                push_f64(s, u.vy);
            }
            // A trace tag extends the item to 11 positional numbers,
            // forcing the ring and velocity placeholders; untraced items
            // stay byte-identical to pre-trace frames.
            if let Some(tag) = u.trace {
                let _ = write!(
                    s,
                    ",{},{},{},{}",
                    tag.origin, tag.seq, tag.ingest_us, tag.stale_us
                );
            }
            s.push(']');
        }
        s.push_str("]]");
    }
    s.push(']');
    // Dead-reckoning bases, omitted when prediction is off: frames from
    // (and for) prediction-free peers stay byte-identical.
    if !snap.bases.is_empty() {
        s.push_str(",\"bases\":[");
        for (i, (id, bases)) in snap.bases.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{},[", id.0);
            for (j, b) in bases.iter().enumerate() {
                if j > 0 {
                    s.push(',');
                }
                let _ = write!(s, "[{},", b.entity);
                push_f64(s, b.pos.x);
                s.push(',');
                push_f64(s, b.pos.y);
                s.push(',');
                push_f64(s, b.vx);
                s.push(',');
                push_f64(s, b.vy);
                s.push(',');
                push_f64(s, b.time_secs);
                s.push(']');
            }
            s.push_str("]]");
        }
        s.push(']');
    }
    s.push('}');
}

fn snapshot_from_obj(obj: &BTreeMap<String, Value>) -> Result<RegionSnapshot, CodecError> {
    check_version(obj)?;
    let range = match field(obj, "range")? {
        Value::Null => None,
        Value::Arr(fields) if fields.len() == 4 => Some(rect_from(&nums(fields, "range")?)),
        _ => return Err(CodecError::new("field 'range' must be null or 4 numbers")),
    };
    let tuner = match obj.get("tuner") {
        None => None,
        Some(Value::Arr(fields)) if fields.len() == 2 || fields.len() == 3 => {
            let f = nums(fields, "tuner")?;
            Some(TunerState {
                cells: f[0] as u32,
                streak: f[1] as u32,
                pending: f.get(2).copied().unwrap_or(0.0) as u32,
            })
        }
        Some(_) => {
            return Err(CodecError::new(
                "field 'tuner' must be [cells, streak, pending?]",
            ))
        }
    };
    let mut snap = RegionSnapshot {
        range,
        radius: num(obj, "radius")?,
        ready: bool_field(obj, "ready")?,
        seq: uint(obj, "seq")?,
        last_flush: SimTime::from_micros(uint(obj, "flushed_us")?),
        tuner,
        ..RegionSnapshot::default()
    };
    for entry in arr_field(obj, "clients")? {
        let Value::Arr(fields) = entry else {
            return Err(CodecError::new("client entry must be an array"));
        };
        let f = nums(fields, "client")?;
        if f.len() != 4 {
            return Err(CodecError::new("client entry must be [id, x, y, state]"));
        }
        snap.clients.insert(
            ClientId(f[0] as u64),
            SessionState {
                pos: Point::new(f[1], f[2]),
                state_bytes: f[3] as u64,
            },
        );
    }
    for entry in arr_field(obj, "streams")? {
        let Value::Arr(fields) = entry else {
            return Err(CodecError::new("stream entry must be an array"));
        };
        let f = nums(fields, "stream")?;
        if f.len() != 4 {
            return Err(CodecError::new(
                "stream entry must be [id, x, y, countdown]",
            ));
        }
        snap.streams.insert(
            ClientId(f[0] as u64),
            StreamBase {
                base: Point::new(f[1], f[2]),
                countdown: f[3] as u32,
            },
        );
    }
    for entry in arr_field(obj, "pending")? {
        let Value::Arr(fields) = entry else {
            return Err(CodecError::new("pending entry must be an array"));
        };
        let (Some(id), Some(Value::Arr(items)), 2) = (
            fields.first().and_then(Value::as_num),
            fields.get(1),
            fields.len(),
        ) else {
            return Err(CodecError::new("pending entry must be [id, [items]]"));
        };
        let mut updates = Vec::with_capacity(items.len());
        for item in items {
            let Value::Arr(fields) = item else {
                return Err(CodecError::new("pending item must be an array"));
            };
            let f = nums(fields, "pending item")?;
            // 4–5 numbers, 7 with the trailing velocity pair, or 11 with
            // a trace tag (which forces the ring/velocity placeholders).
            if f.len() != 4 && f.len() != 5 && f.len() != 7 && f.len() != 11 {
                return Err(CodecError::new(
                    "pending item must be [x, y, bytes, entity, ring?, vx?, vy?, trace…?]",
                ));
            }
            let trace = (f.len() == 11).then(|| matrix_telemetry::TraceTag {
                origin: f[7] as u32,
                seq: f[8] as u32,
                ingest_us: f[9] as u64,
                stale_us: f[10] as u64,
            });
            updates.push(PendingUpdate {
                origin: Point::new(f[0], f[1]),
                payload_bytes: f[2] as usize,
                entity: f[3] as u64,
                ring: f.get(4).copied().unwrap_or(0.0) as u8,
                vx: f.get(5).copied().unwrap_or(0.0),
                vy: f.get(6).copied().unwrap_or(0.0),
                trace,
            });
        }
        snap.pending.insert(ClientId(id as u64), updates);
    }
    if let Some(value) = obj.get("bases") {
        let Value::Arr(entries) = value else {
            return Err(CodecError::new("field 'bases' must be an array"));
        };
        for entry in entries {
            let Value::Arr(fields) = entry else {
                return Err(CodecError::new("bases entry must be an array"));
            };
            let (Some(id), Some(Value::Arr(items)), 2) = (
                fields.first().and_then(Value::as_num),
                fields.get(1),
                fields.len(),
            ) else {
                return Err(CodecError::new("bases entry must be [id, [bases]]"));
            };
            let mut bases = Vec::with_capacity(items.len());
            for item in items {
                let Value::Arr(fields) = item else {
                    return Err(CodecError::new("basis must be an array"));
                };
                let f = nums(fields, "basis")?;
                if f.len() != 6 {
                    return Err(CodecError::new("basis must be [entity, x, y, vx, vy, t]"));
                }
                bases.push(PredictBasis {
                    entity: f[0] as u64,
                    pos: Point::new(f[1], f[2]),
                    vx: f[3],
                    vy: f[4],
                    time_secs: f[5],
                });
            }
            snap.bases.insert(ClientId(id as u64), bases);
        }
    }
    Ok(snap)
}

/// Encodes a region snapshot as a single JSON line (no newline),
/// carrying the snapshot format version.
pub fn encode_region_snapshot(snap: &RegionSnapshot) -> String {
    let mut s = String::with_capacity(128 + snap.client_count() * 48);
    push_snapshot_body(&mut s, snap);
    s
}

/// Decodes one region-snapshot JSON line.
///
/// # Errors
///
/// [`CodecError`] when the frame is malformed or carries an unsupported
/// format version.
pub fn decode_region_snapshot(line: &str) -> Result<RegionSnapshot, CodecError> {
    let obj = parse(line)?;
    match field(&obj, "t")? {
        Value::Str(t) if t == "snapshot" => snapshot_from_obj(&obj),
        _ => Err(CodecError::new("expected a snapshot frame")),
    }
}

/// Encodes a replication batch (snapshot or ops) as a single JSON line
/// (no newline).
pub fn encode_replica_batch(batch: &ReplicaBatch) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"t\":\"replica\",\"v\":{},\"seq\":{},",
        RegionSnapshot::VERSION,
        batch.seq
    );
    match &batch.payload {
        ReplicaPayload::Full(snap) => {
            s.push_str("\"snapshot\":");
            push_snapshot_body(&mut s, snap);
        }
        ReplicaPayload::Ops(ops) => {
            s.push_str("\"ops\":[");
            for (i, op) in ops.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                match *op {
                    ReplicaOp::Join {
                        client,
                        pos,
                        state_bytes,
                    } => {
                        let _ = write!(s, "[\"j\",{},", client.0);
                        push_f64(&mut s, pos.x);
                        s.push(',');
                        push_f64(&mut s, pos.y);
                        let _ = write!(s, ",{state_bytes}]");
                    }
                    ReplicaOp::Move { client, pos } => {
                        let _ = write!(s, "[\"m\",{},", client.0);
                        push_f64(&mut s, pos.x);
                        s.push(',');
                        push_f64(&mut s, pos.y);
                        s.push(']');
                    }
                    ReplicaOp::Leave { client } => {
                        let _ = write!(s, "[\"l\",{}]", client.0);
                    }
                    ReplicaOp::Range { range, radius } => {
                        s.push_str("[\"r\",");
                        push_f64(&mut s, range.min().x);
                        s.push(',');
                        push_f64(&mut s, range.min().y);
                        s.push(',');
                        push_f64(&mut s, range.max().x);
                        s.push(',');
                        push_f64(&mut s, range.max().y);
                        s.push(',');
                        push_f64(&mut s, radius);
                        s.push(']');
                    }
                }
            }
            s.push(']');
        }
    }
    s.push('}');
    s
}

/// Decodes one replication-batch JSON line.
///
/// # Errors
///
/// [`CodecError`] when the frame is malformed or carries an unsupported
/// format version.
pub fn decode_replica_batch(line: &str) -> Result<ReplicaBatch, CodecError> {
    let obj = parse(line)?;
    match field(&obj, "t")? {
        Value::Str(t) if t == "replica" => {}
        _ => return Err(CodecError::new("expected a replica frame")),
    }
    check_version(&obj)?;
    let seq = uint(&obj, "seq")?;
    if let Some(Value::Obj(snap)) = obj.get("snapshot") {
        return Ok(ReplicaBatch {
            seq,
            payload: ReplicaPayload::Full(snapshot_from_obj(snap)?),
        });
    }
    let mut ops = Vec::new();
    for entry in arr_field(&obj, "ops")? {
        let Value::Arr(fields) = entry else {
            return Err(CodecError::new("op must be an array"));
        };
        let tag = match fields.first() {
            Some(Value::Str(tag)) => tag.as_str(),
            _ => return Err(CodecError::new("op must start with a tag")),
        };
        let f = nums(&fields[1..], "op")?;
        let op = match (tag, f.len()) {
            ("j", 4) => ReplicaOp::Join {
                client: ClientId(f[0] as u64),
                pos: Point::new(f[1], f[2]),
                state_bytes: f[3] as u64,
            },
            ("m", 3) => ReplicaOp::Move {
                client: ClientId(f[0] as u64),
                pos: Point::new(f[1], f[2]),
            },
            ("l", 1) => ReplicaOp::Leave {
                client: ClientId(f[0] as u64),
            },
            ("r", 5) => ReplicaOp::Range {
                range: rect_from(&f[0..4]),
                radius: f[4],
            },
            _ => return Err(CodecError::new(format!("unknown or malformed op '{tag}'"))),
        };
        ops.push(op);
    }
    Ok(ReplicaBatch {
        seq,
        payload: ReplicaPayload::Ops(ops),
    })
}

/// Encodes a replication acknowledgement as a single JSON line.
pub fn encode_replica_ack(seq: u64, resync: bool) -> String {
    format!(
        "{{\"t\":\"replica-ack\",\"v\":{},\"seq\":{seq},\"resync\":{resync}}}",
        RegionSnapshot::VERSION
    )
}

/// Decodes one replication-acknowledgement JSON line into
/// `(seq, resync)`.
///
/// # Errors
///
/// [`CodecError`] when the frame is malformed or carries an unsupported
/// format version.
pub fn decode_replica_ack(line: &str) -> Result<(u64, bool), CodecError> {
    let obj = parse(line)?;
    match field(&obj, "t")? {
        Value::Str(t) if t == "replica-ack" => {}
        _ => return Err(CodecError::new("expected a replica-ack frame")),
    }
    check_version(&obj)?;
    Ok((uint(&obj, "seq")?, bool_field(&obj, "resync")?))
}

// ---------------------------------------------------------------------------
// Live stats frames (versioned)
// ---------------------------------------------------------------------------

/// Format version of the stats query/reply frames. Versioned separately
/// from the replication frames: the stats endpoint and the replication
/// link evolve independently.
pub const STATS_VERSION: u32 = 1;

/// The exposition format a stats query asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatsFormat {
    /// Structured JSON reply (machine-readable, decodable with
    /// [`decode_stats_reply`]).
    Json,
    /// Prometheus-style text exposition
    /// ([`matrix_telemetry::render_prometheus`]).
    Prom,
}

fn check_stats_version(obj: &BTreeMap<String, Value>) -> Result<(), CodecError> {
    let v = uint(obj, "v")? as u32;
    if v != STATS_VERSION {
        return Err(CodecError::new(format!(
            "unsupported stats format version {v} (expected {STATS_VERSION})"
        )));
    }
    Ok(())
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            _ => out.push(ch),
        }
    }
    out.push('"');
}

/// Encodes a live-stats query as a single JSON line (no newline):
/// `{"t":"stats","v":1,"fmt":"json"|"prom"}`.
pub fn encode_stats_query(fmt: StatsFormat) -> String {
    let fmt = match fmt {
        StatsFormat::Json => "json",
        StatsFormat::Prom => "prom",
    };
    format!("{{\"t\":\"stats\",\"v\":{STATS_VERSION},\"fmt\":\"{fmt}\"}}")
}

/// Decodes one stats-query JSON line into the requested format.
///
/// # Errors
///
/// [`CodecError`] when the frame is malformed, carries an unsupported
/// version, or names an unknown format.
pub fn decode_stats_query(line: &str) -> Result<StatsFormat, CodecError> {
    let obj = parse(line)?;
    match field(&obj, "t")? {
        Value::Str(t) if t == "stats" => {}
        _ => return Err(CodecError::new("expected a stats frame")),
    }
    check_stats_version(&obj)?;
    match field(&obj, "fmt")? {
        Value::Str(f) if f == "json" => Ok(StatsFormat::Json),
        Value::Str(f) if f == "prom" => Ok(StatsFormat::Prom),
        Value::Str(f) => Err(CodecError::new(format!("unknown stats format '{f}'"))),
        _ => Err(CodecError::new("field 'fmt' must be a string")),
    }
}

/// Encodes a stats reply — one [`TelemetrySnapshot`] per node — as a
/// single JSON line (no newline). Histograms travel in sparse form
/// (`[name, count, sum, min, max, [[bucket, n], …]]`), so the reply
/// stays small no matter how long the node has been up.
pub fn encode_stats_reply(nodes: &[(ServerId, TelemetrySnapshot)]) -> String {
    let mut s = String::with_capacity(64 + nodes.len() * 256);
    let _ = write!(
        s,
        "{{\"t\":\"stats-reply\",\"v\":{STATS_VERSION},\"nodes\":["
    );
    for (i, (id, snap)) in nodes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "[{},", id.0);
        push_telemetry_body(&mut s, snap);
        s.push(']');
    }
    s.push_str("]}");
    s
}

/// Appends one telemetry snapshot as a JSON object (shared by the
/// stats reply and the load-report heartbeat).
fn push_telemetry_body(s: &mut String, snap: &TelemetrySnapshot) {
    s.push_str("{\"counters\":[");
    for (j, (name, v)) in snap.counters.iter().enumerate() {
        if j > 0 {
            s.push(',');
        }
        s.push('[');
        push_json_str(s, name);
        let _ = write!(s, ",{v}]");
    }
    s.push_str("],\"hists\":[");
    for (j, h) in snap.hists.iter().enumerate() {
        if j > 0 {
            s.push(',');
        }
        s.push('[');
        push_json_str(s, &h.name);
        let _ = write!(s, ",{},", h.count);
        push_f64(s, h.sum);
        s.push(',');
        push_f64(s, h.min);
        s.push(',');
        push_f64(s, h.max);
        s.push_str(",[");
        for (k, (idx, n)) in h.buckets.iter().enumerate() {
            if k > 0 {
                s.push(',');
            }
            let _ = write!(s, "[{idx},{n}]");
        }
        s.push_str("]]");
    }
    let _ = write!(
        s,
        "],\"dropped\":{},\"seen\":{}}}",
        snap.events_dropped, snap.events_seen
    );
}

/// Decodes one stats-reply JSON line.
///
/// # Errors
///
/// [`CodecError`] when the frame is malformed or carries an unsupported
/// format version.
pub fn decode_stats_reply(line: &str) -> Result<Vec<(ServerId, TelemetrySnapshot)>, CodecError> {
    let obj = parse(line)?;
    match field(&obj, "t")? {
        Value::Str(t) if t == "stats-reply" => {}
        _ => return Err(CodecError::new("expected a stats-reply frame")),
    }
    check_stats_version(&obj)?;
    let mut nodes = Vec::new();
    for entry in arr_field(&obj, "nodes")? {
        let Value::Arr(fields) = entry else {
            return Err(CodecError::new("node entry must be an array"));
        };
        let (Some(id), Some(Value::Obj(body)), 2) = (
            fields.first().and_then(Value::as_num),
            fields.get(1),
            fields.len(),
        ) else {
            return Err(CodecError::new("node entry must be [id, {snapshot}]"));
        };
        nodes.push((ServerId(id as u32), telemetry_from_obj(body)?));
    }
    Ok(nodes)
}

/// Rebuilds one telemetry snapshot from its JSON-object form (shared
/// by the stats reply and the load-report heartbeat).
fn telemetry_from_obj(body: &BTreeMap<String, Value>) -> Result<TelemetrySnapshot, CodecError> {
    let mut snap = TelemetrySnapshot::new();
    for c in arr_field(body, "counters")? {
        let Value::Arr(f) = c else {
            return Err(CodecError::new("counter must be an array"));
        };
        let (Some(Value::Str(name)), Some(v), 2) =
            (f.first(), f.get(1).and_then(Value::as_num), f.len())
        else {
            return Err(CodecError::new("counter must be [name, value]"));
        };
        snap.counters.push((name.clone(), v as u64));
    }
    for hv in arr_field(body, "hists")? {
        let Value::Arr(f) = hv else {
            return Err(CodecError::new("hist must be an array"));
        };
        let (Some(Value::Str(name)), 6) = (f.first(), f.len()) else {
            return Err(CodecError::new(
                "hist must be [name, count, sum, min, max, [buckets]]",
            ));
        };
        let moment = |i: usize| {
            f[i].as_num()
                .ok_or_else(|| CodecError::new("hist moments must be numbers"))
        };
        let Value::Arr(entries) = &f[5] else {
            return Err(CodecError::new("hist buckets must be an array"));
        };
        let mut buckets = Vec::with_capacity(entries.len());
        for b in entries {
            let Value::Arr(pair) = b else {
                return Err(CodecError::new("bucket must be an array"));
            };
            let p = nums(pair, "bucket")?;
            if p.len() != 2 {
                return Err(CodecError::new("bucket must be [index, count]"));
            }
            buckets.push((p[0] as u32, p[1] as u64));
        }
        snap.hists.push(HistSnapshot {
            name: name.clone(),
            count: moment(1)? as u64,
            sum: moment(2)?,
            min: moment(3)?,
            max: moment(4)?,
            buckets,
        });
    }
    snap.events_dropped = uint(body, "dropped")?;
    snap.events_seen = uint(body, "seen")?;
    Ok(snap)
}

/// Encodes a load-report heartbeat as a single JSON line (no newline):
/// `{"t":"load","v":1,"clients":3,"backlog":0.5,"pos":[[x,y],…]}`, with
/// an optional `"telemetry"` object in the stats-reply snapshot shape.
/// The JSON form exists for interop/debugging parity with the binary
/// [`crate::codec_v2::Frame::Load`]; in-process load reports never
/// touch a codec.
pub fn encode_load_report(report: &LoadReport) -> String {
    let mut s = String::with_capacity(64 + report.positions.len() * 16);
    let _ = write!(
        s,
        "{{\"t\":\"load\",\"v\":{STATS_VERSION},\"clients\":{},\"backlog\":",
        report.clients
    );
    push_f64(&mut s, report.queue_backlog);
    s.push_str(",\"pos\":[");
    for (i, p) in report.positions.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('[');
        push_f64(&mut s, p.x);
        s.push(',');
        push_f64(&mut s, p.y);
        s.push(']');
    }
    s.push(']');
    if let Some(snap) = &report.telemetry {
        s.push_str(",\"telemetry\":");
        push_telemetry_body(&mut s, snap);
    }
    s.push('}');
    s
}

/// Decodes one load-report JSON line.
///
/// # Errors
///
/// [`CodecError`] when the frame is malformed or carries an unsupported
/// format version.
pub fn decode_load_report(line: &str) -> Result<LoadReport, CodecError> {
    let obj = parse(line)?;
    match field(&obj, "t")? {
        Value::Str(t) if t == "load" => {}
        _ => return Err(CodecError::new("expected a load frame")),
    }
    check_stats_version(&obj)?;
    let mut positions = Vec::new();
    for entry in arr_field(&obj, "pos")? {
        let Value::Arr(pair) = entry else {
            return Err(CodecError::new("position must be an array"));
        };
        let p = nums(pair, "position")?;
        if p.len() != 2 {
            return Err(CodecError::new("position must be [x, y]"));
        }
        positions.push(Point::new(p[0], p[1]));
    }
    let telemetry = match obj.get("telemetry") {
        Some(Value::Obj(body)) => Some(Box::new(telemetry_from_obj(body)?)),
        Some(_) => return Err(CodecError::new("field 'telemetry' must be an object")),
        None => None,
    };
    Ok(LoadReport {
        clients: uint(&obj, "clients")? as u32,
        queue_backlog: num(&obj, "backlog")?,
        positions,
        telemetry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_client(msg: ClientToGame) {
        let line = encode_client_to_game(&msg);
        assert_eq!(decode_client_to_game(&line).expect(&line), msg, "{line}");
    }

    fn round_trip_server(msg: GameToClient) {
        let line = encode_game_to_client(&msg);
        assert_eq!(decode_game_to_client(&line).expect(&line), msg, "{line}");
    }

    #[test]
    fn every_client_variant_round_trips() {
        round_trip_client(ClientToGame::Join {
            pos: Point::new(0.0, -0.5),
            state_bytes: 0,
        });
        round_trip_client(ClientToGame::Join {
            pos: Point::new(123.456789, 1e-9),
            state_bytes: u64::MAX >> 12,
        });
        round_trip_client(ClientToGame::Move {
            pos: Point::new(-1.25, 7.75),
        });
        round_trip_client(ClientToGame::Action {
            pos: Point::new(3.5, 4.5),
            payload_bytes: 90,
        });
        round_trip_client(ClientToGame::Leave);
    }

    #[test]
    fn every_server_variant_round_trips() {
        round_trip_server(GameToClient::Joined {
            server: ServerId(7),
        });
        round_trip_server(GameToClient::Ack { seq: 123456 });
        round_trip_server(GameToClient::Update {
            origin: Point::new(1.0, 2.0),
            payload_bytes: 3,
        });
        round_trip_server(GameToClient::UpdateBatch { updates: vec![] });
        round_trip_server(GameToClient::UpdateBatch {
            updates: vec![
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(10.5, -20.25),
                    payload_bytes: 64,
                    entity: 9,
                    ring: 0,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(0.0, 0.0),
                    payload_bytes: 0,
                    entity: 0,
                    ring: 0,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
                BatchItem::Delta(DeltaItem {
                    dx: -1.25,
                    dy: 0.5,
                    payload_bytes: 32,
                    entity: 9,
                    ring: 0,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
                BatchItem::Delta(DeltaItem {
                    dx: 0.0,
                    dy: 0.0,
                    payload_bytes: 0,
                    entity: 0,
                    ring: 0,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
            ],
        });
        round_trip_server(GameToClient::SwitchServer { to: ServerId(9) });
    }

    #[test]
    fn whitespace_and_field_order_are_tolerated() {
        let msg = decode_client_to_game(
            " { \"state\" : 64 , \"x\" : 1.0, \"y\": 2.0, \"t\": \"join\" } ",
        )
        .unwrap();
        assert_eq!(
            msg,
            ClientToGame::Join {
                pos: Point::new(1.0, 2.0),
                state_bytes: 64
            }
        );
    }

    #[test]
    fn malformed_frames_are_rejected() {
        for bad in [
            "",
            "nonsense",
            "[1,2,3]",
            "{\"t\":\"join\"}",
            "{\"t\":\"warp\",\"x\":1,\"y\":2}",
            "{\"t\":\"join\",\"x\":1.0,\"y\":2.0,\"state\":64} trailing",
            "{\"t\":\"join\",\"x\":\"NaN\",\"y\":2.0,\"state\":64}",
            "{\"t\":\"join\",\"x\":1e999,\"y\":2.0,\"state\":64}",
            "{\"t\":\"move\",\"x\":-1e999,\"y\":0.0}",
            "{\"t\":\"ack\",\"seq\":-1}",
        ] {
            assert!(decode_client_to_game(bad).is_err(), "{bad}");
        }
        assert!(decode_game_to_client("{\"t\":\"batch\",\"updates\":[[1,2]]}").is_err());
        assert!(decode_game_to_client("{\"t\":\"batch\",\"updates\":[[\"d\",1,2]]}").is_err());
        assert!(decode_game_to_client("{\"t\":\"batch\",\"updates\":[[\"q\",1,2,3]]}").is_err());
        assert!(decode_game_to_client("{\"t\":\"batch\",\"updates\":[[1,2,3,4,5,6]]}").is_err());
        assert!(
            decode_game_to_client("{\"t\":\"batch\",\"updates\":[[\"d\",1,2,3,4,5,6]]}").is_err()
        );
    }

    #[test]
    fn special_floats_round_trip() {
        // Positions are finite in practice, but the codec must not mangle
        // extreme magnitudes.
        round_trip_client(ClientToGame::Move {
            pos: Point::new(f64::MAX / 2.0, f64::MIN_POSITIVE),
        });
    }

    #[test]
    fn ring_tagged_items_round_trip_and_omit_zero() {
        // Ring tags travel as the optional trailing element; a non-zero
        // ring forces the entity placeholder. Near-ring (0) items encode
        // exactly as pre-ring frames did.
        let far = GameToClient::UpdateBatch {
            updates: vec![
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(1.0, 2.0),
                    payload_bytes: 8,
                    entity: 0,
                    ring: 2,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
                BatchItem::Delta(DeltaItem {
                    dx: 0.5,
                    dy: -0.5,
                    payload_bytes: 4,
                    entity: 9,
                    ring: 1,
                    vx: 0.0,
                    vy: 0.0,
                    trace: None,
                }),
            ],
        };
        let line = encode_game_to_client(&far);
        assert!(line.contains("[1,2,8,0,2]"), "{line}");
        assert!(line.contains("[\"d\",0.5,-0.5,4,9,1]"), "{line}");
        assert_eq!(decode_game_to_client(&line).unwrap(), far);

        let near = GameToClient::UpdateBatch {
            updates: vec![BatchItem::Absolute(UpdateItem {
                origin: Point::new(1.0, 2.0),
                payload_bytes: 8,
                entity: 7,
                ring: 0,
                vx: 0.0,
                vy: 0.0,
                trace: None,
            })],
        };
        let line = encode_game_to_client(&near);
        assert!(line.contains("[1,2,8,7]"), "ring 0 omitted: {line}");
        assert_eq!(decode_game_to_client(&line).unwrap(), near);
    }

    #[test]
    fn tuner_state_round_trips_and_is_omitted_when_absent() {
        let mut snap = sample_snapshot();
        assert!(
            !encode_region_snapshot(&snap).contains("tuner"),
            "static-grid snapshots stay byte-identical to pre-tuner frames"
        );
        snap.tuner = Some(TunerState {
            cells: 64,
            streak: 2,
            pending: 0,
        });
        let line = encode_region_snapshot(&snap);
        assert!(line.contains("\"tuner\":[64,2]"), "{line}");
        assert_eq!(decode_region_snapshot(&line).unwrap(), snap);
    }

    #[test]
    fn velocity_tagged_items_round_trip_and_omit_zero() {
        // Velocities travel as a trailing pair, forcing the entity and
        // ring placeholders; zero velocity encodes exactly like a
        // pre-prediction frame.
        let msg = GameToClient::UpdateBatch {
            updates: vec![
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(1.0, 2.0),
                    payload_bytes: 8,
                    entity: 0,
                    ring: 0,
                    vx: 12.5,
                    vy: -3.25,
                    trace: None,
                }),
                BatchItem::Delta(DeltaItem {
                    dx: 0.5,
                    dy: -0.5,
                    payload_bytes: 4,
                    entity: 9,
                    ring: 2,
                    vx: -0.25,
                    vy: 1.0,
                    trace: None,
                }),
            ],
        };
        let line = encode_game_to_client(&msg);
        assert!(line.contains("[1,2,8,0,0,12.5,-3.25]"), "{line}");
        assert!(line.contains("[\"d\",0.5,-0.5,4,9,2,-0.25,1]"), "{line}");
        assert_eq!(decode_game_to_client(&line).unwrap(), msg);

        let still = GameToClient::UpdateBatch {
            updates: vec![BatchItem::Absolute(UpdateItem {
                origin: Point::new(1.0, 2.0),
                payload_bytes: 8,
                entity: 7,
                ring: 0,
                vx: 0.0,
                vy: 0.0,
                trace: None,
            })],
        };
        let line = encode_game_to_client(&still);
        assert!(
            line.contains("[1,2,8,7]"),
            "zero velocity stays off the wire: {line}"
        );
        assert_eq!(decode_game_to_client(&line).unwrap(), still);
    }

    #[test]
    fn dangling_velocity_components_are_rejected() {
        // A lone vx with no vy is not a valid frame in either shape.
        assert!(decode_game_to_client("{\"t\":\"batch\",\"updates\":[[1,2,3,4,5,6]]}").is_err());
        assert!(
            decode_game_to_client("{\"t\":\"batch\",\"updates\":[[\"d\",1,2,3,4,5,6]]}").is_err()
        );
    }

    #[test]
    fn snapshot_bases_round_trip_and_are_omitted_when_empty() {
        let mut snap = sample_snapshot();
        assert!(
            !encode_region_snapshot(&snap).contains("bases"),
            "prediction-free snapshots stay byte-identical to pre-prediction frames"
        );
        snap.bases.insert(
            ClientId(7),
            vec![
                PredictBasis {
                    entity: 9,
                    pos: Point::new(10.5, -3.0),
                    vx: 12.5,
                    vy: -3.25,
                    time_secs: 4.2,
                },
                PredictBasis {
                    entity: 11,
                    pos: Point::new(0.0, 0.0),
                    vx: 0.0,
                    vy: 0.0,
                    time_secs: 0.0,
                },
            ],
        );
        snap.pending.insert(
            ClientId(8),
            vec![PendingUpdate {
                origin: Point::new(1.0, 2.0),
                payload_bytes: 8,
                entity: 9,
                ring: 1,
                vx: 2.5,
                vy: -1.5,
                trace: None,
            }],
        );
        let line = encode_region_snapshot(&snap);
        assert!(
            line.contains("\"bases\":[[7,[[9,10.5,-3,12.5,-3.25,4.2]"),
            "{line}"
        );
        assert!(
            line.contains("[1,2,8,9,1,2.5,-1.5]"),
            "pending items carry their velocity: {line}"
        );
        assert_eq!(decode_region_snapshot(&line).unwrap(), snap);
    }

    #[test]
    fn pre_entity_batch_frames_still_decode() {
        // Item shapes from before the entity tag ([x,y,bytes] and
        // ["d",dx,dy,bytes]) parse as anonymous items.
        let msg =
            decode_game_to_client("{\"t\":\"batch\",\"updates\":[[1.0,2.0,8],[\"d\",0.5,0.5,4]]}")
                .unwrap();
        let GameToClient::UpdateBatch { updates } = msg else {
            panic!("expected a batch");
        };
        assert!(updates.iter().all(|u| u.entity() == 0));
    }

    fn sample_snapshot() -> RegionSnapshot {
        let mut snap = RegionSnapshot {
            range: Some(matrix_geometry::Rect::from_coords(0.0, 0.0, 400.0, 400.0)),
            radius: 50.0,
            ready: true,
            seq: 42,
            last_flush: SimTime::from_millis(1250),
            ..RegionSnapshot::default()
        };
        snap.clients.insert(
            ClientId(7),
            SessionState {
                pos: Point::new(10.5, -3.25),
                state_bytes: 2048,
            },
        );
        snap.streams.insert(
            ClientId(7),
            StreamBase {
                base: Point::new(10.0, -3.0),
                countdown: 5,
            },
        );
        snap.pending.insert(
            ClientId(7),
            vec![PendingUpdate {
                origin: Point::new(11.0, -3.0),
                payload_bytes: 64,
                entity: 9,
                ring: 0,
                vx: 0.0,
                vy: 0.0,
                trace: None,
            }],
        );
        snap
    }

    #[test]
    fn region_snapshot_round_trips() {
        let snap = sample_snapshot();
        let line = encode_region_snapshot(&snap);
        assert_eq!(decode_region_snapshot(&line).unwrap(), snap, "{line}");
        // Empty snapshot too.
        let empty = RegionSnapshot::default();
        let line = encode_region_snapshot(&empty);
        assert_eq!(decode_region_snapshot(&line).unwrap(), empty, "{line}");
    }

    #[test]
    fn replica_frames_round_trip() {
        let full = ReplicaBatch {
            seq: 4,
            payload: ReplicaPayload::Full(sample_snapshot()),
        };
        let line = encode_replica_batch(&full);
        assert_eq!(decode_replica_batch(&line).unwrap(), full, "{line}");

        let ops = ReplicaBatch {
            seq: 5,
            payload: ReplicaPayload::Ops(vec![
                ReplicaOp::Join {
                    client: ClientId(7),
                    pos: Point::new(1.5, 2.5),
                    state_bytes: 64,
                },
                ReplicaOp::Move {
                    client: ClientId(7),
                    pos: Point::new(1.75, 2.5),
                },
                ReplicaOp::Leave {
                    client: ClientId(7),
                },
                ReplicaOp::Range {
                    range: matrix_geometry::Rect::from_coords(0.0, 0.0, 200.0, 400.0),
                    radius: 50.0,
                },
            ]),
        };
        let line = encode_replica_batch(&ops);
        assert_eq!(decode_replica_batch(&line).unwrap(), ops, "{line}");

        let line = encode_replica_ack(17, true);
        assert_eq!(decode_replica_ack(&line).unwrap(), (17, true));
    }

    #[test]
    fn unsupported_snapshot_versions_are_rejected() {
        let mut line = encode_region_snapshot(&sample_snapshot());
        line = line.replace("\"v\":1", "\"v\":2");
        let err = decode_region_snapshot(&line).unwrap_err();
        assert!(err.reason.contains("version"), "{err}");
        let mut line = encode_replica_ack(1, false);
        line = line.replace("\"v\":1", "\"v\":999");
        assert!(decode_replica_ack(&line).is_err());
    }

    #[test]
    fn stats_query_round_trips_and_rejects_bad_versions() {
        for fmt in [StatsFormat::Json, StatsFormat::Prom] {
            let line = encode_stats_query(fmt);
            assert_eq!(decode_stats_query(&line).unwrap(), fmt, "{line}");
        }
        let bad = encode_stats_query(StatsFormat::Json).replace("\"v\":1", "\"v\":7");
        let err = decode_stats_query(&bad).unwrap_err();
        assert!(err.reason.contains("version"), "{err}");
        assert!(decode_stats_query("{\"t\":\"stats\",\"v\":1,\"fmt\":\"xml\"}").is_err());
        assert!(decode_stats_query("{\"t\":\"join\",\"x\":1.0,\"y\":2.0,\"state\":0}").is_err());
    }

    #[test]
    fn stats_reply_round_trips() {
        let mut a = TelemetrySnapshot::new();
        a.counter("joins", 5);
        a.counter("batch_bytes", u64::MAX >> 12);
        let mut h = matrix_telemetry::Histogram::new();
        for v in [1.0, 7.5, 900.25, -3.5] {
            h.record(v);
        }
        a.hist("flush_us", &h);
        a.events_seen = 9;
        a.events_dropped = 2;
        let b = TelemetrySnapshot::new();
        let nodes = vec![(ServerId(3), a), (ServerId(11), b)];
        let line = encode_stats_reply(&nodes);
        assert_eq!(decode_stats_reply(&line).unwrap(), nodes, "{line}");
        // Quantiles survive the sparse form.
        let decoded = decode_stats_reply(&line).unwrap();
        let back = decoded[0].1.get_hist("flush_us").unwrap().to_histogram();
        assert_eq!(back, h);
        // Empty reply too.
        let line = encode_stats_reply(&[]);
        assert_eq!(decode_stats_reply(&line).unwrap(), vec![]);
        // Version mismatches fail loudly.
        let bad = encode_stats_reply(&[]).replace("\"v\":1", "\"v\":2");
        assert!(decode_stats_reply(&bad).is_err());
    }

    #[test]
    fn snapshot_codec_survives_randomised_round_trips() {
        // Fuzz-ish: a seeded xorshift drives randomised snapshots (sizes,
        // magnitudes, signs, empty and non-empty maps) through the codec;
        // every one must round-trip exactly. Deterministic, so failures
        // reproduce.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..200 {
            let mut snap = RegionSnapshot::default();
            if next() % 4 != 0 {
                let x = (next() % 10_000) as f64 / 16.0 - 300.0;
                let y = (next() % 10_000) as f64 / 32.0 - 150.0;
                snap.range = Some(matrix_geometry::Rect::from_coords(
                    x,
                    y,
                    x + 500.0,
                    y + 400.0,
                ));
            }
            snap.radius = (next() % 1_000) as f64 / 8.0;
            snap.ready = next() % 2 == 0;
            snap.seq = next() % 1_000_000;
            snap.last_flush = SimTime::from_micros(next() % 10_000_000);
            if next() % 3 == 0 {
                snap.tuner = Some(TunerState {
                    cells: (next() % 256) as u32 + 1,
                    streak: (next() % 8) as u32,
                    pending: (next() % 3 == 0) as u32 * ((next() % 256) as u32 + 1),
                });
            }
            for _ in 0..next() % 20 {
                let id = ClientId(next() % 10_000);
                let pos = Point::new(
                    (next() % 1_000_000) as f64 / 256.0 - 2_000.0,
                    (next() % 1_000_000) as f64 / 256.0 - 2_000.0,
                );
                snap.clients.insert(
                    id,
                    SessionState {
                        pos,
                        state_bytes: next() % 100_000,
                    },
                );
                if next() % 2 == 0 {
                    snap.streams.insert(
                        id,
                        StreamBase {
                            base: pos,
                            countdown: (next() % 16) as u32,
                        },
                    );
                }
                if next() % 3 == 0 {
                    let items = (0..next() % 5)
                        .map(|_| PendingUpdate {
                            origin: Point::new(
                                (next() % 100_000) as f64 / 256.0,
                                (next() % 100_000) as f64 / 256.0,
                            ),
                            payload_bytes: (next() % 512) as usize,
                            entity: next() % 10_000,
                            ring: (next() % 4) as u8,
                            vx: 0.0,
                            vy: 0.0,
                            trace: None,
                        })
                        .collect();
                    snap.pending.insert(id, items);
                }
            }
            let line = encode_region_snapshot(&snap);
            let decoded = decode_region_snapshot(&line)
                .unwrap_or_else(|e| panic!("round {round}: {e}\n{line}"));
            assert_eq!(decoded, snap, "round {round}");
        }
    }
}
