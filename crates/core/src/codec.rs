//! Hand-written JSON-lines codec for the client-facing protocol.
//!
//! The TCP gateway frames [`ClientToGame`] / [`GameToClient`] as one JSON
//! object per line. The codec is written by hand (rather than through a
//! serde backend) so the workspace builds fully offline; the format is
//! ordinary JSON, so any client language can speak it.
//!
//! Wire shapes:
//!
//! ```text
//! client → game   {"t":"join","x":1.0,"y":2.0,"state":64}
//!                 {"t":"move","x":1.0,"y":2.0}
//!                 {"t":"action","x":1.0,"y":2.0,"bytes":90}
//!                 {"t":"leave"}
//! game → client   {"t":"joined","server":3}
//!                 {"t":"ack","seq":17}
//!                 {"t":"update","x":1.0,"y":2.0,"bytes":90}
//!                 {"t":"batch","updates":[[1.0,2.0,90],["d",0.5,-0.25,32]]}
//!                 {"t":"switch","to":4}
//! ```
//!
//! Batch items come in two shapes: an absolute keyframe `[x, y, bytes]`
//! and a delta `["d", dx, dy, bytes]` whose origin is the previous
//! item's reconstructed origin offset by `(dx, dy)` (the first item of a
//! batch chains off the last origin of the previous batch; see
//! [`reconstruct_updates`](crate::reconstruct_updates)).
//!
//! Floats are emitted with Rust's shortest round-trip formatting, so
//! decode(encode(m)) == m exactly.

use crate::messages::{BatchItem, ClientToGame, DeltaItem, GameToClient, UpdateItem};
use matrix_geometry::{Point, ServerId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A malformed frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecError {
    /// What went wrong, for diagnostics.
    pub reason: String,
}

impl CodecError {
    fn new(reason: impl Into<String>) -> CodecError {
        CodecError {
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad frame: {}", self.reason)
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Minimal JSON value model
// ---------------------------------------------------------------------------

/// A parsed JSON value (the subset the protocol uses).
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            at: 0,
        }
    }

    fn err(&self, what: &str) -> CodecError {
        CodecError::new(format!("{what} at byte {}", self.at))
    }

    fn skip_ws(&mut self) {
        while self.at < self.bytes.len() && self.bytes[self.at].is_ascii_whitespace() {
            self.at += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), CodecError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        match self.peek().ok_or_else(|| self.err("unexpected end"))? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, CodecError> {
        if self.bytes[self.at..].starts_with(lit.as_bytes()) {
            self.at += lit.len();
            Ok(value)
        } else {
            Err(self.err("bad literal"))
        }
    }

    fn number(&mut self) -> Result<Value, CodecError> {
        let start = self.at;
        while self.at < self.bytes.len()
            && matches!(
                self.bytes[self.at],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("non-utf8 number"))?;
        let value = text.parse::<f64>().map_err(|_| self.err("bad number"))?;
        // JSON has no Inf/NaN; `"1e999".parse::<f64>()` yields infinity,
        // which would round-trip into frames no JSON parser accepts —
        // reject it at the boundary instead of poisoning later encodes.
        if !value.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Value::Num(value))
    }

    fn string(&mut self) -> Result<String, CodecError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.at)
                .ok_or_else(|| self.err("unterminated string"))?;
            self.at += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.at)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        _ => return Err(self.err("unsupported escape")),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the full scalar.
                    let tail = &self.bytes[self.at - 1..];
                    let text = std::str::from_utf8(tail).map_err(|_| self.err("non-utf8"))?;
                    let ch = text.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(ch);
                    self.at += ch.len_utf8() - 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, CodecError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, CodecError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            map.insert(key, self.value()?);
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

fn parse(text: &str) -> Result<BTreeMap<String, Value>, CodecError> {
    let mut p = Parser::new(text);
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(p.err("trailing data"));
    }
    match v {
        Value::Obj(map) => Ok(map),
        _ => Err(CodecError::new("frame must be a JSON object")),
    }
}

// ---------------------------------------------------------------------------
// Field helpers
// ---------------------------------------------------------------------------

fn field<'v>(obj: &'v BTreeMap<String, Value>, key: &str) -> Result<&'v Value, CodecError> {
    obj.get(key)
        .ok_or_else(|| CodecError::new(format!("missing field '{key}'")))
}

fn num(obj: &BTreeMap<String, Value>, key: &str) -> Result<f64, CodecError> {
    field(obj, key)?
        .as_num()
        .ok_or_else(|| CodecError::new(format!("field '{key}' must be a number")))
}

fn uint(obj: &BTreeMap<String, Value>, key: &str) -> Result<u64, CodecError> {
    let n = num(obj, key)?;
    if n < 0.0 || n.fract() != 0.0 {
        return Err(CodecError::new(format!(
            "field '{key}' must be a non-negative integer"
        )));
    }
    Ok(n as u64)
}

fn point(obj: &BTreeMap<String, Value>) -> Result<Point, CodecError> {
    Ok(Point::new(num(obj, "x")?, num(obj, "y")?))
}

fn push_f64(out: &mut String, v: f64) {
    // `{:?}` gives the shortest representation that round-trips.
    let _ = write!(out, "{v:?}");
}

// ---------------------------------------------------------------------------
// Encoding / decoding
// ---------------------------------------------------------------------------

/// Encodes a client→server message as a single JSON line (no newline).
pub fn encode_client_to_game(msg: &ClientToGame) -> String {
    let mut s = String::with_capacity(64);
    match msg {
        ClientToGame::Join { pos, state_bytes } => {
            s.push_str("{\"t\":\"join\",\"x\":");
            push_f64(&mut s, pos.x);
            s.push_str(",\"y\":");
            push_f64(&mut s, pos.y);
            let _ = write!(s, ",\"state\":{state_bytes}}}");
        }
        ClientToGame::Move { pos } => {
            s.push_str("{\"t\":\"move\",\"x\":");
            push_f64(&mut s, pos.x);
            s.push_str(",\"y\":");
            push_f64(&mut s, pos.y);
            s.push('}');
        }
        ClientToGame::Action { pos, payload_bytes } => {
            s.push_str("{\"t\":\"action\",\"x\":");
            push_f64(&mut s, pos.x);
            s.push_str(",\"y\":");
            push_f64(&mut s, pos.y);
            let _ = write!(s, ",\"bytes\":{payload_bytes}}}");
        }
        ClientToGame::Leave => s.push_str("{\"t\":\"leave\"}"),
    }
    s
}

/// Decodes one client→server JSON line.
///
/// # Errors
///
/// [`CodecError`] when the frame is not valid JSON or not a known message.
pub fn decode_client_to_game(line: &str) -> Result<ClientToGame, CodecError> {
    let obj = parse(line)?;
    let tag = match field(&obj, "t")? {
        Value::Str(t) => t.as_str(),
        _ => return Err(CodecError::new("field 't' must be a string")),
    };
    match tag {
        "join" => Ok(ClientToGame::Join {
            pos: point(&obj)?,
            state_bytes: uint(&obj, "state")?,
        }),
        "move" => Ok(ClientToGame::Move { pos: point(&obj)? }),
        "action" => Ok(ClientToGame::Action {
            pos: point(&obj)?,
            payload_bytes: uint(&obj, "bytes")? as usize,
        }),
        "leave" => Ok(ClientToGame::Leave),
        other => Err(CodecError::new(format!("unknown client message '{other}'"))),
    }
}

/// Encodes a server→client message as a single JSON line (no newline).
pub fn encode_game_to_client(msg: &GameToClient) -> String {
    let mut s = String::with_capacity(64);
    match msg {
        GameToClient::Joined { server } => {
            let _ = write!(s, "{{\"t\":\"joined\",\"server\":{}}}", server.0);
        }
        GameToClient::Ack { seq } => {
            let _ = write!(s, "{{\"t\":\"ack\",\"seq\":{seq}}}");
        }
        GameToClient::Update {
            origin,
            payload_bytes,
        } => {
            s.push_str("{\"t\":\"update\",\"x\":");
            push_f64(&mut s, origin.x);
            s.push_str(",\"y\":");
            push_f64(&mut s, origin.y);
            let _ = write!(s, ",\"bytes\":{payload_bytes}}}");
        }
        GameToClient::UpdateBatch { updates } => {
            s.push_str("{\"t\":\"batch\",\"updates\":[");
            for (i, item) in updates.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                match item {
                    BatchItem::Absolute(u) => {
                        s.push('[');
                        push_f64(&mut s, u.origin.x);
                        s.push(',');
                        push_f64(&mut s, u.origin.y);
                        let _ = write!(s, ",{}]", u.payload_bytes);
                    }
                    BatchItem::Delta(d) => {
                        s.push_str("[\"d\",");
                        push_f64(&mut s, d.dx);
                        s.push(',');
                        push_f64(&mut s, d.dy);
                        let _ = write!(s, ",{}]", d.payload_bytes);
                    }
                }
            }
            s.push_str("]}");
        }
        GameToClient::SwitchServer { to } => {
            let _ = write!(s, "{{\"t\":\"switch\",\"to\":{}}}", to.0);
        }
    }
    s
}

/// Decodes one server→client JSON line.
///
/// # Errors
///
/// [`CodecError`] when the frame is not valid JSON or not a known message.
pub fn decode_game_to_client(line: &str) -> Result<GameToClient, CodecError> {
    let obj = parse(line)?;
    let tag = match field(&obj, "t")? {
        Value::Str(t) => t.as_str(),
        _ => return Err(CodecError::new("field 't' must be a string")),
    };
    match tag {
        "joined" => Ok(GameToClient::Joined {
            server: ServerId(uint(&obj, "server")? as u32),
        }),
        "ack" => Ok(GameToClient::Ack {
            seq: uint(&obj, "seq")?,
        }),
        "update" => Ok(GameToClient::Update {
            origin: point(&obj)?,
            payload_bytes: uint(&obj, "bytes")? as usize,
        }),
        "batch" => {
            let items = match field(&obj, "updates")? {
                Value::Arr(items) => items,
                _ => return Err(CodecError::new("field 'updates' must be an array")),
            };
            let mut updates = Vec::with_capacity(items.len());
            for item in items {
                let Value::Arr(fields) = item else {
                    return Err(CodecError::new(
                        "batch item must be [x, y, bytes] or [\"d\", dx, dy, bytes]",
                    ));
                };
                let num_at = |i: usize| {
                    fields
                        .get(i)
                        .and_then(Value::as_num)
                        .ok_or_else(|| CodecError::new("batch item fields must be numbers"))
                };
                match fields.first() {
                    Some(Value::Str(tag)) if tag == "d" => {
                        if fields.len() != 4 {
                            return Err(CodecError::new("delta batch item must have 4 elements"));
                        }
                        updates.push(BatchItem::Delta(DeltaItem {
                            dx: num_at(1)?,
                            dy: num_at(2)?,
                            payload_bytes: num_at(3)? as usize,
                        }));
                    }
                    Some(Value::Str(_)) => {
                        return Err(CodecError::new("unknown batch item tag"));
                    }
                    _ => {
                        if fields.len() != 3 {
                            return Err(CodecError::new(
                                "absolute batch item must have 3 elements",
                            ));
                        }
                        updates.push(BatchItem::Absolute(UpdateItem {
                            origin: Point::new(num_at(0)?, num_at(1)?),
                            payload_bytes: num_at(2)? as usize,
                        }));
                    }
                }
            }
            Ok(GameToClient::UpdateBatch { updates })
        }
        "switch" => Ok(GameToClient::SwitchServer {
            to: ServerId(uint(&obj, "to")? as u32),
        }),
        other => Err(CodecError::new(format!("unknown server message '{other}'"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_client(msg: ClientToGame) {
        let line = encode_client_to_game(&msg);
        assert_eq!(decode_client_to_game(&line).expect(&line), msg, "{line}");
    }

    fn round_trip_server(msg: GameToClient) {
        let line = encode_game_to_client(&msg);
        assert_eq!(decode_game_to_client(&line).expect(&line), msg, "{line}");
    }

    #[test]
    fn every_client_variant_round_trips() {
        round_trip_client(ClientToGame::Join {
            pos: Point::new(0.0, -0.5),
            state_bytes: 0,
        });
        round_trip_client(ClientToGame::Join {
            pos: Point::new(123.456789, 1e-9),
            state_bytes: u64::MAX >> 12,
        });
        round_trip_client(ClientToGame::Move {
            pos: Point::new(-1.25, 7.75),
        });
        round_trip_client(ClientToGame::Action {
            pos: Point::new(3.5, 4.5),
            payload_bytes: 90,
        });
        round_trip_client(ClientToGame::Leave);
    }

    #[test]
    fn every_server_variant_round_trips() {
        round_trip_server(GameToClient::Joined {
            server: ServerId(7),
        });
        round_trip_server(GameToClient::Ack { seq: 123456 });
        round_trip_server(GameToClient::Update {
            origin: Point::new(1.0, 2.0),
            payload_bytes: 3,
        });
        round_trip_server(GameToClient::UpdateBatch { updates: vec![] });
        round_trip_server(GameToClient::UpdateBatch {
            updates: vec![
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(10.5, -20.25),
                    payload_bytes: 64,
                }),
                BatchItem::Absolute(UpdateItem {
                    origin: Point::new(0.0, 0.0),
                    payload_bytes: 0,
                }),
                BatchItem::Delta(DeltaItem {
                    dx: -1.25,
                    dy: 0.5,
                    payload_bytes: 32,
                }),
                BatchItem::Delta(DeltaItem {
                    dx: 0.0,
                    dy: 0.0,
                    payload_bytes: 0,
                }),
            ],
        });
        round_trip_server(GameToClient::SwitchServer { to: ServerId(9) });
    }

    #[test]
    fn whitespace_and_field_order_are_tolerated() {
        let msg = decode_client_to_game(
            " { \"state\" : 64 , \"x\" : 1.0, \"y\": 2.0, \"t\": \"join\" } ",
        )
        .unwrap();
        assert_eq!(
            msg,
            ClientToGame::Join {
                pos: Point::new(1.0, 2.0),
                state_bytes: 64
            }
        );
    }

    #[test]
    fn malformed_frames_are_rejected() {
        for bad in [
            "",
            "nonsense",
            "[1,2,3]",
            "{\"t\":\"join\"}",
            "{\"t\":\"warp\",\"x\":1,\"y\":2}",
            "{\"t\":\"join\",\"x\":1.0,\"y\":2.0,\"state\":64} trailing",
            "{\"t\":\"join\",\"x\":\"NaN\",\"y\":2.0,\"state\":64}",
            "{\"t\":\"join\",\"x\":1e999,\"y\":2.0,\"state\":64}",
            "{\"t\":\"move\",\"x\":-1e999,\"y\":0.0}",
            "{\"t\":\"ack\",\"seq\":-1}",
        ] {
            assert!(decode_client_to_game(bad).is_err(), "{bad}");
        }
        assert!(decode_game_to_client("{\"t\":\"batch\",\"updates\":[[1,2]]}").is_err());
        assert!(decode_game_to_client("{\"t\":\"batch\",\"updates\":[[\"d\",1,2]]}").is_err());
        assert!(decode_game_to_client("{\"t\":\"batch\",\"updates\":[[\"q\",1,2,3]]}").is_err());
        assert!(decode_game_to_client("{\"t\":\"batch\",\"updates\":[[1,2,3,4]]}").is_err());
    }

    #[test]
    fn special_floats_round_trip() {
        // Positions are finite in practice, but the codec must not mangle
        // extreme magnitudes.
        round_trip_client(ClientToGame::Move {
            pos: Point::new(f64::MAX / 2.0, f64::MIN_POSITIVE),
        });
    }
}
