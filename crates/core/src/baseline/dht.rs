//! Chord-style DHT directory: the O(log N) lookup alternative.
//!
//! The paper justifies the central coordinator by comparing against DHT
//! lookups (§3.2.4). This module implements enough of Chord [Stoica et
//! al. 2001] to measure lookup hop counts honestly: servers sit on a
//! 64-bit identifier ring, each with a finger table, and point lookups
//! walk greedily through closest-preceding fingers, exactly like Chord
//! routing. Benchmark E9 compares these hop counts (× per-hop latency)
//! with Matrix's O(1) overlap-table lookup.

use matrix_geometry::{Point, Rect, ServerId};

/// Ring position of a server or key.
type RingId = u64;

/// Number of finger-table entries (bits of the ring).
const RING_BITS: usize = 64;

/// Fibonacci-style hash spreading server ids over the ring.
fn hash_server(s: ServerId) -> RingId {
    (s.0 as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(31)
}

/// Hashes a spatial cell onto the ring. Cell granularity trades routing
/// precision for table size, as in spatial-DHT gaming proposals.
fn hash_cell(cx: i64, cy: i64) -> RingId {
    let x = (cx as u64).wrapping_mul(0xA24B_AED4_963E_E407);
    let y = (cy as u64).wrapping_mul(0x9FB2_1C65_1E98_DF25);
    (x ^ y.rotate_left(17)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

#[derive(Debug, Clone)]
struct DhtNode {
    server: ServerId,
    ring: RingId,
    fingers: Vec<usize>, // indices into the sorted node array
}

/// A Chord ring over the live Matrix servers, mapping spatial cells to
/// the server responsible for their ring interval.
#[derive(Debug, Clone)]
pub struct DhtDirectory {
    nodes: Vec<DhtNode>, // sorted by ring id
    cell_size: f64,
}

/// Result of a DHT lookup: the answering server and the route taken.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DhtLookup {
    /// Server responsible for the queried key.
    pub home: ServerId,
    /// Number of inter-server hops the query traversed.
    pub hops: usize,
}

impl DhtDirectory {
    /// Builds the ring for the given servers; `cell_size` is the spatial
    /// granularity of key hashing.
    pub fn new(servers: &[ServerId], cell_size: f64) -> DhtDirectory {
        assert!(!servers.is_empty(), "a DHT needs at least one node");
        assert!(cell_size > 0.0, "cell size must be positive");
        let mut nodes: Vec<DhtNode> = servers
            .iter()
            .map(|&s| DhtNode {
                server: s,
                ring: hash_server(s),
                fingers: Vec::new(),
            })
            .collect();
        nodes.sort_by_key(|n| n.ring);
        nodes.dedup_by_key(|n| n.ring);
        // Finger i of node n points at the successor of n.ring + 2^i.
        let rings: Vec<RingId> = nodes.iter().map(|n| n.ring).collect();
        for node in nodes.iter_mut() {
            let mut fingers = Vec::with_capacity(RING_BITS);
            for bit in 0..RING_BITS {
                let target = node.ring.wrapping_add(1u64.wrapping_shl(bit as u32));
                fingers.push(Self::successor_index(&rings, target));
            }
            fingers.dedup();
            node.fingers = fingers;
        }
        DhtDirectory { nodes, cell_size }
    }

    /// Index of the first node clockwise from `key` (inclusive).
    fn successor_index(rings: &[RingId], key: RingId) -> usize {
        match rings.binary_search(&key) {
            Ok(i) => i,
            Err(i) => {
                if i == rings.len() {
                    0
                } else {
                    i
                }
            }
        }
    }

    /// Number of ring nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring is empty (never true for a constructed ring).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up the home node for a point, starting at `from`, counting
    /// Chord greedy-routing hops.
    pub fn lookup(&self, from: ServerId, point: Point) -> DhtLookup {
        let cx = (point.x / self.cell_size).floor() as i64;
        let cy = (point.y / self.cell_size).floor() as i64;
        let key = hash_cell(cx, cy);
        let rings: Vec<RingId> = self.nodes.iter().map(|n| n.ring).collect();
        let home_idx = Self::successor_index(&rings, key);

        let mut current = self
            .nodes
            .iter()
            .position(|n| n.server == from)
            .unwrap_or(0);
        let mut hops = 0;
        // Greedy clockwise routing via fingers, bounded by ring size.
        while current != home_idx && hops < self.nodes.len() {
            let next = self.closest_preceding(current, key, home_idx);
            if next == current {
                break;
            }
            current = next;
            hops += 1;
        }
        DhtLookup {
            home: self.nodes[home_idx].server,
            hops,
        }
    }

    /// The finger of `current` that gets closest to `key` without passing
    /// it (Chord's `closest_preceding_finger`), falling back to the
    /// immediate successor.
    fn closest_preceding(&self, current: usize, key: RingId, home_idx: usize) -> usize {
        let cur_ring = self.nodes[current].ring;
        let dist_to_key = key.wrapping_sub(cur_ring);
        let mut best = (current + 1) % self.nodes.len(); // successor fallback
        let mut best_dist = u64::MAX;
        for &f in &self.nodes[current].fingers {
            if f == current {
                continue;
            }
            let fd = self.nodes[f].ring.wrapping_sub(cur_ring);
            // Fingers past the key overshoot; the home node itself is fine.
            if fd <= dist_to_key || f == home_idx {
                let remaining = key.wrapping_sub(self.nodes[f].ring);
                if remaining < best_dist {
                    best_dist = remaining;
                    best = f;
                }
            }
        }
        if best_dist == u64::MAX {
            // No finger helps: take the home directly if it is our
            // successor region, else step to the successor.
            (current + 1) % self.nodes.len()
        } else {
            best
        }
    }

    /// Mean hops over a grid of probe points in `world` — the number the
    /// E9 bench reports against table lookups.
    pub fn mean_hops(&self, world: Rect, probes: usize) -> f64 {
        if probes == 0 {
            return 0.0;
        }
        let side = (probes as f64).sqrt().ceil() as usize;
        let mut total = 0usize;
        let mut n = 0usize;
        for i in 0..side {
            for j in 0..side {
                let p = Point::new(
                    world.min().x + world.width() * (i as f64 + 0.5) / side as f64,
                    world.min().y + world.height() * (j as f64 + 0.5) / side as f64,
                );
                let from = self.nodes[(i * side + j) % self.nodes.len()].server;
                total += self.lookup(from, p).hops;
                n += 1;
            }
        }
        total as f64 / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn servers(n: u32) -> Vec<ServerId> {
        (1..=n).map(ServerId).collect()
    }

    #[test]
    fn single_node_answers_in_zero_hops() {
        let d = DhtDirectory::new(&servers(1), 10.0);
        let r = d.lookup(ServerId(1), Point::new(5.0, 5.0));
        assert_eq!(r.home, ServerId(1));
        assert_eq!(r.hops, 0);
    }

    #[test]
    fn lookup_from_home_is_free() {
        let d = DhtDirectory::new(&servers(16), 10.0);
        let p = Point::new(123.0, 456.0);
        let r = d.lookup(ServerId(1), p);
        let again = d.lookup(r.home, p);
        assert_eq!(again.hops, 0);
        assert_eq!(again.home, r.home);
    }

    #[test]
    fn lookups_terminate_and_agree() {
        let d = DhtDirectory::new(&servers(64), 10.0);
        for i in 0..50 {
            let p = Point::new(i as f64 * 13.7, i as f64 * 7.3);
            let a = d.lookup(ServerId(1), p);
            let b = d.lookup(ServerId(40), p);
            assert_eq!(a.home, b.home, "home must not depend on the start node");
            assert!(a.hops <= 64);
        }
    }

    #[test]
    fn hops_grow_logarithmically() {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let small = DhtDirectory::new(&servers(8), 10.0).mean_hops(world, 256);
        let large = DhtDirectory::new(&servers(512), 10.0).mean_hops(world, 256);
        assert!(
            large > small,
            "512 nodes ({large:.2} hops) must beat 8 ({small:.2})"
        );
        // Chord: ~½·log2(N) hops on average; allow generous slack but keep
        // the order of magnitude honest.
        assert!(large < 2.0 * 9.0, "mean hops {large:.2} should be O(log N)");
        assert!(small >= 0.5, "even 8 nodes need some routing");
    }

    #[test]
    fn same_cell_same_home() {
        let d = DhtDirectory::new(&servers(32), 50.0);
        let a = d.lookup(ServerId(3), Point::new(10.0, 10.0));
        let b = d.lookup(ServerId(5), Point::new(40.0, 40.0)); // same 50-cell
        assert_eq!(a.home, b.home);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn empty_ring_panics() {
        let _ = DhtDirectory::new(&[], 10.0);
    }
}
