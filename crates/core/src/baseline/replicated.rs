//! The tightly-coupled replication model of commercial MMOGs.
//!
//! §5: "Commercial MMOG systems ... allocate multiple tightly-coupled
//! (completely consistent) servers to handle the same partition, an
//! approach that is neither efficient nor very scalable." This module
//! quantifies that claim: with `k` fully consistent replicas of one
//! partition, *every* update must be processed by *every* replica plus a
//! synchronisation exchange, so adding servers buys fan-out capacity but
//! no update-processing capacity at all.

use serde::{Deserialize, Serialize};

/// Closed-form cost model of one partition served by `replicas`
/// tightly-coupled servers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReplicationModel {
    /// Number of fully consistent replicas.
    pub replicas: u32,
    /// Client update rate (packets per second per client).
    pub update_rate_hz: f64,
    /// Mean update size in bytes.
    pub update_bytes: f64,
    /// Per-server processing capacity in updates per second.
    pub server_capacity_ups: f64,
}

impl ReplicationModel {
    /// Updates per second each replica must process for `clients` players.
    ///
    /// Every replica sees every update (full consistency), so this does
    /// not fall as replicas are added — the scalability flaw the paper
    /// points at.
    pub fn per_replica_update_load(&self, clients: u32) -> f64 {
        clients as f64 * self.update_rate_hz
    }

    /// Inter-replica synchronisation traffic in bytes per second: each
    /// update is echoed to the other `k-1` replicas.
    pub fn sync_bandwidth_bytes(&self, clients: u32) -> f64 {
        let updates = self.per_replica_update_load(clients);
        updates * self.update_bytes * (self.replicas.saturating_sub(1)) as f64
    }

    /// Maximum clients the group can serve, limited by update processing.
    ///
    /// Independent of `replicas` — the headline inefficiency.
    pub fn max_clients(&self) -> u32 {
        (self.server_capacity_ups / self.update_rate_hz).floor() as u32
    }

    /// Maximum clients a *Matrix-style* split of the same hardware could
    /// serve, assuming the partition divides the client population evenly
    /// across `replicas` independent shards.
    pub fn max_clients_if_split(&self) -> u32 {
        self.max_clients().saturating_mul(self.replicas)
    }

    /// The efficiency ratio Matrix-style partitioning achieves over
    /// replication on identical hardware (≥ 1, grows linearly with k).
    pub fn split_advantage(&self) -> f64 {
        if self.max_clients() == 0 {
            return 1.0;
        }
        self.max_clients_if_split() as f64 / self.max_clients() as f64
    }
}

impl Default for ReplicationModel {
    fn default() -> Self {
        ReplicationModel {
            replicas: 2,
            update_rate_hz: 10.0,
            update_bytes: 100.0,
            server_capacity_ups: 30_000.0 * 10.0, // 30k clients at 10 Hz (§1's per-server limit)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replica_load_is_independent_of_replica_count() {
        let one = ReplicationModel {
            replicas: 1,
            ..ReplicationModel::default()
        };
        let four = ReplicationModel {
            replicas: 4,
            ..ReplicationModel::default()
        };
        assert_eq!(
            one.per_replica_update_load(1000),
            four.per_replica_update_load(1000)
        );
    }

    #[test]
    fn sync_bandwidth_grows_with_replicas() {
        let m2 = ReplicationModel {
            replicas: 2,
            ..ReplicationModel::default()
        };
        let m4 = ReplicationModel {
            replicas: 4,
            ..ReplicationModel::default()
        };
        assert!(m4.sync_bandwidth_bytes(1000) > m2.sync_bandwidth_bytes(1000));
        let m1 = ReplicationModel {
            replicas: 1,
            ..ReplicationModel::default()
        };
        assert_eq!(m1.sync_bandwidth_bytes(1000), 0.0);
    }

    #[test]
    fn max_clients_matches_paper_figure() {
        // §1: "each server can handle at most 30,000 clients".
        let m = ReplicationModel::default();
        assert_eq!(m.max_clients(), 30_000);
    }

    #[test]
    fn split_advantage_is_linear_in_group_size() {
        for k in 1..=8 {
            let m = ReplicationModel {
                replicas: k,
                ..ReplicationModel::default()
            };
            assert!((m.split_advantage() - k as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn zero_capacity_is_handled() {
        let m = ReplicationModel {
            server_capacity_ups: 0.0,
            ..ReplicationModel::default()
        };
        assert_eq!(m.max_clients(), 0);
        assert_eq!(m.split_advantage(), 1.0);
    }
}
