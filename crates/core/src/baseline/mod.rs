//! Comparison systems from the paper's related-work discussion.
//!
//! * [`dht`] — a Chord-style O(log N) lookup, the alternative the paper
//!   rejects for the forwarding path (§3.2.4: "DHT schemes usually need
//!   O(log N) lookups for N Matrix servers").
//! * [`replicated`] — the commercial-MMOG approach of tightly-coupled
//!   fully consistent server groups per partition (§5), whose bandwidth
//!   blow-up the replication model quantifies.
//!
//! The *static partitioning* baseline needs no extra code: it is the
//! ordinary [`crate::MatrixServer`] with
//! [`crate::MatrixConfig::static_baseline`] (adaptation disabled) and a
//! pre-built K-way [`matrix_geometry::PartitionMap::static_grid`].

pub mod dht;
pub mod replicated;

pub use dht::DhtDirectory;
pub use replicated::ReplicationModel;
