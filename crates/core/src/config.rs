//! Tunable parameters for the middleware components.

use matrix_geometry::{Metric, SplitStrategy};
use matrix_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// Which wire codec frames client-visible traffic.
///
/// Both codecs serialize the same messages; they differ in format and
/// cost. The runtime negotiates per connection (a binary `Hello` opens
/// v2; a JSON opener falls back to v1), so the knob chooses what a
/// node *speaks by preference* and which codec the simulation's byte
/// accounting measures frame sizes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WireCodec {
    /// Wire protocol v2: length-prefixed binary frames
    /// (`matrix_core::codec_v2`). The canonical codec.
    #[default]
    BinaryV2,
    /// Wire protocol v1: newline-delimited JSON (`matrix_core::codec`).
    /// The debug/interop codec — any language can speak it with no
    /// binary tooling.
    Json,
}

/// Configuration of a Matrix server's adaptive behaviour.
///
/// Defaults reproduce the paper's Figure-2 deployment: overload at 300
/// clients, underload below 150, with short hysteresis streaks as the
/// "simple heuristics to prevent oscillations" (§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MatrixConfig {
    /// Whether the server may split and reclaim at all. Disabling this
    /// turns the identical machinery into the static-partitioning baseline.
    pub adaptive: bool,
    /// Client count at which a game server counts as overloaded
    /// (Figure 2: "a server is overloaded when it has 300+ clients").
    pub overload_clients: u32,
    /// Client count below which a server counts as underloaded
    /// (Figure 2: "underloaded (< 150 clients)").
    pub underload_clients: u32,
    /// Receive-queue backlog (work units) that also flags overload, so CPU
    /// hotspots without many clients still trigger splits ("or via system
    /// performance measurements", §3.2.3).
    pub overload_backlog: f64,
    /// Consecutive overloaded load reports required before splitting.
    pub overload_streak: u32,
    /// Consecutive underloaded reports required before reclaiming a child.
    pub underload_streak: u32,
    /// A child is only reclaimed when the merged client count stays below
    /// `overload_clients * reclaim_headroom`, so a reclaim cannot
    /// immediately bounce back into a split (anti-oscillation heuristic,
    /// §3.2.3).
    pub reclaim_headroom: f64,
    /// Minimum time between adaptive actions on one server; prevents a
    /// freshly split server from immediately splitting or being reclaimed.
    pub cooldown: SimDuration,
    /// How the map is cut on a split.
    pub split_strategy: SplitStrategy,
    /// Interval between heartbeats to the coordinator.
    pub heartbeat_every: SimDuration,
    /// When true, `WhereIs` point-resolution queries are answered from the
    /// locally cached partition directory; when false every query goes to
    /// the coordinator (used by the E5 microbenchmark to measure MC load).
    pub resolve_locally: bool,
    /// When true, every active server pairs with a warm standby drawn
    /// from the resource pool and streams region state to it (see
    /// `GameServerConfig::replica_interval`); on the primary's liveness
    /// expiry the coordinator promotes the standby instead of handing
    /// the orphaned range to a neighbour.
    pub standby_replication: bool,
    /// Distance metric for range verification and exact-set fallbacks.
    pub metric: Metric,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        MatrixConfig {
            adaptive: true,
            overload_clients: 300,
            underload_clients: 150,
            overload_backlog: 5_000.0,
            overload_streak: 2,
            underload_streak: 3,
            reclaim_headroom: 0.7,
            cooldown: SimDuration::from_secs(5),
            split_strategy: SplitStrategy::SplitToLeft,
            heartbeat_every: SimDuration::from_secs(1),
            resolve_locally: true,
            standby_replication: false,
            metric: Metric::Euclidean,
        }
    }
}

impl MatrixConfig {
    /// The static-partitioning baseline: identical routing, no adaptation.
    pub fn static_baseline() -> MatrixConfig {
        MatrixConfig {
            adaptive: false,
            ..MatrixConfig::default()
        }
    }
}

/// Configuration of a game-server node (the developer-provided side,
/// emulated here).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GameServerConfig {
    /// Game tick interval (load reports and redirect sweeps run on ticks).
    pub tick: SimDuration,
    /// Load report sent to Matrix every `report_every_ticks` ticks
    /// (§3.2.2 "periodically reports its current load").
    pub report_every_ticks: u32,
    /// Per-client state transferred on a handoff (position, inventory,
    /// session), in bytes. The paper calls this "minimal".
    pub client_state_bytes: u64,
    /// Dynamic global state transferred to a newly split server (map
    /// objects such as trees and buildings), in bytes.
    pub global_state_bytes: u64,
    /// Whether load reports carry client positions, enabling the
    /// load-aware split strategy.
    pub report_positions: bool,
    /// Roaming hysteresis: a client is only handed off once it strays
    /// further than this outside the server's range, so crowds jittering
    /// on a partition boundary do not thrash between servers.
    pub handoff_margin: f64,
    /// Metric for in-game distances.
    pub metric: Metric,
    /// Per-client area-of-interest radius for update fan-out. `0.0`
    /// inherits the game's registered radius of visibility. Distinct from
    /// the consistency-set radius: routing between servers must stay
    /// conservative, but what each *client* renders can be narrower.
    pub vision_radius: f64,
    /// How long client-bound updates may coalesce before a
    /// `GameToClient::UpdateBatch` flush. Zero flushes on every event
    /// (one-item batches).
    pub batch_interval: SimDuration,
    /// Resolution of the interest grid: cells along each axis of the
    /// server's range. Larger values cut per-query candidates but raise
    /// per-move bookkeeping slightly. With `grid_autotune` on this is
    /// only the starting point — the tuner re-picks it from observed
    /// client density.
    pub cells_per_axis: u32,
    /// Concentric vision-ring boundaries (world units, ascending; `0.0`
    /// entries unused). When any radius is set, the rings *replace* the
    /// binary `vision_radius`: the outermost ring is the effective
    /// area-of-interest radius and each receiver is graded into the
    /// innermost ring containing its distance to the event. All zero
    /// (the default) keeps the single binary radius.
    pub ring_radii: [f64; matrix_interest::MAX_RINGS],
    /// Per-ring sampling rates parallel to `ring_radii`: a receiver in
    /// ring *i* gets every `ring_sample_rates[i]`-th event (1 = every
    /// event). The innermost ring is always delivered in full — near
    /// means every event — regardless of this entry.
    pub ring_sample_rates: [u32; matrix_interest::MAX_RINGS],
    /// Density-driven grid resolution auto-tuning: re-pick
    /// `cells_per_axis` from the observed client count (ratio
    /// hysteresis + observation streak guard against thrash; the tuned
    /// value replicates to warm standbys inside region snapshots).
    pub grid_autotune: bool,
    /// Dead-reckoning suppression (predictive dissemination): model
    /// each entity's velocity, ship it on batch items, and *suppress*
    /// updates for receivers whose extrapolation stays within the
    /// per-ring `error_budgets`. Off (the default) keeps the wire
    /// byte-identical to the prediction-free pipeline.
    pub predict: bool,
    /// Per-ring receiver error budgets in world units, parallel to
    /// `ring_radii` (`0.0` = never suppress in that ring). The near
    /// ring is pinned to `0.0` regardless — near means every event,
    /// preserving the rings' delivery guarantee. Only meaningful with
    /// `predict` on.
    pub error_budgets: [f64; matrix_interest::MAX_RINGS],
    /// Sliding-window length (observations) of the per-entity velocity
    /// estimator feeding prediction; clamped to ≥ 2.
    pub motion_window: u32,
    /// Fixed-point lattice shipped dead-reckoning velocities snap to,
    /// in world units per second (`0.0` = the origin lattice).
    /// Velocities tolerate a far coarser lattice than origins — the
    /// quantization drift over a basis lifetime stays well inside any
    /// usable ring budget — and every halving of the resolution
    /// shortens the tag on the JSON codec. Keep it a power-of-two
    /// multiple of `origin_quantum` so the binary codec's fixed-point
    /// velocity field carries the snapped value exactly.
    pub velocity_quantum: f64,
    /// Ring index from which batch items ship position-only (payload
    /// stripped, origin and velocity kept); `0` disables payload
    /// degradation. A far-ring entity's whereabouts matter for
    /// rendering, its full state rarely does.
    pub position_only_ring: u8,
    /// Whether client-bound update fan-out is emitted as real messages
    /// (true under the runtime, where clients are live connections) or
    /// only counted (discrete-event runs that model fan-out as load).
    pub emit_updates: bool,
    /// Per-client cap on items per `UpdateBatch` flush (`0` = unlimited).
    /// When a flush exceeds the cap, the least relevant (farthest)
    /// items are merged/dropped first, so crowded clients see a staler
    /// periphery instead of an unbounded queue.
    pub max_updates_per_flush: u32,
    /// Per-client byte budget per flush (`0` = unlimited), estimated
    /// against the absolute item wire size. Enforced in relevance order
    /// like `max_updates_per_flush`; at least one item always ships.
    pub client_budget_bytes: u32,
    /// Delta-compression keyframe interval: force an absolute-origin
    /// keyframe item at least every this many flushes per client.
    /// `0` disables delta encoding (every item absolute — the v1 wire
    /// format); `1` keyframes every flush but still delta-encodes items
    /// within a batch.
    pub keyframe_every: u32,
    /// Fixed-point resolution batch origins are snapped to before
    /// dissemination (`0.0` = no quantisation). Offsets between lattice
    /// origins are exact multiples of the quantum, so they genuinely fit
    /// the compact delta wire frame the byte accounting models; `1/256`
    /// of a world unit is far below any rendering-relevant precision.
    /// Use a power of two so the snapping arithmetic is exact in `f64`,
    /// and keep `quantum × keyframe threshold` within the 3-byte offset
    /// field (the defaults use 2²¹ of its ±2²³ range). The delta
    /// encoder's lattice check uses this same value.
    pub origin_quantum: f64,
    /// How often region state ships to the warm standby once one is
    /// assigned (splits the difference between replication overhead and
    /// how much session state a failover can lose). The first batch —
    /// and any batch after a standby resync — is a full
    /// `RegionSnapshot`; subsequent batches carry incremental ops.
    /// Replication itself is armed per server by
    /// `MatrixConfig::standby_replication`.
    pub replica_interval: SimDuration,
    /// Backlog bound for the replica log: once this many session ops
    /// queue unshipped, a batch ships immediately regardless of
    /// `replica_interval` (`0` = interval-only). Caps standby staleness
    /// under bursty load without shrinking the steady-state interval.
    pub replica_lag_cap: u32,
    /// Master telemetry switch: per-stage pipeline span timers, tick and
    /// flush latency histograms, the per-node flight recorder, and the
    /// telemetry snapshot attached to load reports (which then rides the
    /// heartbeat to the coordinator — snapshot cadence is therefore
    /// `report_every_ticks`). Off (the default), every instrumentation
    /// point is a branch-only no-op: no clock reads, no recording.
    pub telemetry: bool,
    /// Capacity of the per-node flight recorder ring, in events; older
    /// events are evicted (and counted) once it fills. Only meaningful
    /// with `telemetry` on. The coordinator's own recorder is always on
    /// and sized independently.
    pub telemetry_events: u32,
    /// Which wire codec frames the client-facing protocol — and, in the
    /// simulation, which codec the byte accounting measures frame sizes
    /// from (`docs/WIRE.md`).
    pub codec: WireCodec,
    /// Whether binary frames carry the CRC32 trailer (4 bytes per
    /// frame). On by default: corrupted frames are then rejected and
    /// the stream resynchronizes at the next magic boundary. Ignored by
    /// the JSON codec.
    pub frame_crc: bool,
    /// Number of shards the dissemination flush is partitioned into
    /// (clamped to ≥ 1). Per-client send-path state (delta streams,
    /// sampling phase, prediction mirrors, queued batches) lives in
    /// `flush_workers` independent shards keyed by a stable client-id
    /// hash; under the async runtime each shard flushes on its own
    /// worker thread. The flush output is byte-identical for any value
    /// — this is purely a throughput knob. `1` (the default) is the
    /// sequential single-shard path.
    pub flush_workers: u32,
    /// Causal trace sampling: every `trace_sample_rate`-th ingested
    /// event (by the node's event sequence number, deterministically) is
    /// stamped with a [`matrix_telemetry::TraceTag`] that rides the
    /// pipeline and the wire; receiving clients echo per-item delivery
    /// latency and staleness-at-apply back as trace acks. `0` (the
    /// default) disables the trace plane entirely — no stamping, no
    /// suppression charging, untagged wire frames stay byte-identical.
    /// Independent of the `telemetry` master switch so traced runs can
    /// skip span clocks, but the ack histograms only surface through
    /// telemetry snapshots, so end-to-end runs enable both.
    pub trace_sample_rate: u32,
    /// Slow-flush capture threshold in µs (`0` = off): when a whole
    /// flush takes longer than this, that flush's per-stage, per-shard
    /// span breakdown is dumped into the node's flight recorder as
    /// [`matrix_telemetry::EventKind::SlowFlush`] events (one per
    /// shard). Needs `telemetry` on — the spans are the data source.
    pub slow_flush_threshold_us: u64,
}

impl Default for GameServerConfig {
    fn default() -> Self {
        GameServerConfig {
            tick: SimDuration::from_millis(100),
            report_every_ticks: 10,
            client_state_bytes: 2_048,
            global_state_bytes: 4_000_000,
            report_positions: true,
            handoff_margin: 0.0,
            metric: Metric::Euclidean,
            vision_radius: 0.0,
            batch_interval: SimDuration::from_millis(50),
            cells_per_axis: 32,
            ring_radii: [0.0; matrix_interest::MAX_RINGS],
            ring_sample_rates: [1; matrix_interest::MAX_RINGS],
            grid_autotune: false,
            predict: false,
            error_budgets: [0.0; matrix_interest::MAX_RINGS],
            motion_window: 4,
            velocity_quantum: 0.125,
            position_only_ring: 0,
            emit_updates: false,
            max_updates_per_flush: 128,
            client_budget_bytes: 0,
            keyframe_every: 8,
            origin_quantum: 1.0 / 256.0,
            replica_interval: SimDuration::from_millis(200),
            replica_lag_cap: 256,
            telemetry: false,
            telemetry_events: 256,
            codec: WireCodec::BinaryV2,
            frame_crc: true,
            flush_workers: 1,
            trace_sample_rate: 0,
            slow_flush_threshold_us: 0,
        }
    }
}

impl GameServerConfig {
    /// Copies ring tiers from slice form (as game specs carry them) into
    /// the fixed-size config arrays, truncating to
    /// [`matrix_interest::MAX_RINGS`] tiers. Missing rates default to 1.
    pub fn set_rings(&mut self, radii: &[f64], rates: &[u32]) {
        self.ring_radii = [0.0; matrix_interest::MAX_RINGS];
        self.ring_sample_rates = [1; matrix_interest::MAX_RINGS];
        for (i, r) in radii.iter().take(matrix_interest::MAX_RINGS).enumerate() {
            self.ring_radii[i] = *r;
            self.ring_sample_rates[i] = rates.get(i).copied().unwrap_or(1).max(1);
        }
    }

    /// Whether multi-ring AOI tiering is configured (any ring radius
    /// set).
    pub fn rings_configured(&self) -> bool {
        self.ring_radii.iter().any(|r| *r > 0.0)
    }

    /// Copies per-ring error budgets from slice form (as game specs
    /// carry them) into the fixed-size config array, truncating to
    /// [`matrix_interest::MAX_RINGS`]. Missing entries stay `0.0`
    /// (never suppress).
    pub fn set_error_budgets(&mut self, budgets: &[f64]) {
        self.error_budgets = [0.0; matrix_interest::MAX_RINGS];
        for (slot, b) in self.error_budgets.iter_mut().zip(budgets) {
            *slot = b.max(0.0);
        }
    }
}

/// Configuration of the Matrix Coordinator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoordinatorConfig {
    /// A server missing heartbeats for this long is declared dead and its
    /// partition reassigned.
    pub heartbeat_timeout: SimDuration,
    /// Whether a dead server with a registered warm standby is failed
    /// over (the standby promoted in place, clients kept) rather than
    /// absorbed by a neighbour. Disable to measure the absorb-only
    /// baseline with replication still running.
    pub failover: bool,
    /// Distance metric used when building overlap tables.
    pub metric: Metric,
    /// Per-ring freshness SLO targets and error budget
    /// ([`matrix_telemetry::SloTargets`]). Fed by the per-ring
    /// staleness histograms riding node heartbeats (which exist only
    /// when nodes run with `telemetry` on and a non-zero
    /// `trace_sample_rate`); all-zero targets (the default) disable the
    /// tracker.
    pub slo: matrix_telemetry::SloTargets,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            heartbeat_timeout: SimDuration::from_secs(5),
            failover: true,
            metric: Metric::Euclidean,
            slo: matrix_telemetry::SloTargets::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_figure_2_thresholds() {
        let c = MatrixConfig::default();
        assert_eq!(c.overload_clients, 300);
        assert_eq!(c.underload_clients, 150);
        assert!(c.adaptive);
    }

    #[test]
    fn static_baseline_disables_adaptation_only() {
        let c = MatrixConfig::static_baseline();
        assert!(!c.adaptive);
        assert_eq!(c.overload_clients, MatrixConfig::default().overload_clients);
    }

    #[test]
    fn rings_default_off_and_copy_from_slices() {
        let mut c = GameServerConfig::default();
        assert!(!c.rings_configured(), "binary radius by default");
        c.set_rings(&[35.0, 65.0, 100.0], &[1, 2]);
        assert!(c.rings_configured());
        assert_eq!(c.ring_radii[..3], [35.0, 65.0, 100.0]);
        assert_eq!(
            c.ring_sample_rates[..3],
            [1, 2, 1],
            "missing rates default to every-event"
        );
        c.set_rings(&[], &[]);
        assert!(!c.rings_configured(), "clearing restores the binary path");
    }

    #[test]
    fn predict_defaults_off_and_budgets_copy_from_slices() {
        let mut c = GameServerConfig::default();
        assert!(!c.predict, "prediction is opt-in");
        assert_eq!(c.error_budgets, [0.0; matrix_interest::MAX_RINGS]);
        assert_eq!(c.position_only_ring, 0, "payload degradation is opt-in");
        c.set_error_budgets(&[0.0, 2.0, 4.0]);
        assert_eq!(c.error_budgets[..3], [0.0, 2.0, 4.0]);
        c.set_error_budgets(&[-1.0]);
        assert_eq!(
            c.error_budgets,
            [0.0; matrix_interest::MAX_RINGS],
            "negative budgets clamp to never-suppress and the rest clears"
        );
    }

    #[test]
    fn hysteresis_requires_multiple_reports() {
        let c = MatrixConfig::default();
        assert!(
            c.overload_streak >= 2,
            "splits must not fire on a single spike"
        );
        assert!(
            c.underload_streak >= 2,
            "reclaims must not fire on a single dip"
        );
    }
}
