//! Spatially tagged game packets — the only game data Matrix ever sees.
//!
//! §3.1: game developers "merely forward all game packets, appropriately
//! tagged with the spatial coordinates (in the game world) of the packet's
//! origin and destination, to the local Matrix server". Matrix routes on
//! the tag alone and never inspects the payload, which is how it supports
//! any game without understanding its logic.

use bytes::Bytes;
use matrix_geometry::Point;
use serde::{Deserialize, Serialize};

/// Identifier of a game client (player).
///
/// §3.2.2 requires games to identify players with globally unique IDs
/// (callsigns) rather than per-server IDs; this newtype is that global id.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ClientId(pub u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Stable shard routing for the sharded flush engine: the global id
/// itself is the hash, so a client lands in the same shard on every
/// node and every run — which is what lets region snapshots re-route
/// per-client state between primaries and standbys whose
/// `flush_workers` differ.
impl matrix_interest::ShardKey for ClientId {
    fn shard_hash(&self) -> u64 {
        self.0
    }
}

/// The spatial tag a game server attaches to every packet it forwards.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpatialTag {
    /// Where in the game world the event originated.
    pub origin: Point,
    /// Optional explicit destination for non-proximal interactions
    /// (teleports, long-range spells); routed via the coordinator.
    pub dest: Option<Point>,
    /// Per-packet visibility-radius override. `None` uses the radius the
    /// game registered; `Some(r)` uses the overlap tables built for `r`
    /// (the API's "different visibility radii for exceptions", §3.1).
    pub radius_override: Option<f64>,
}

impl SpatialTag {
    /// Tag for an ordinary proximal event at `origin`.
    pub fn at(origin: Point) -> SpatialTag {
        SpatialTag {
            origin,
            dest: None,
            radius_override: None,
        }
    }

    /// Tag for a non-proximal interaction from `origin` to `dest`.
    pub fn towards(origin: Point, dest: Point) -> SpatialTag {
        SpatialTag {
            origin,
            dest: Some(dest),
            radius_override: None,
        }
    }

    /// Applies a visibility-radius override.
    pub fn with_radius(mut self, radius: f64) -> SpatialTag {
        self.radius_override = Some(radius);
        self
    }
}

/// A game packet as seen by the middleware: tag, originating client, and
/// an opaque payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GamePacket {
    /// The client whose action produced the packet, if any (server-generated
    /// events such as weather carry `None`).
    pub client: Option<ClientId>,
    /// Spatial routing tag.
    pub tag: SpatialTag,
    /// Opaque game payload. Matrix never parses it.
    pub payload: Bytes,
    /// Monotone per-origin sequence number, used for duplicate suppression
    /// in tests and loss accounting in experiments.
    pub seq: u64,
}

impl GamePacket {
    /// Builds a packet with an empty payload of the given advertised size.
    ///
    /// Experiments only need packet *sizes* for bandwidth accounting; real
    /// deployments put actual game data in `payload`.
    pub fn synthetic(client: ClientId, tag: SpatialTag, size: usize, seq: u64) -> GamePacket {
        GamePacket {
            client: Some(client),
            tag,
            payload: Bytes::from(vec![0u8; size]),
            seq,
        }
    }

    /// Total size used for bandwidth accounting: payload plus the tag/header
    /// overhead Matrix adds on the wire.
    pub fn wire_size(&self) -> usize {
        self.payload.len() + Self::HEADER_BYTES
    }

    /// Serialised header overhead: client id, tag, sequence number.
    pub const HEADER_BYTES: usize = 48;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_constructors() {
        let p = Point::new(1.0, 2.0);
        let t = SpatialTag::at(p);
        assert_eq!(t.origin, p);
        assert_eq!(t.dest, None);
        assert_eq!(t.radius_override, None);

        let t = SpatialTag::towards(p, Point::new(9.0, 9.0)).with_radius(5.0);
        assert_eq!(t.dest, Some(Point::new(9.0, 9.0)));
        assert_eq!(t.radius_override, Some(5.0));
    }

    #[test]
    fn synthetic_packet_sizes() {
        let pkt = GamePacket::synthetic(ClientId(7), SpatialTag::at(Point::ORIGIN), 100, 1);
        assert_eq!(pkt.payload.len(), 100);
        assert_eq!(pkt.wire_size(), 100 + GamePacket::HEADER_BYTES);
        assert_eq!(pkt.client, Some(ClientId(7)));
    }

    #[test]
    fn client_id_display() {
        assert_eq!(ClientId(42).to_string(), "c42");
    }
}
