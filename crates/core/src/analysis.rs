//! The paper's asymptotic scalability analysis (§4.2, experiment E8).
//!
//! The paper reports a "simplistic asymptotic analysis" concluding that
//! (a) Matrix scales past 1,000,000 players on 10,000 servers *only if*
//! the overlap-region population stays small relative to the total, and
//! (b) scalability is ultimately bounded by per-server I/O capacity. This
//! module is that model in closed form, for the E8 sweep to evaluate.
//!
//! Geometry: with `s` equal square partitions tiling a square world of
//! side `L`, each partition has side `ℓ = L/√s`, and the overlap band of
//! width `R` along its periphery has area `≈ 4ℓR` (ignoring the corner
//! double-count, capped at the partition area). With uniformly scattered
//! players, the overlap fraction is therefore `min(1, 4R√s / L)` — it
//! *grows* with the server count, which is exactly why the analysis puts
//! a ceiling on useful fleet sizes.

use serde::{Deserialize, Serialize};

/// Parameters of the closed-form scalability model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalabilityModel {
    /// Side length of the (square) game world, in world units.
    pub world_side: f64,
    /// Radius of visibility, world units.
    pub radius: f64,
    /// Per-player update rate, packets per second.
    pub update_rate_hz: f64,
    /// Mean update size on the wire, bytes.
    pub update_bytes: f64,
    /// Per-server I/O capacity, bytes per second (NIC + kernel budget).
    pub server_io_bytes_per_sec: f64,
    /// Mean number of peer servers that share each overlap point
    /// (1 for edge bands; rises towards 3 near corners). Used as the
    /// fan-out multiplier for overlap traffic.
    pub overlap_fanout: f64,
}

impl Default for ScalabilityModel {
    fn default() -> Self {
        ScalabilityModel {
            world_side: 500_000.0,
            radius: 200.0,
            update_rate_hz: 10.0,
            update_bytes: 120.0,
            server_io_bytes_per_sec: 125_000_000.0, // 1 Gbps
            overlap_fanout: 1.2,
        }
    }
}

/// Per-server traffic breakdown for one point of the parameter space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrafficBreakdown {
    /// Players on this server.
    pub players_per_server: f64,
    /// Fraction of the partition area covered by overlap regions.
    pub overlap_fraction: f64,
    /// Bytes/s of ordinary client traffic (in + echoed state).
    pub client_bytes: f64,
    /// Bytes/s of inter-Matrix-server consistency traffic.
    pub overlap_bytes: f64,
    /// Bytes/s of downstream fan-out: every local client receives every
    /// event within its radius, so this term scales with the *global*
    /// player density — the dominant I/O cost at scale.
    pub fanout_bytes: f64,
    /// Mean number of players visible to one player.
    pub visible_neighbours: f64,
    /// Total bytes/s against the I/O budget.
    pub total_bytes: f64,
    /// `total_bytes / server_io_bytes_per_sec`.
    pub io_utilisation: f64,
}

impl ScalabilityModel {
    /// Overlap-band fraction of each partition with `servers` equal square
    /// shards (clamped to 1 when bands swallow whole partitions).
    pub fn overlap_fraction(&self, servers: u32) -> f64 {
        if servers <= 1 {
            return 0.0;
        }
        let side = self.world_side / (servers as f64).sqrt();
        (4.0 * self.radius / side).min(1.0)
    }

    /// Mean number of players inside one player's radius of visibility,
    /// assuming a uniform spread.
    pub fn visible_neighbours(&self, players: u64) -> f64 {
        let area = self.world_side * self.world_side;
        let disc = std::f64::consts::PI * self.radius * self.radius;
        (players as f64 * disc / area).min(players as f64)
    }

    /// Traffic breakdown for `players` spread uniformly over `servers`.
    pub fn breakdown(&self, players: u64, servers: u32) -> TrafficBreakdown {
        let servers = servers.max(1);
        let per_server = players as f64 / servers as f64;
        let f = self.overlap_fraction(servers);
        let per_player_bytes = self.update_rate_hz * self.update_bytes;
        // Client traffic: receive every local player's updates once.
        let client_bytes = per_server * per_player_bytes;
        // Overlap traffic: players inside the band generate updates that
        // also cross to `overlap_fanout` peers; symmetric inbound applies.
        let overlap_bytes = 2.0 * per_server * f * per_player_bytes * self.overlap_fanout;
        // Downstream fan-out: every local player receives every event in
        // their visibility disc. Grows with global density × R², which is
        // what ultimately saturates per-server I/O.
        let neighbours = self.visible_neighbours(players);
        let fanout_bytes = per_server * neighbours * per_player_bytes;
        let total = client_bytes + overlap_bytes + fanout_bytes;
        TrafficBreakdown {
            players_per_server: per_server,
            overlap_fraction: f,
            client_bytes,
            overlap_bytes,
            fanout_bytes,
            visible_neighbours: neighbours,
            total_bytes: total,
            io_utilisation: total / self.server_io_bytes_per_sec,
        }
    }

    /// Whether the configuration fits inside every server's I/O budget.
    pub fn feasible(&self, players: u64, servers: u32) -> bool {
        self.breakdown(players, servers).io_utilisation <= 1.0
    }

    /// Largest supportable player count with `servers` shards (binary
    /// search over the monotone feasibility predicate).
    pub fn max_players(&self, servers: u32) -> u64 {
        let mut lo = 0u64;
        let mut hi = 1u64 << 40;
        while lo < hi {
            let mid = lo + (hi - lo).div_ceil(2);
            if self.feasible(mid, servers) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    /// The paper's headline check: can 1M players run on 10k servers?
    pub fn paper_headline_feasible(&self) -> bool {
        self.feasible(1_000_000, 10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_server_has_no_overlap() {
        let m = ScalabilityModel::default();
        assert_eq!(m.overlap_fraction(1), 0.0);
        let b = m.breakdown(1000, 1);
        assert_eq!(b.overlap_bytes, 0.0);
    }

    #[test]
    fn overlap_fraction_grows_with_servers() {
        let m = ScalabilityModel::default();
        assert!(m.overlap_fraction(100) < m.overlap_fraction(10_000));
        assert!(m.overlap_fraction(10_000) < m.overlap_fraction(1_000_000).max(1.0) + 1e-12);
    }

    #[test]
    fn overlap_fraction_caps_at_one() {
        let m = ScalabilityModel {
            radius: 1e9,
            ..ScalabilityModel::default()
        };
        assert_eq!(m.overlap_fraction(4), 1.0);
    }

    #[test]
    fn paper_headline_holds_for_default_parameters() {
        // 1M players / 10k servers = 100 players per server at ~1.2 KB/s
        // each: trivially inside a 1 Gbps budget when overlap stays small.
        let m = ScalabilityModel::default();
        let b = m.breakdown(1_000_000, 10_000);
        assert!(
            b.overlap_fraction < 0.2,
            "overlap fraction {}",
            b.overlap_fraction
        );
        assert!(m.paper_headline_feasible());
    }

    #[test]
    fn huge_radius_breaks_the_headline() {
        // When the visibility radius is so large that overlap regions
        // dominate, the paper's precondition fails and scaling collapses.
        let m = ScalabilityModel {
            radius: 20_000.0,
            update_bytes: 50_000.0,
            ..ScalabilityModel::default()
        };
        let b = m.breakdown(1_000_000, 10_000);
        assert_eq!(b.overlap_fraction, 1.0);
        assert!(!m.paper_headline_feasible());
    }

    #[test]
    fn max_players_is_monotone_in_servers_until_overlap_bites() {
        let m = ScalabilityModel::default();
        let p100 = m.max_players(100);
        let p1000 = m.max_players(1000);
        assert!(p1000 > p100, "{p1000} vs {p100}");
    }

    #[test]
    fn feasibility_is_monotone_in_players() {
        let m = ScalabilityModel::default();
        let max = m.max_players(1000);
        assert!(m.feasible(max, 1000));
        assert!(!m.feasible(max + max / 10 + 1, 1000));
    }

    #[test]
    fn io_bound_is_the_binding_constraint() {
        // More I/O capacity buys more players. The gain is sublinear
        // because the fan-out term is quadratic in the population.
        let m = ScalabilityModel::default();
        let m2 = ScalabilityModel {
            server_io_bytes_per_sec: m.server_io_bytes_per_sec * 2.0,
            ..m
        };
        let a = m.max_players(100) as f64;
        let b = m2.max_players(100) as f64;
        let ratio = b / a;
        assert!((1.3..=2.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn fanout_dominates_at_high_density() {
        let m = ScalabilityModel::default();
        let b = m.breakdown(100_000_000, 10_000);
        assert!(
            b.fanout_bytes > b.client_bytes,
            "fan-out must dominate dense worlds"
        );
    }
}
