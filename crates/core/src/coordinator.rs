//! The Matrix Coordinator (MC) — §3.2.4.
//!
//! The MC owns the authoritative partition directory. On every topology
//! change (registration, split, reclaim, failure) it recomputes the overlap
//! regions with axis-aligned bounding-box arithmetic and pushes each server
//! its table. It is deliberately *off* the latency-critical forwarding
//! path: packet routing uses the distributed tables, and the MC is only
//! consulted for rare non-proximal interactions and topology changes —
//! which is why the paper argues a central MC scales.

use crate::config::CoordinatorConfig;
use crate::messages::{CoordMsg, CoordReply};
use matrix_geometry::{build_overlap, consistency_set, OverlapMap, PartitionMap, Rect, ServerId};
use matrix_sim::SimTime;
use matrix_telemetry::{EventKind, FlightRecorder, SloTracker, TelemetrySnapshot, SLO_RINGS};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An effect the coordinator asks its driver to carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordAction {
    /// Send a reply to a Matrix server.
    Send(ServerId, CoordReply),
}

/// Counters for the E5 microbenchmark (coordinator overhead).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoordinatorStats {
    /// Overlap-table recomputations performed.
    pub recomputes: u64,
    /// Individual table messages pushed to servers.
    pub tables_sent: u64,
    /// Point-resolution queries served.
    pub resolves: u64,
    /// Splits recorded.
    pub splits_seen: u64,
    /// Reclaims recorded.
    pub reclaims_seen: u64,
    /// Servers declared dead after missing heartbeats.
    pub failures_declared: u64,
    /// Failures recovered by promoting a warm standby (a subset of
    /// `failures_declared`): the region and its clients survived.
    pub failovers: u64,
    /// Warm standbys declared dead (their primaries were told to
    /// re-pair).
    pub standbys_lost: u64,
    /// Directory divergences tolerated: a reported split/reclaim did
    /// not match the directory and the coordinator resynchronised
    /// instead of failing. Chaos runs watch this counter (and the log
    /// hook) rather than stderr.
    pub divergences: u64,
    /// Targeted table re-pushes triggered by stale-epoch heartbeats.
    pub table_refreshes: u64,
    /// Freshness-SLO breach edges recorded: a ring's error-budget burn
    /// rate crossed 1.0 (each also lands in the flight recorder).
    pub slo_breaches: u64,
}

/// The shared function type behind a [`CoordLog`] hook.
type LogFn = Arc<dyn Fn(&str) + Send + Sync>;

/// Diagnostic sink for divergence and failure logs. `None` is silent —
/// the counters in [`CoordinatorStats`] always record regardless.
#[derive(Clone, Default)]
pub struct CoordLog(Option<LogFn>);

impl CoordLog {
    /// A hook forwarding every diagnostic line to `f`.
    pub fn new(f: impl Fn(&str) + Send + Sync + 'static) -> CoordLog {
        CoordLog(Some(Arc::new(f)))
    }

    fn emit(&self, msg: impl FnOnce() -> String) {
        if let Some(hook) = &self.0 {
            hook(&msg());
        }
    }
}

impl std::fmt::Debug for CoordLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "CoordLog(hooked)"
        } else {
            "CoordLog(silent)"
        })
    }
}

/// The coordinator state machine.
#[derive(Debug, Clone)]
pub struct Coordinator {
    cfg: CoordinatorConfig,
    world: Option<Rect>,
    radius: f64,
    extra_radii: Vec<f64>,
    map: Option<PartitionMap>,
    overlap: Option<OverlapMap>,
    extra_overlaps: Vec<(f64, OverlapMap)>,
    epoch: u64,
    heartbeats: BTreeMap<ServerId, SimTime>,
    /// Parent relationships learned from splits, used to pick an heir on
    /// failure.
    parents: BTreeMap<ServerId, ServerId>,
    /// Warm-standby pairings (primary → standby) announced by primaries;
    /// a dead primary with an entry here is failed over, not absorbed.
    standbys: BTreeMap<ServerId, ServerId>,
    log: CoordLog,
    stats: CoordinatorStats,
    /// Structured topology events (splits, reclaims, failovers, …).
    /// Always on: the coordinator is off the hot path, and the cluster's
    /// failure timeline must exist even when node telemetry is off.
    recorder: FlightRecorder,
    /// Latest telemetry snapshot per node, delivered on heartbeats.
    telemetry: BTreeMap<ServerId, TelemetrySnapshot>,
    /// Cluster-wide freshness SLO accounting over the per-ring staleness
    /// histograms the trace plane ships on heartbeats. Inert (every
    /// observation is a no-op) unless `cfg.slo` names a target.
    slo: SloTracker,
    /// Last cumulative `(samples, over-target)` seen per server per ring
    /// — heartbeat snapshots are cumulative, the tracker wants deltas.
    slo_last: BTreeMap<ServerId, [(u64, u64); SLO_RINGS]>,
}

impl Coordinator {
    /// Creates an empty coordinator awaiting the first registration.
    pub fn new(cfg: CoordinatorConfig) -> Coordinator {
        let slo = SloTracker::new(cfg.slo);
        Coordinator {
            cfg,
            world: None,
            radius: 0.0,
            extra_radii: Vec::new(),
            map: None,
            overlap: None,
            extra_overlaps: Vec::new(),
            epoch: 0,
            heartbeats: BTreeMap::new(),
            parents: BTreeMap::new(),
            standbys: BTreeMap::new(),
            log: CoordLog::default(),
            stats: CoordinatorStats::default(),
            recorder: FlightRecorder::new(1024),
            telemetry: BTreeMap::new(),
            slo,
            slo_last: BTreeMap::new(),
        }
    }

    /// Installs a diagnostic log hook (divergences, failure
    /// declarations, failovers). Without one the coordinator is silent;
    /// the [`CoordinatorStats`] counters record either way.
    pub fn set_log_hook(&mut self, log: CoordLog) {
        self.log = log;
    }

    /// Records a directory divergence: counted, and reported through
    /// the log hook when one is installed.
    fn note_divergence(&mut self, now: SimTime, msg: impl FnOnce() -> String) {
        self.stats.divergences += 1;
        self.recorder.record(now, EventKind::Divergence);
        self.log.emit(msg);
    }

    /// Bootstraps with a pre-built multi-server map (static baseline and
    /// test fixtures), immediately producing tables for every server.
    pub fn with_map(
        cfg: CoordinatorConfig,
        map: PartitionMap,
        radius: f64,
    ) -> (Coordinator, Vec<CoordAction>) {
        let mut c = Coordinator::new(cfg);
        c.world = Some(map.world());
        c.radius = radius;
        c.map = Some(map);
        let actions = c.recompute();
        (c, actions)
    }

    /// Current partition directory.
    pub fn map(&self) -> Option<&PartitionMap> {
        self.map.as_ref()
    }

    /// Current table epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Counters for experiments.
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// The cluster-wide flight recorder of structured topology events.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Feeds one node's freshly-arrived staleness histograms into the
    /// freshness SLO tracker. Heartbeat telemetry is cumulative, so the
    /// tracker is fed the *delta* against the last observation for this
    /// server — per ring: traced samples applied since then, and how
    /// many were over the ring's target (bucket precision). A breach
    /// edge (burn rate crossing 1.0) lands in the flight recorder.
    fn observe_slo(&mut self, now: SimTime, server: ServerId) {
        if !self.slo.enabled() {
            return;
        }
        let Some(snap) = self.telemetry.get(&server) else {
            return;
        };
        let mut cumulative = [(0u64, 0u64); SLO_RINGS];
        for (ring, slot) in cumulative.iter_mut().enumerate() {
            let target = self.slo.target_us(ring as u8);
            if target == 0 {
                continue;
            }
            if let Some(h) = snap.get_hist(&format!("staleness_r{ring}_us")) {
                *slot = (h.count, h.to_histogram().count_over(target as f64));
            }
        }
        let last = self.slo_last.entry(server).or_default();
        for ring in 0..SLO_RINGS {
            let (total, over) = cumulative[ring];
            let (last_total, last_over) = last[ring];
            // A promoted/restarted node restarts its histograms; the
            // saturating delta treats the shrunk totals as "no news"
            // instead of wrapping.
            let d_samples = total.saturating_sub(last_total);
            let d_over = over.saturating_sub(last_over);
            last[ring] = (total, over);
            if d_samples == 0 {
                continue;
            }
            if let Some(burn_bp) = self.slo.observe(ring as u8, d_samples, d_over) {
                self.stats.slo_breaches += 1;
                self.recorder.record(
                    now,
                    EventKind::SloBreach {
                        ring: ring as u8,
                        burn_bp,
                    },
                );
                self.log.emit(|| {
                    format!("slo breach: ring {ring} burning at {burn_bp}bp (10000bp = budget)")
                });
            }
        }
    }

    /// The cluster-wide freshness SLO tracker (inert unless
    /// [`crate::config::CoordinatorConfig::slo`] names a target).
    pub fn slo(&self) -> &SloTracker {
        &self.slo
    }

    /// The SLO plane's stats-endpoint face: `slo_*` counters per tracked
    /// ring (empty when the tracker is disabled or has no samples).
    pub fn slo_snapshot(&self) -> TelemetrySnapshot {
        self.slo.snapshot()
    }

    /// The latest telemetry snapshot each node shipped on a heartbeat,
    /// id-ascending. Empty until nodes run with telemetry on.
    pub fn node_telemetry(&self) -> impl Iterator<Item = (ServerId, &TelemetrySnapshot)> {
        self.telemetry.iter().map(|(s, t)| (*s, t))
    }

    /// All node snapshots folded into one cluster aggregate.
    pub fn merged_telemetry(&self) -> TelemetrySnapshot {
        let mut merged = TelemetrySnapshot::new();
        for snap in self.telemetry.values() {
            merged.merge(snap);
        }
        merged
    }

    /// Number of live servers in the directory.
    pub fn server_count(&self) -> usize {
        self.map.as_ref().map_or(0, |m| m.len())
    }

    /// Handles one message from a Matrix server.
    pub fn handle(&mut self, now: SimTime, msg: CoordMsg) -> Vec<CoordAction> {
        match msg {
            CoordMsg::RegisterWorld {
                server,
                world,
                radius,
            } => {
                self.heartbeats.insert(server, now);
                if self.map.is_none() {
                    self.world = Some(world);
                    self.radius = radius;
                    self.map = Some(PartitionMap::new(world, server));
                }
                self.recompute()
            }
            CoordMsg::RegisterRadius { server: _, radius } => {
                if !self
                    .extra_radii
                    .iter()
                    .any(|r| r.to_bits() == radius.to_bits())
                {
                    self.extra_radii.push(radius);
                }
                self.recompute()
            }
            CoordMsg::SplitOccurred {
                parent,
                child,
                parent_range,
                child_range,
            } => {
                self.stats.splits_seen += 1;
                self.recorder
                    .record(now, EventKind::Split { parent, child });
                self.heartbeats.insert(child, now);
                self.parents.insert(child, parent);
                if let Some(map) = &mut self.map {
                    // Reconstruct the move: the directory must mirror what
                    // the splitting server decided locally.
                    let _ = parent_range;
                    if map.contains_server(parent) && !map.contains_server(child) {
                        // Apply by direct surgery: shrink parent, add child.
                        let ok = Self::apply_split(map, parent, child, parent_range, child_range);
                        if !ok {
                            let dir = map.range_of(parent);
                            self.note_divergence(now, || {
                                format!(
                                    "split {parent}->{child}: dir={dir:?} report \
                                     par={parent_range:?} child={child_range:?}"
                                )
                            });
                        }
                    } else {
                        let (p, c) = (map.contains_server(parent), map.contains_server(child));
                        self.note_divergence(now, || {
                            format!(
                                "split skipped {parent}->{child}: parent in dir={p} \
                                 child in dir={c}"
                            )
                        });
                    }
                }
                self.recompute()
            }
            CoordMsg::StandbyAssigned { primary, standby } => {
                self.recorder
                    .record(now, EventKind::StandbyAssign { primary, standby });
                self.standbys.insert(primary, standby);
                // Watch the standby's liveness from the moment of the
                // pairing (its own heartbeats refresh this). A plain
                // insert, not or_insert: the server id may carry a stale
                // heartbeat from a previous life, and starting the watch
                // in the past would declare the fresh pairing dead on
                // the next sweep.
                self.heartbeats.insert(standby, now);
                Vec::new()
            }
            CoordMsg::ReclaimOccurred {
                parent,
                child,
                merged_range,
            } => {
                self.stats.reclaims_seen += 1;
                self.recorder
                    .record(now, EventKind::Reclaim { parent, child });
                self.heartbeats.remove(&child);
                self.parents.remove(&child);
                self.standbys.remove(&child);
                if let Some(map) = &mut self.map {
                    if map.contains_server(child) {
                        if let Err(e) = map.reclaim(parent, child) {
                            let (p, c) = (map.range_of(parent), map.range_of(child));
                            self.note_divergence(now, || {
                                format!(
                                    "reclaim {parent}<-{child}: {e}; dir parent={p:?} \
                                     child={c:?} reported merged={merged_range:?}"
                                )
                            });
                        }
                    } else {
                        self.note_divergence(now, || {
                            format!("reclaim: child {child} not in directory")
                        });
                    }
                    let merged = self.map.as_ref().and_then(|m| m.range_of(parent));
                    if merged != Some(merged_range) {
                        // Tolerated, like every divergence: the directory
                        // resynchronises on the next topology report.
                        self.note_divergence(now, || {
                            format!(
                                "reclaim {parent}<-{child}: dir merged={merged:?} \
                                 reported={merged_range:?}"
                            )
                        });
                    }
                }
                self.recompute()
            }
            CoordMsg::Heartbeat {
                server,
                epoch,
                telemetry,
            } => {
                self.heartbeats.insert(server, now);
                if let Some(snap) = telemetry {
                    // Snapshots are cumulative; latest wins.
                    self.telemetry.insert(server, *snap);
                    self.observe_slo(now, server);
                }
                // Anti-entropy: a server routing with stale tables (a lost
                // or delayed push) gets a targeted refresh instead of
                // waiting for the next topology change.
                if epoch < self.epoch
                    && self.map.as_ref().is_some_and(|m| m.contains_server(server))
                {
                    self.stats.table_refreshes += 1;
                    return self.tables_for(server).into_iter().collect();
                }
                Vec::new()
            }
            CoordMsg::OrphanRange {
                parent: _,
                child,
                range,
            } => {
                // The retired child's range needs a mergeable owner. Reuse
                // the failure-absorption machinery: pick an heir among the
                // child's mergeable neighbours and instruct it to absorb.
                self.recorder.record(now, EventKind::Orphan { child });
                self.heartbeats.remove(&child);
                self.parents.remove(&child);
                self.standbys.remove(&child);
                let Some(map) = &mut self.map else {
                    return Vec::new();
                };
                if !map.contains_server(child) {
                    return Vec::new(); // already reassigned
                }
                let heir = map.mergeable_neighbours(child).into_iter().next();
                let Some(heir) = heir else {
                    return Vec::new(); // no heir yet; a later topology change will merge it
                };
                if map.absorb(heir, child).is_err() {
                    return Vec::new();
                }
                let mut actions = vec![CoordAction::Send(
                    heir,
                    CoordReply::AbsorbFailed {
                        failed: child,
                        range,
                    },
                )];
                actions.extend(self.recompute());
                actions
            }
            CoordMsg::ResolvePoint {
                server,
                client,
                point,
                radius,
            } => {
                self.stats.resolves += 1;
                let (owner, set) = match &self.map {
                    Some(map) => {
                        let owner = map.owner_of(point);
                        let r = radius.unwrap_or(self.radius);
                        let me = owner.unwrap_or(ServerId(u32::MAX));
                        (owner, consistency_set(map, point, me, r, self.cfg.metric))
                    }
                    None => (None, Vec::new()),
                };
                vec![CoordAction::Send(
                    server,
                    CoordReply::Resolved {
                        client,
                        point,
                        owner,
                        set,
                    },
                )]
            }
        }
    }

    /// Applies a split reported by a server onto the directory. Returns
    /// false when the reported geometry does not match the directory (a
    /// protocol error, tolerated by resynchronising to the report).
    fn apply_split(
        map: &mut PartitionMap,
        parent: ServerId,
        child: ServerId,
        parent_range: Rect,
        child_range: Rect,
    ) -> bool {
        let Some(current) = map.range_of(parent) else {
            return false;
        };
        let expected = parent_range.merges_with(&child_range);
        if expected != Some(current) {
            return false;
        }
        // Perform the exact same cut the server made. The child gets
        // `child_range`; the parent keeps `parent_range`. We re-cut the
        // current rect along the shared edge.
        let (axis, at) = if parent_range.min().x == child_range.max().x
            || parent_range.max().x == child_range.min().x
        {
            (
                matrix_geometry::Axis::X,
                parent_range.min().x.max(child_range.min().x),
            )
        } else {
            (
                matrix_geometry::Axis::Y,
                parent_range.min().y.max(child_range.min().y),
            )
        };
        let Some((low, high)) = current.split_at(axis, at) else {
            return false;
        };
        let (child_rect, parent_rect) = if low == child_range {
            (low, high)
        } else {
            (high, low)
        };
        debug_assert_eq!(parent_rect, parent_range);
        // Rebuild the map entry-by-entry (PartitionMap has no raw surgery
        // API by design; splits go through split(), which needs a strategy.
        // We use split_at semantics via a custom strategy-free path).
        let mut rebuilt = Vec::new();
        for (s, r) in map.iter() {
            if s == parent {
                rebuilt.push((parent, parent_rect));
            } else {
                rebuilt.push((s, r));
            }
        }
        rebuilt.push((child, child_rect));
        *map = PartitionMap::from_parts(map.world(), rebuilt)
            .expect("split surgery preserves partition invariants");
        true
    }

    /// Recomputes every server's overlap table and emits the pushes
    /// (§3.2.4: "recomputes and redistributes overlap regions every time a
    /// new Matrix server is used or an existing Matrix server is
    /// reclaimed").
    pub fn recompute(&mut self) -> Vec<CoordAction> {
        let Some(map) = &self.map else {
            return Vec::new();
        };
        self.epoch += 1;
        self.stats.recomputes += 1;
        let overlap = build_overlap(map, self.radius, self.cfg.metric);
        self.extra_overlaps = self
            .extra_radii
            .iter()
            .map(|&r| (r, build_overlap(map, r, self.cfg.metric)))
            .collect();
        let mut actions = Vec::with_capacity(map.len());
        for (server, _) in map.iter() {
            let table = overlap
                .table_for(server)
                .expect("every server in the map has a table")
                .clone();
            let extra_tables: Vec<(u64, matrix_geometry::OverlapTable)> = self
                .extra_overlaps
                .iter()
                .filter_map(|(r, om)| om.table_for(server).map(|t| (r.to_bits(), t.clone())))
                .collect();
            self.stats.tables_sent += 1;
            actions.push(CoordAction::Send(
                server,
                CoordReply::Tables {
                    epoch: self.epoch,
                    table,
                    extra_tables,
                    map: map.clone(),
                },
            ));
        }
        self.overlap = Some(overlap);
        actions
    }

    /// Builds the current-epoch table push for one server (no recompute).
    fn tables_for(&self, server: ServerId) -> Option<CoordAction> {
        let map = self.map.as_ref()?;
        let overlap = self.overlap.as_ref()?;
        let table = overlap.table_for(server)?.clone();
        let extra_tables: Vec<(u64, matrix_geometry::OverlapTable)> = self
            .extra_overlaps
            .iter()
            .filter_map(|(r, om)| om.table_for(server).map(|t| (r.to_bits(), t.clone())))
            .collect();
        Some(CoordAction::Send(
            server,
            CoordReply::Tables {
                epoch: self.epoch,
                table,
                extra_tables,
                map: map.clone(),
            },
        ))
    }

    /// Periodic liveness sweep. Servers with stale heartbeats are
    /// declared dead and handled by the best available recovery:
    ///
    /// * a dead **primary with a warm standby** is *failed over* — the
    ///   standby is promoted in place under the directory's surgery, so
    ///   its clients survive on their replicated sessions;
    /// * a dead server **without** a standby is *absorbed* — a
    ///   mergeable neighbour (preferring the parent) adopts the
    ///   orphaned range, and that node's sessions are lost;
    /// * a dead **standby** costs nothing but its pairing — the primary
    ///   is told to draw a replacement from the pool.
    ///
    /// Returns the resulting pushes.
    pub fn check_liveness(&mut self, now: SimTime) -> Vec<CoordAction> {
        if self.map.is_none() {
            return Vec::new();
        }
        let dead: Vec<ServerId> = self
            .heartbeats
            .iter()
            .filter(|(_, t)| now.since(**t) > self.cfg.heartbeat_timeout)
            .filter(|(s, _)| {
                let in_map = self.map.as_ref().is_some_and(|m| m.contains_server(**s));
                let is_standby = self.standbys.values().any(|sb| sb == *s);
                in_map || is_standby
            })
            .map(|(s, _)| *s)
            .collect();
        let dead_set: std::collections::BTreeSet<ServerId> = dead.iter().copied().collect();
        let mut actions = Vec::new();
        for failed in dead {
            let in_map = self.map.as_ref().is_some_and(|m| m.contains_server(failed));
            if !in_map {
                // A dead standby: tell its primary to re-pair. (If the
                // primary died in the same sweep, its own handling below
                // already dropped the pairing — nothing left to do.)
                let Some(primary) = self
                    .standbys
                    .iter()
                    .find(|(_, sb)| **sb == failed)
                    .map(|(p, _)| *p)
                else {
                    self.heartbeats.remove(&failed);
                    continue;
                };
                self.standbys.remove(&primary);
                self.heartbeats.remove(&failed);
                self.stats.standbys_lost += 1;
                self.recorder.record(
                    now,
                    EventKind::StandbyLost {
                        primary,
                        standby: failed,
                    },
                );
                self.log
                    .emit(|| format!("standby {failed} of {primary} dead at {now}"));
                actions.push(CoordAction::Send(
                    primary,
                    CoordReply::StandbyLost { standby: failed },
                ));
                continue;
            }
            if self.cfg.failover {
                if let Some(standby) = self.standbys.get(&failed).copied() {
                    // Promoting onto a node that is dead in this very
                    // sweep would hand the region to a corpse; a shared
                    // failure domain takes the absorb path instead.
                    if !dead_set.contains(&standby) {
                        actions.extend(self.promote_standby(now, failed, standby));
                        continue;
                    }
                    self.standbys.remove(&failed);
                    self.heartbeats.remove(&standby);
                    self.stats.standbys_lost += 1;
                    self.recorder.record(
                        now,
                        EventKind::StandbyLost {
                            primary: failed,
                            standby,
                        },
                    );
                    self.log.emit(|| {
                        format!("standby {standby} died with its primary {failed} at {now}")
                    });
                }
            }
            actions.extend(self.absorb_dead(now, failed));
        }
        actions
    }

    /// Fast failover: rewrite the directory so `standby` owns the dead
    /// primary's range under its own id, instruct it to promote, and
    /// push fresh tables everywhere. Works even for the last server in
    /// the map — unlike absorption, promotion needs no neighbour.
    fn promote_standby(
        &mut self,
        now: SimTime,
        failed: ServerId,
        standby: ServerId,
    ) -> Vec<CoordAction> {
        let Some(map) = &mut self.map else {
            return Vec::new();
        };
        let Some(range) = map.range_of(failed) else {
            self.standbys.remove(&failed);
            return Vec::new();
        };
        let rebuilt: Vec<(ServerId, Rect)> = map
            .iter()
            .map(|(s, r)| if s == failed { (standby, r) } else { (s, r) })
            .collect();
        *map = PartitionMap::from_parts(map.world(), rebuilt)
            .expect("renaming one owner preserves partition invariants");
        self.stats.failures_declared += 1;
        self.stats.failovers += 1;
        self.heartbeats.remove(&failed);
        self.heartbeats.insert(standby, now);
        // Re-parent the family tree: the promoted standby inherits the
        // dead primary's parent (so an underloaded heir can still be
        // reclaimed upward) and adopts its children (so they reclaim
        // into the survivor instead of pointing at a ghost forever).
        if let Some(parent) = self.parents.remove(&failed) {
            self.parents.insert(standby, parent);
        }
        for parent in self.parents.values_mut() {
            if *parent == failed {
                *parent = standby;
            }
        }
        self.standbys.remove(&failed);
        self.recorder.record(
            now,
            EventKind::FailureDeclared {
                failed,
                heir: standby,
            },
        );
        self.recorder
            .record(now, EventKind::Failover { failed, standby });
        self.log
            .emit(|| format!("failover {failed} -> {standby} at {now}"));
        let mut actions = vec![CoordAction::Send(
            standby,
            CoordReply::Promote {
                failed,
                range,
                radius: self.radius,
            },
        )];
        actions.extend(self.recompute());
        actions
    }

    /// Legacy recovery for a dead server without a standby: a mergeable
    /// neighbour absorbs the orphaned range (its sessions are lost).
    fn absorb_dead(&mut self, now: SimTime, failed: ServerId) -> Vec<CoordAction> {
        let Some(map) = &mut self.map else {
            return Vec::new();
        };
        if map.len() <= 1 {
            return Vec::new(); // the last server has no heir
        }
        let Some(range) = map.range_of(failed) else {
            return Vec::new();
        };
        // Prefer the parent as heir, else any mergeable neighbour.
        let neighbours = map.mergeable_neighbours(failed);
        let heir = self
            .parents
            .get(&failed)
            .copied()
            .filter(|p| neighbours.contains(p))
            .or_else(|| neighbours.first().copied());
        let Some(heir) = heir else {
            return Vec::new();
        };
        if map.absorb(heir, failed).is_err() {
            return Vec::new();
        }
        self.stats.failures_declared += 1;
        self.heartbeats.remove(&failed);
        self.parents.remove(&failed);
        self.standbys.remove(&failed);
        self.recorder
            .record(now, EventKind::FailureDeclared { failed, heir });
        self.log
            .emit(|| format!("declare dead {failed} heir {heir} at {now}"));
        let mut actions = vec![CoordAction::Send(
            heir,
            CoordReply::AbsorbFailed { failed, range },
        )];
        actions.extend(self.recompute());
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ClientId;
    use matrix_geometry::Point;
    use matrix_sim::SimDuration;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 400.0, 400.0)
    }

    fn registered() -> (Coordinator, Vec<CoordAction>) {
        let mut c = Coordinator::new(CoordinatorConfig::default());
        let actions = c.handle(
            SimTime::ZERO,
            CoordMsg::RegisterWorld {
                server: ServerId(1),
                world: world(),
                radius: 50.0,
            },
        );
        (c, actions)
    }

    #[test]
    fn registration_produces_first_tables() {
        let (c, actions) = registered();
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.server_count(), 1);
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            CoordAction::Send(s, CoordReply::Tables { epoch: 1, .. }) if *s == ServerId(1)
        ));
    }

    #[test]
    fn split_updates_directory_and_pushes_tables() {
        let (mut c, _) = registered();
        let actions = c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        assert_eq!(c.server_count(), 2);
        assert_eq!(
            c.map().unwrap().range_of(ServerId(2)),
            Some(Rect::from_coords(0.0, 0.0, 200.0, 400.0))
        );
        c.map().unwrap().validate().unwrap();
        // One table per live server.
        assert_eq!(actions.len(), 2);
        assert_eq!(c.stats().splits_seen, 1);
    }

    #[test]
    fn horizontal_split_is_applied() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(0.0, 200.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 400.0, 200.0),
            },
        );
        assert_eq!(c.server_count(), 2);
        c.map().unwrap().validate().unwrap();
    }

    #[test]
    fn reclaim_updates_directory() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        let actions = c.handle(
            SimTime::from_secs(2),
            CoordMsg::ReclaimOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                merged_range: world(),
            },
        );
        assert_eq!(c.server_count(), 1);
        assert_eq!(c.map().unwrap().range_of(ServerId(1)), Some(world()));
        assert_eq!(actions.len(), 1);
        assert_eq!(c.stats().reclaims_seen, 1);
    }

    #[test]
    fn resolve_point_returns_owner_and_set() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        let actions = c.handle(
            SimTime::from_secs(2),
            CoordMsg::ResolvePoint {
                server: ServerId(1),
                client: ClientId(9),
                point: Point::new(190.0, 50.0),
                radius: None,
            },
        );
        let CoordAction::Send(to, CoordReply::Resolved { owner, set, .. }) = &actions[0] else {
            panic!("expected resolve reply");
        };
        assert_eq!(*to, ServerId(1));
        assert_eq!(*owner, Some(ServerId(2)));
        // 190 is within 50 of S1's half.
        assert!(set.contains(&ServerId(1)), "{set:?}");
        assert_eq!(c.stats().resolves, 1);
    }

    #[test]
    fn epoch_increases_monotonically() {
        let (mut c, _) = registered();
        let e1 = c.epoch();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        assert!(c.epoch() > e1);
    }

    #[test]
    fn missed_heartbeats_trigger_absorption() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        // S1 keeps heartbeating, S2 goes silent.
        for s in 1..=20u64 {
            c.handle(
                SimTime::from_secs(1) + SimDuration::from_secs(s),
                CoordMsg::Heartbeat {
                    server: ServerId(1),
                    epoch: 99,
                    telemetry: None,
                },
            );
        }
        // At t=24, S1's last heartbeat (t=21) is fresh; S2's (t=1) is stale.
        let actions = c.check_liveness(SimTime::from_secs(24));
        assert_eq!(c.stats().failures_declared, 1);
        assert_eq!(c.server_count(), 1);
        assert!(actions.iter().any(|a| matches!(a,
            CoordAction::Send(s, CoordReply::AbsorbFailed { failed, .. })
                if *s == ServerId(1) && *failed == ServerId(2))));
        // Fresh tables follow the absorption.
        assert!(actions
            .iter()
            .any(|a| matches!(a, CoordAction::Send(_, CoordReply::Tables { .. }))));
    }

    #[test]
    fn last_server_is_never_declared_dead() {
        let (mut c, _) = registered();
        let actions = c.check_liveness(SimTime::from_secs(1000));
        assert!(actions.is_empty());
        assert_eq!(c.server_count(), 1);
    }

    #[test]
    fn extra_radius_produces_extra_tables() {
        let (mut c, _) = registered();
        let actions = c.handle(
            SimTime::from_secs(1),
            CoordMsg::RegisterRadius {
                server: ServerId(1),
                radius: 120.0,
            },
        );
        let CoordAction::Send(_, CoordReply::Tables { extra_tables, .. }) = &actions[0] else {
            panic!("expected tables");
        };
        assert_eq!(extra_tables.len(), 1);
        assert_eq!(extra_tables[0].0, 120.0f64.to_bits());
    }

    #[test]
    fn stale_epoch_heartbeat_gets_fresh_tables() {
        let (mut c, _) = registered();
        assert_eq!(c.epoch(), 1);
        // A heartbeat reporting the current epoch gets nothing back.
        let none = c.handle(
            SimTime::from_secs(1),
            CoordMsg::Heartbeat {
                server: ServerId(1),
                epoch: 1,
                telemetry: None,
            },
        );
        assert!(none.is_empty());
        // A heartbeat reporting an older epoch (a lost push) triggers a
        // targeted refresh at the current epoch.
        let refreshed = c.handle(
            SimTime::from_secs(2),
            CoordMsg::Heartbeat {
                server: ServerId(1),
                epoch: 0,
                telemetry: None,
            },
        );
        assert!(matches!(
            refreshed.as_slice(),
            [CoordAction::Send(s, CoordReply::Tables { epoch: 1, .. })] if *s == ServerId(1)
        ));
        assert_eq!(c.stats().table_refreshes, 1);
    }

    #[test]
    fn unknown_server_heartbeat_gets_no_tables() {
        let (mut c, _) = registered();
        let actions = c.handle(
            SimTime::from_secs(1),
            CoordMsg::Heartbeat {
                server: ServerId(42),
                epoch: 0,
                telemetry: None,
            },
        );
        assert!(actions.is_empty(), "retired/unknown servers get no tables");
    }

    #[test]
    fn orphan_range_is_absorbed_by_neighbour() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        let actions = c.handle(
            SimTime::from_secs(2),
            CoordMsg::OrphanRange {
                parent: ServerId(9),
                child: ServerId(2),
                range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        assert_eq!(c.server_count(), 1);
        assert!(actions.iter().any(|a| matches!(a,
            CoordAction::Send(s, CoordReply::AbsorbFailed { failed, .. })
                if *s == ServerId(1) && *failed == ServerId(2))));
    }

    fn split_pair() -> Coordinator {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        c
    }

    fn keep_alive(c: &mut Coordinator, server: ServerId, until_secs: u64) {
        for s in 1..=until_secs {
            c.handle(
                SimTime::from_secs(s),
                CoordMsg::Heartbeat {
                    server,
                    epoch: 99,
                    telemetry: None,
                },
            );
        }
    }

    #[test]
    fn dead_primary_with_standby_is_failed_over_not_absorbed() {
        let mut c = split_pair();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::StandbyAssigned {
                primary: ServerId(2),
                standby: ServerId(9),
            },
        );
        // S1 and the standby stay alive; S2 goes silent.
        keep_alive(&mut c, ServerId(1), 20);
        keep_alive(&mut c, ServerId(9), 20);
        let actions = c.check_liveness(SimTime::from_secs(24));
        assert_eq!(c.stats().failures_declared, 1);
        assert_eq!(c.stats().failovers, 1);
        // The standby inherits the range under its own id.
        assert_eq!(
            c.map().unwrap().range_of(ServerId(9)),
            Some(Rect::from_coords(0.0, 0.0, 200.0, 400.0))
        );
        assert!(!c.map().unwrap().contains_server(ServerId(2)));
        c.map().unwrap().validate().unwrap();
        assert!(actions.iter().any(|a| matches!(a,
            CoordAction::Send(s, CoordReply::Promote { failed, radius, .. })
                if *s == ServerId(9) && *failed == ServerId(2) && *radius == 50.0)));
        // Fresh tables follow, including for the promoted server.
        assert!(actions.iter().any(|a| matches!(a,
            CoordAction::Send(s, CoordReply::Tables { .. }) if *s == ServerId(9))));
        // No absorb was sent: the region survived.
        assert!(!actions
            .iter()
            .any(|a| matches!(a, CoordAction::Send(_, CoordReply::AbsorbFailed { .. }))));
    }

    #[test]
    fn even_the_last_server_fails_over_when_it_has_a_standby() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::StandbyAssigned {
                primary: ServerId(1),
                standby: ServerId(9),
            },
        );
        keep_alive(&mut c, ServerId(9), 20);
        let actions = c.check_liveness(SimTime::from_secs(24));
        assert_eq!(c.stats().failovers, 1);
        assert_eq!(c.map().unwrap().range_of(ServerId(9)), Some(world()));
        assert!(actions
            .iter()
            .any(|a| matches!(a, CoordAction::Send(_, CoordReply::Promote { .. }))));
    }

    #[test]
    fn failover_disabled_falls_back_to_absorption() {
        let cfg = CoordinatorConfig {
            failover: false,
            ..CoordinatorConfig::default()
        };
        let mut c = Coordinator::new(cfg);
        c.handle(
            SimTime::ZERO,
            CoordMsg::RegisterWorld {
                server: ServerId(1),
                world: world(),
                radius: 50.0,
            },
        );
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::StandbyAssigned {
                primary: ServerId(2),
                standby: ServerId(9),
            },
        );
        keep_alive(&mut c, ServerId(1), 20);
        keep_alive(&mut c, ServerId(9), 20);
        let actions = c.check_liveness(SimTime::from_secs(24));
        assert_eq!(c.stats().failovers, 0);
        assert!(actions
            .iter()
            .any(|a| matches!(a, CoordAction::Send(_, CoordReply::AbsorbFailed { .. }))));
    }

    #[test]
    fn failover_reparents_children_onto_the_promoted_standby() {
        // 1 splits to 2 (parent: 2 -> 1); 1 is replicated to standby 9.
        // When 1 dies and 9 promotes, 2's parent link must be rewritten
        // to 9 — so when 2 later dies without a standby, the absorb
        // machinery's parent preference picks 9, not whatever neighbour
        // happens to sort first.
        let mut c = split_pair();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::StandbyAssigned {
                primary: ServerId(1),
                standby: ServerId(9),
            },
        );
        keep_alive(&mut c, ServerId(2), 20);
        keep_alive(&mut c, ServerId(9), 20);
        let actions = c.check_liveness(SimTime::from_secs(24));
        assert_eq!(c.stats().failovers, 1, "{actions:?}");
        assert!(c.map().unwrap().contains_server(ServerId(9)));

        // Now the split child dies with no standby of its own.
        keep_alive(&mut c, ServerId(9), 39);
        let actions = c.check_liveness(SimTime::from_secs(40));
        assert!(
            actions.iter().any(|a| matches!(a,
                CoordAction::Send(heir, CoordReply::AbsorbFailed { failed, .. })
                    if *heir == ServerId(9) && *failed == ServerId(2))),
            "the re-parented standby absorbs its adopted child: {actions:?}"
        );
        assert_eq!(c.map().unwrap().range_of(ServerId(9)), Some(world()));
    }

    #[test]
    fn promoted_standby_inherits_the_dead_primarys_parent() {
        // 1 splits to 2 (parent: 2 -> 1); 2 is replicated to standby 9.
        // When 2 dies and 9 promotes, 9 inherits 2's parent link — so a
        // later death of 9 absorbs into 1 via the parent preference.
        let mut c = split_pair();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::StandbyAssigned {
                primary: ServerId(2),
                standby: ServerId(9),
            },
        );
        keep_alive(&mut c, ServerId(1), 20);
        keep_alive(&mut c, ServerId(9), 20);
        c.check_liveness(SimTime::from_secs(24));
        assert_eq!(c.stats().failovers, 1);

        keep_alive(&mut c, ServerId(1), 40);
        let actions = c.check_liveness(SimTime::from_secs(44));
        assert!(
            actions.iter().any(|a| matches!(a,
                CoordAction::Send(heir, CoordReply::AbsorbFailed { failed, .. })
                    if *heir == ServerId(1) && *failed == ServerId(9))),
            "the inherited parent absorbs the promoted standby: {actions:?}"
        );
    }

    #[test]
    fn dead_standby_triggers_repair_notice() {
        let mut c = split_pair();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::StandbyAssigned {
                primary: ServerId(2),
                standby: ServerId(9),
            },
        );
        // Both actives stay fresh; the standby never heartbeats again.
        keep_alive(&mut c, ServerId(1), 20);
        keep_alive(&mut c, ServerId(2), 20);
        let actions = c.check_liveness(SimTime::from_secs(24));
        assert_eq!(c.stats().standbys_lost, 1);
        assert_eq!(c.stats().failures_declared, 0, "no region was lost");
        assert_eq!(
            actions,
            vec![CoordAction::Send(
                ServerId(2),
                CoordReply::StandbyLost {
                    standby: ServerId(9)
                }
            )]
        );
        // A later primary death now takes the absorb path.
        let actions = c.check_liveness(SimTime::from_secs(40));
        assert!(actions
            .iter()
            .any(|a| matches!(a, CoordAction::Send(_, CoordReply::AbsorbFailed { .. }))));
    }

    #[test]
    fn repairing_clears_a_stale_heartbeat_from_a_previous_life() {
        // Regression: a recycled server id may carry an old heartbeat
        // timestamp; the pairing must restart its liveness watch at
        // `now`, or the next sweep declares the fresh standby dead.
        let mut c = split_pair();
        // ServerId(9) heartbeat ages far into the past (an earlier life).
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::Heartbeat {
                server: ServerId(9),
                epoch: 0,
                telemetry: None,
            },
        );
        keep_alive(&mut c, ServerId(1), 30);
        keep_alive(&mut c, ServerId(2), 30);
        c.handle(
            SimTime::from_secs(30),
            CoordMsg::StandbyAssigned {
                primary: ServerId(2),
                standby: ServerId(9),
            },
        );
        // Sweep right after the pairing: the standby must NOT be lost.
        let actions = c.check_liveness(SimTime::from_secs(31));
        assert_eq!(c.stats().standbys_lost, 0, "{actions:?}");
        assert!(actions.is_empty());
    }

    #[test]
    fn primary_and_standby_dying_together_fall_back_to_absorb() {
        // Regression: promoting onto a node that is dead in the same
        // sweep would hand the region to a corpse. A shared failure
        // domain must take the absorb path (and count one failure).
        let mut c = split_pair();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::StandbyAssigned {
                primary: ServerId(2),
                standby: ServerId(9),
            },
        );
        // Only S1 stays alive; S2 and its standby both go silent.
        keep_alive(&mut c, ServerId(1), 20);
        let actions = c.check_liveness(SimTime::from_secs(24));
        assert_eq!(c.stats().failovers, 0, "no corpse promotion");
        assert_eq!(c.stats().failures_declared, 1, "one physical failure");
        assert_eq!(c.stats().standbys_lost, 1);
        assert!(!actions
            .iter()
            .any(|a| matches!(a, CoordAction::Send(_, CoordReply::Promote { .. }))));
        assert!(actions.iter().any(|a| matches!(a,
            CoordAction::Send(s, CoordReply::AbsorbFailed { failed, .. })
                if *s == ServerId(1) && *failed == ServerId(2))));
        // The dead pair is fully forgotten: a later sweep is quiet.
        assert!(c.check_liveness(SimTime::from_secs(60)).is_empty());
    }

    #[test]
    fn divergences_count_and_reach_the_log_hook() {
        use std::sync::{Arc, Mutex};
        let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let sink = lines.clone();
        let (mut c, _) = registered();
        c.set_log_hook(CoordLog::new(move |msg| {
            sink.lock().unwrap().push(msg.to_string());
        }));
        // A reclaim for a child the directory never saw: a divergence.
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::ReclaimOccurred {
                parent: ServerId(1),
                child: ServerId(42),
                merged_range: world(),
            },
        );
        assert!(c.stats().divergences >= 1);
        let lines = lines.lock().unwrap();
        assert!(
            lines.iter().any(|l| l.contains("not in directory")),
            "{lines:?}"
        );
    }

    #[test]
    fn divergences_are_silent_without_a_hook() {
        // No hook installed: only the counter records (chaos runs must
        // not spam stderr).
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::ReclaimOccurred {
                parent: ServerId(1),
                child: ServerId(42),
                merged_range: world(),
            },
        );
        assert_eq!(c.stats().divergences, 1);
    }

    #[test]
    fn with_map_bootstraps_static_fixture() {
        let servers: Vec<ServerId> = (1..=4).map(ServerId).collect();
        let map = PartitionMap::static_grid(world(), &servers).unwrap();
        let (c, actions) = Coordinator::with_map(CoordinatorConfig::default(), map, 25.0);
        assert_eq!(c.server_count(), 4);
        assert_eq!(actions.len(), 4);
    }
}
