//! The Matrix Coordinator (MC) — §3.2.4.
//!
//! The MC owns the authoritative partition directory. On every topology
//! change (registration, split, reclaim, failure) it recomputes the overlap
//! regions with axis-aligned bounding-box arithmetic and pushes each server
//! its table. It is deliberately *off* the latency-critical forwarding
//! path: packet routing uses the distributed tables, and the MC is only
//! consulted for rare non-proximal interactions and topology changes —
//! which is why the paper argues a central MC scales.

use crate::config::CoordinatorConfig;
use crate::messages::{CoordMsg, CoordReply};
use matrix_geometry::{build_overlap, consistency_set, OverlapMap, PartitionMap, Rect, ServerId};
use matrix_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// An effect the coordinator asks its driver to carry out.
#[derive(Debug, Clone, PartialEq)]
pub enum CoordAction {
    /// Send a reply to a Matrix server.
    Send(ServerId, CoordReply),
}

/// Counters for the E5 microbenchmark (coordinator overhead).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoordinatorStats {
    /// Overlap-table recomputations performed.
    pub recomputes: u64,
    /// Individual table messages pushed to servers.
    pub tables_sent: u64,
    /// Point-resolution queries served.
    pub resolves: u64,
    /// Splits recorded.
    pub splits_seen: u64,
    /// Reclaims recorded.
    pub reclaims_seen: u64,
    /// Servers declared dead after missing heartbeats.
    pub failures_declared: u64,
    /// Targeted table re-pushes triggered by stale-epoch heartbeats.
    pub table_refreshes: u64,
}

/// The coordinator state machine.
#[derive(Debug, Clone)]
pub struct Coordinator {
    cfg: CoordinatorConfig,
    world: Option<Rect>,
    radius: f64,
    extra_radii: Vec<f64>,
    map: Option<PartitionMap>,
    overlap: Option<OverlapMap>,
    extra_overlaps: Vec<(f64, OverlapMap)>,
    epoch: u64,
    heartbeats: BTreeMap<ServerId, SimTime>,
    /// Parent relationships learned from splits, used to pick an heir on
    /// failure.
    parents: BTreeMap<ServerId, ServerId>,
    stats: CoordinatorStats,
}

impl Coordinator {
    /// Creates an empty coordinator awaiting the first registration.
    pub fn new(cfg: CoordinatorConfig) -> Coordinator {
        Coordinator {
            cfg,
            world: None,
            radius: 0.0,
            extra_radii: Vec::new(),
            map: None,
            overlap: None,
            extra_overlaps: Vec::new(),
            epoch: 0,
            heartbeats: BTreeMap::new(),
            parents: BTreeMap::new(),
            stats: CoordinatorStats::default(),
        }
    }

    /// Bootstraps with a pre-built multi-server map (static baseline and
    /// test fixtures), immediately producing tables for every server.
    pub fn with_map(
        cfg: CoordinatorConfig,
        map: PartitionMap,
        radius: f64,
    ) -> (Coordinator, Vec<CoordAction>) {
        let mut c = Coordinator::new(cfg);
        c.world = Some(map.world());
        c.radius = radius;
        c.map = Some(map);
        let actions = c.recompute();
        (c, actions)
    }

    /// Current partition directory.
    pub fn map(&self) -> Option<&PartitionMap> {
        self.map.as_ref()
    }

    /// Current table epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Counters for experiments.
    pub fn stats(&self) -> &CoordinatorStats {
        &self.stats
    }

    /// Number of live servers in the directory.
    pub fn server_count(&self) -> usize {
        self.map.as_ref().map_or(0, |m| m.len())
    }

    /// Handles one message from a Matrix server.
    pub fn handle(&mut self, now: SimTime, msg: CoordMsg) -> Vec<CoordAction> {
        match msg {
            CoordMsg::RegisterWorld {
                server,
                world,
                radius,
            } => {
                self.heartbeats.insert(server, now);
                if self.map.is_none() {
                    self.world = Some(world);
                    self.radius = radius;
                    self.map = Some(PartitionMap::new(world, server));
                }
                self.recompute()
            }
            CoordMsg::RegisterRadius { server: _, radius } => {
                if !self
                    .extra_radii
                    .iter()
                    .any(|r| r.to_bits() == radius.to_bits())
                {
                    self.extra_radii.push(radius);
                }
                self.recompute()
            }
            CoordMsg::SplitOccurred {
                parent,
                child,
                parent_range,
                child_range,
            } => {
                self.stats.splits_seen += 1;
                self.heartbeats.insert(child, now);
                self.parents.insert(child, parent);
                if let Some(map) = &mut self.map {
                    // Reconstruct the move: the directory must mirror what
                    // the splitting server decided locally.
                    let _ = parent_range;
                    if map.contains_server(parent) && !map.contains_server(child) {
                        // Apply by direct surgery: shrink parent, add child.
                        let ok = Self::apply_split(map, parent, child, parent_range, child_range);
                        if !ok {
                            #[cfg(debug_assertions)]
                            eprintln!("DIVERGE split {parent}->{child}: dir={:?} report par={parent_range:?} child={child_range:?}", map.range_of(parent));
                            self.stats.failures_declared += 1;
                        }
                    } else {
                        #[cfg(debug_assertions)]
                        eprintln!(
                            "DIVERGE split skipped {parent}->{child}: parent in dir={} child in dir={}",
                            map.contains_server(parent),
                            map.contains_server(child)
                        );
                    }
                }
                self.recompute()
            }
            CoordMsg::ReclaimOccurred {
                parent,
                child,
                merged_range,
            } => {
                self.stats.reclaims_seen += 1;
                self.heartbeats.remove(&child);
                self.parents.remove(&child);
                if let Some(map) = &mut self.map {
                    if map.contains_server(child) {
                        if let Err(_e) = map.reclaim(parent, child) {
                            #[cfg(debug_assertions)]
                            eprintln!(
                                "DIVERGE reclaim {parent}<-{child}: {_e}; dir parent={:?} child={:?} reported merged={merged_range:?}",
                                map.range_of(parent),
                                map.range_of(child)
                            );
                        }
                    } else {
                        #[cfg(debug_assertions)]
                        eprintln!("DIVERGE reclaim: child {child} not in directory");
                    }
                    debug_assert_eq!(
                        map.range_of(parent),
                        Some(merged_range),
                        "reclaim {parent}<-{child}"
                    );
                }
                self.recompute()
            }
            CoordMsg::Heartbeat { server, epoch } => {
                self.heartbeats.insert(server, now);
                // Anti-entropy: a server routing with stale tables (a lost
                // or delayed push) gets a targeted refresh instead of
                // waiting for the next topology change.
                if epoch < self.epoch
                    && self.map.as_ref().is_some_and(|m| m.contains_server(server))
                {
                    self.stats.table_refreshes += 1;
                    return self.tables_for(server).into_iter().collect();
                }
                Vec::new()
            }
            CoordMsg::OrphanRange {
                parent: _,
                child,
                range,
            } => {
                // The retired child's range needs a mergeable owner. Reuse
                // the failure-absorption machinery: pick an heir among the
                // child's mergeable neighbours and instruct it to absorb.
                self.heartbeats.remove(&child);
                self.parents.remove(&child);
                let Some(map) = &mut self.map else {
                    return Vec::new();
                };
                if !map.contains_server(child) {
                    return Vec::new(); // already reassigned
                }
                let heir = map.mergeable_neighbours(child).into_iter().next();
                let Some(heir) = heir else {
                    return Vec::new(); // no heir yet; a later topology change will merge it
                };
                if map.absorb(heir, child).is_err() {
                    return Vec::new();
                }
                let mut actions = vec![CoordAction::Send(
                    heir,
                    CoordReply::AbsorbFailed {
                        failed: child,
                        range,
                    },
                )];
                actions.extend(self.recompute());
                actions
            }
            CoordMsg::ResolvePoint {
                server,
                client,
                point,
                radius,
            } => {
                self.stats.resolves += 1;
                let (owner, set) = match &self.map {
                    Some(map) => {
                        let owner = map.owner_of(point);
                        let r = radius.unwrap_or(self.radius);
                        let me = owner.unwrap_or(ServerId(u32::MAX));
                        (owner, consistency_set(map, point, me, r, self.cfg.metric))
                    }
                    None => (None, Vec::new()),
                };
                vec![CoordAction::Send(
                    server,
                    CoordReply::Resolved {
                        client,
                        point,
                        owner,
                        set,
                    },
                )]
            }
        }
    }

    /// Applies a split reported by a server onto the directory. Returns
    /// false when the reported geometry does not match the directory (a
    /// protocol error, tolerated by resynchronising to the report).
    fn apply_split(
        map: &mut PartitionMap,
        parent: ServerId,
        child: ServerId,
        parent_range: Rect,
        child_range: Rect,
    ) -> bool {
        let Some(current) = map.range_of(parent) else {
            return false;
        };
        let expected = parent_range.merges_with(&child_range);
        if expected != Some(current) {
            return false;
        }
        // Perform the exact same cut the server made. The child gets
        // `child_range`; the parent keeps `parent_range`. We re-cut the
        // current rect along the shared edge.
        let (axis, at) = if parent_range.min().x == child_range.max().x
            || parent_range.max().x == child_range.min().x
        {
            (
                matrix_geometry::Axis::X,
                parent_range.min().x.max(child_range.min().x),
            )
        } else {
            (
                matrix_geometry::Axis::Y,
                parent_range.min().y.max(child_range.min().y),
            )
        };
        let Some((low, high)) = current.split_at(axis, at) else {
            return false;
        };
        let (child_rect, parent_rect) = if low == child_range {
            (low, high)
        } else {
            (high, low)
        };
        debug_assert_eq!(parent_rect, parent_range);
        // Rebuild the map entry-by-entry (PartitionMap has no raw surgery
        // API by design; splits go through split(), which needs a strategy.
        // We use split_at semantics via a custom strategy-free path).
        let mut rebuilt = Vec::new();
        for (s, r) in map.iter() {
            if s == parent {
                rebuilt.push((parent, parent_rect));
            } else {
                rebuilt.push((s, r));
            }
        }
        rebuilt.push((child, child_rect));
        *map = PartitionMap::from_parts(map.world(), rebuilt)
            .expect("split surgery preserves partition invariants");
        true
    }

    /// Recomputes every server's overlap table and emits the pushes
    /// (§3.2.4: "recomputes and redistributes overlap regions every time a
    /// new Matrix server is used or an existing Matrix server is
    /// reclaimed").
    pub fn recompute(&mut self) -> Vec<CoordAction> {
        let Some(map) = &self.map else {
            return Vec::new();
        };
        self.epoch += 1;
        self.stats.recomputes += 1;
        let overlap = build_overlap(map, self.radius, self.cfg.metric);
        self.extra_overlaps = self
            .extra_radii
            .iter()
            .map(|&r| (r, build_overlap(map, r, self.cfg.metric)))
            .collect();
        let mut actions = Vec::with_capacity(map.len());
        for (server, _) in map.iter() {
            let table = overlap
                .table_for(server)
                .expect("every server in the map has a table")
                .clone();
            let extra_tables: Vec<(u64, matrix_geometry::OverlapTable)> = self
                .extra_overlaps
                .iter()
                .filter_map(|(r, om)| om.table_for(server).map(|t| (r.to_bits(), t.clone())))
                .collect();
            self.stats.tables_sent += 1;
            actions.push(CoordAction::Send(
                server,
                CoordReply::Tables {
                    epoch: self.epoch,
                    table,
                    extra_tables,
                    map: map.clone(),
                },
            ));
        }
        self.overlap = Some(overlap);
        actions
    }

    /// Builds the current-epoch table push for one server (no recompute).
    fn tables_for(&self, server: ServerId) -> Option<CoordAction> {
        let map = self.map.as_ref()?;
        let overlap = self.overlap.as_ref()?;
        let table = overlap.table_for(server)?.clone();
        let extra_tables: Vec<(u64, matrix_geometry::OverlapTable)> = self
            .extra_overlaps
            .iter()
            .filter_map(|(r, om)| om.table_for(server).map(|t| (r.to_bits(), t.clone())))
            .collect();
        Some(CoordAction::Send(
            server,
            CoordReply::Tables {
                epoch: self.epoch,
                table,
                extra_tables,
                map: map.clone(),
            },
        ))
    }

    /// Periodic liveness sweep: declares servers with stale heartbeats dead
    /// and instructs a mergeable neighbour (preferring the parent) to
    /// absorb the orphaned range. Returns the resulting pushes.
    pub fn check_liveness(&mut self, now: SimTime) -> Vec<CoordAction> {
        let Some(map) = &self.map else {
            return Vec::new();
        };
        if map.len() <= 1 {
            return Vec::new(); // the last server has no heir
        }
        let dead: Vec<ServerId> = self
            .heartbeats
            .iter()
            .filter(|(s, t)| {
                map.contains_server(**s) && now.since(**t) > self.cfg.heartbeat_timeout
            })
            .map(|(s, _)| *s)
            .collect();
        let mut actions = Vec::new();
        for failed in dead {
            let Some(map) = &mut self.map else { break };
            if map.len() <= 1 {
                break;
            }
            let Some(range) = map.range_of(failed) else {
                continue;
            };
            // Prefer the parent as heir, else any mergeable neighbour.
            let neighbours = map.mergeable_neighbours(failed);
            let heir = self
                .parents
                .get(&failed)
                .copied()
                .filter(|p| neighbours.contains(p))
                .or_else(|| neighbours.first().copied());
            let Some(heir) = heir else { continue };
            if map.absorb(heir, failed).is_err() {
                continue;
            }
            #[cfg(debug_assertions)]
            eprintln!("DECLARE DEAD {failed} heir {heir} at {now}");
            self.stats.failures_declared += 1;
            self.heartbeats.remove(&failed);
            self.parents.remove(&failed);
            actions.push(CoordAction::Send(
                heir,
                CoordReply::AbsorbFailed { failed, range },
            ));
            actions.extend(self.recompute());
        }
        actions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::ClientId;
    use matrix_geometry::Point;
    use matrix_sim::SimDuration;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 400.0, 400.0)
    }

    fn registered() -> (Coordinator, Vec<CoordAction>) {
        let mut c = Coordinator::new(CoordinatorConfig::default());
        let actions = c.handle(
            SimTime::ZERO,
            CoordMsg::RegisterWorld {
                server: ServerId(1),
                world: world(),
                radius: 50.0,
            },
        );
        (c, actions)
    }

    #[test]
    fn registration_produces_first_tables() {
        let (c, actions) = registered();
        assert_eq!(c.epoch(), 1);
        assert_eq!(c.server_count(), 1);
        assert_eq!(actions.len(), 1);
        assert!(matches!(
            &actions[0],
            CoordAction::Send(s, CoordReply::Tables { epoch: 1, .. }) if *s == ServerId(1)
        ));
    }

    #[test]
    fn split_updates_directory_and_pushes_tables() {
        let (mut c, _) = registered();
        let actions = c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        assert_eq!(c.server_count(), 2);
        assert_eq!(
            c.map().unwrap().range_of(ServerId(2)),
            Some(Rect::from_coords(0.0, 0.0, 200.0, 400.0))
        );
        c.map().unwrap().validate().unwrap();
        // One table per live server.
        assert_eq!(actions.len(), 2);
        assert_eq!(c.stats().splits_seen, 1);
    }

    #[test]
    fn horizontal_split_is_applied() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(0.0, 200.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 400.0, 200.0),
            },
        );
        assert_eq!(c.server_count(), 2);
        c.map().unwrap().validate().unwrap();
    }

    #[test]
    fn reclaim_updates_directory() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        let actions = c.handle(
            SimTime::from_secs(2),
            CoordMsg::ReclaimOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                merged_range: world(),
            },
        );
        assert_eq!(c.server_count(), 1);
        assert_eq!(c.map().unwrap().range_of(ServerId(1)), Some(world()));
        assert_eq!(actions.len(), 1);
        assert_eq!(c.stats().reclaims_seen, 1);
    }

    #[test]
    fn resolve_point_returns_owner_and_set() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        let actions = c.handle(
            SimTime::from_secs(2),
            CoordMsg::ResolvePoint {
                server: ServerId(1),
                client: ClientId(9),
                point: Point::new(190.0, 50.0),
                radius: None,
            },
        );
        let CoordAction::Send(to, CoordReply::Resolved { owner, set, .. }) = &actions[0] else {
            panic!("expected resolve reply");
        };
        assert_eq!(*to, ServerId(1));
        assert_eq!(*owner, Some(ServerId(2)));
        // 190 is within 50 of S1's half.
        assert!(set.contains(&ServerId(1)), "{set:?}");
        assert_eq!(c.stats().resolves, 1);
    }

    #[test]
    fn epoch_increases_monotonically() {
        let (mut c, _) = registered();
        let e1 = c.epoch();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        assert!(c.epoch() > e1);
    }

    #[test]
    fn missed_heartbeats_trigger_absorption() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        // S1 keeps heartbeating, S2 goes silent.
        for s in 1..=20u64 {
            c.handle(
                SimTime::from_secs(1) + SimDuration::from_secs(s),
                CoordMsg::Heartbeat {
                    server: ServerId(1),
                    epoch: 99,
                },
            );
        }
        // At t=24, S1's last heartbeat (t=21) is fresh; S2's (t=1) is stale.
        let actions = c.check_liveness(SimTime::from_secs(24));
        assert_eq!(c.stats().failures_declared, 1);
        assert_eq!(c.server_count(), 1);
        assert!(actions.iter().any(|a| matches!(a,
            CoordAction::Send(s, CoordReply::AbsorbFailed { failed, .. })
                if *s == ServerId(1) && *failed == ServerId(2))));
        // Fresh tables follow the absorption.
        assert!(actions
            .iter()
            .any(|a| matches!(a, CoordAction::Send(_, CoordReply::Tables { .. }))));
    }

    #[test]
    fn last_server_is_never_declared_dead() {
        let (mut c, _) = registered();
        let actions = c.check_liveness(SimTime::from_secs(1000));
        assert!(actions.is_empty());
        assert_eq!(c.server_count(), 1);
    }

    #[test]
    fn extra_radius_produces_extra_tables() {
        let (mut c, _) = registered();
        let actions = c.handle(
            SimTime::from_secs(1),
            CoordMsg::RegisterRadius {
                server: ServerId(1),
                radius: 120.0,
            },
        );
        let CoordAction::Send(_, CoordReply::Tables { extra_tables, .. }) = &actions[0] else {
            panic!("expected tables");
        };
        assert_eq!(extra_tables.len(), 1);
        assert_eq!(extra_tables[0].0, 120.0f64.to_bits());
    }

    #[test]
    fn stale_epoch_heartbeat_gets_fresh_tables() {
        let (mut c, _) = registered();
        assert_eq!(c.epoch(), 1);
        // A heartbeat reporting the current epoch gets nothing back.
        let none = c.handle(
            SimTime::from_secs(1),
            CoordMsg::Heartbeat {
                server: ServerId(1),
                epoch: 1,
            },
        );
        assert!(none.is_empty());
        // A heartbeat reporting an older epoch (a lost push) triggers a
        // targeted refresh at the current epoch.
        let refreshed = c.handle(
            SimTime::from_secs(2),
            CoordMsg::Heartbeat {
                server: ServerId(1),
                epoch: 0,
            },
        );
        assert!(matches!(
            refreshed.as_slice(),
            [CoordAction::Send(s, CoordReply::Tables { epoch: 1, .. })] if *s == ServerId(1)
        ));
        assert_eq!(c.stats().table_refreshes, 1);
    }

    #[test]
    fn unknown_server_heartbeat_gets_no_tables() {
        let (mut c, _) = registered();
        let actions = c.handle(
            SimTime::from_secs(1),
            CoordMsg::Heartbeat {
                server: ServerId(42),
                epoch: 0,
            },
        );
        assert!(actions.is_empty(), "retired/unknown servers get no tables");
    }

    #[test]
    fn orphan_range_is_absorbed_by_neighbour() {
        let (mut c, _) = registered();
        c.handle(
            SimTime::from_secs(1),
            CoordMsg::SplitOccurred {
                parent: ServerId(1),
                child: ServerId(2),
                parent_range: Rect::from_coords(200.0, 0.0, 400.0, 400.0),
                child_range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        let actions = c.handle(
            SimTime::from_secs(2),
            CoordMsg::OrphanRange {
                parent: ServerId(9),
                child: ServerId(2),
                range: Rect::from_coords(0.0, 0.0, 200.0, 400.0),
            },
        );
        assert_eq!(c.server_count(), 1);
        assert!(actions.iter().any(|a| matches!(a,
            CoordAction::Send(s, CoordReply::AbsorbFailed { failed, .. })
                if *s == ServerId(1) && *failed == ServerId(2))));
    }

    #[test]
    fn with_map_bootstraps_static_fixture() {
        let servers: Vec<ServerId> = (1..=4).map(ServerId).collect();
        let map = PartitionMap::static_grid(world(), &servers).unwrap();
        let (c, actions) = Coordinator::with_map(CoordinatorConfig::default(), map, 25.0);
        assert_eq!(c.server_count(), 4);
        assert_eq!(actions.len(), 4);
    }
}
