//! The standby-side replica receiver.

use crate::log::{ReplicaBatch, ReplicaPayload};
use crate::snapshot::RegionSnapshot;

/// What the receiver tells the primary after applying one batch: the
/// acknowledgement to send back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaApply {
    /// The sequence number being acknowledged.
    pub seq: u64,
    /// Whether the standby needs a fresh full snapshot (sequence gap or
    /// ops arriving before any snapshot).
    pub resync: bool,
}

/// The warm standby's half of the replication stream: holds the most
/// recent region snapshot, applies incremental batches in sequence, and
/// hands the snapshot over at promotion time.
#[derive(Debug, Clone, Default)]
pub struct ReplicaReceiver<K: Ord> {
    state: Option<RegionSnapshot<K>>,
    last_seq: u64,
    /// Batches applied (snapshots + op batches).
    pub batches_applied: u64,
    /// Resyncs requested.
    pub resyncs_requested: u64,
}

impl<K: Ord + Copy> ReplicaReceiver<K> {
    /// An empty receiver awaiting its first snapshot.
    pub fn new() -> ReplicaReceiver<K> {
        ReplicaReceiver {
            state: None,
            last_seq: 0,
            batches_applied: 0,
            resyncs_requested: 0,
        }
    }

    /// Whether a snapshot is held (the standby is warm).
    pub fn is_warm(&self) -> bool {
        self.state.is_some()
    }

    /// The held snapshot, if any (for observability).
    pub fn snapshot(&self) -> Option<&RegionSnapshot<K>> {
        self.state.as_ref()
    }

    /// Applies one batch and returns the ack to send. Full snapshots
    /// replace the state and re-anchor the sequence; op batches must
    /// arrive in contiguous sequence on top of a snapshot, otherwise the
    /// batch is dropped and a resync requested.
    pub fn apply(&mut self, batch: ReplicaBatch<K>) -> ReplicaApply {
        match batch.payload {
            ReplicaPayload::Full(snapshot) => {
                self.state = Some(snapshot);
                self.last_seq = batch.seq;
                self.batches_applied += 1;
                ReplicaApply {
                    seq: batch.seq,
                    resync: false,
                }
            }
            ReplicaPayload::Ops(ops) => {
                let in_sequence = self.state.is_some() && batch.seq == self.last_seq + 1;
                if !in_sequence {
                    self.resyncs_requested += 1;
                    return ReplicaApply {
                        seq: batch.seq,
                        resync: true,
                    };
                }
                let state = self.state.as_mut().expect("checked in_sequence");
                for op in &ops {
                    state.apply(op);
                }
                self.last_seq = batch.seq;
                self.batches_applied += 1;
                ReplicaApply {
                    seq: batch.seq,
                    resync: false,
                }
            }
        }
    }

    /// Surrenders the snapshot for promotion, leaving the receiver
    /// empty (a later re-pairing starts from a fresh snapshot).
    pub fn take(&mut self) -> Option<RegionSnapshot<K>> {
        self.last_seq = 0;
        self.state.take()
    }

    /// Drops any held state (the pairing ended without promotion).
    pub fn clear(&mut self) {
        self.state = None;
        self.last_seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::ReplicaOp;
    use matrix_geometry::Point;

    fn full(seq: u64) -> ReplicaBatch<u64> {
        ReplicaBatch {
            seq,
            payload: ReplicaPayload::Full(RegionSnapshot::default()),
        }
    }

    fn ops(seq: u64, ops: Vec<ReplicaOp<u64>>) -> ReplicaBatch<u64> {
        ReplicaBatch {
            seq,
            payload: ReplicaPayload::Ops(ops),
        }
    }

    #[test]
    fn snapshot_then_contiguous_ops_apply() {
        let mut rx: ReplicaReceiver<u64> = ReplicaReceiver::new();
        assert!(!rx.is_warm());
        assert_eq!(
            rx.apply(full(1)),
            ReplicaApply {
                seq: 1,
                resync: false
            }
        );
        assert!(rx.is_warm());
        let a = rx.apply(ops(
            2,
            vec![ReplicaOp::Join {
                client: 7,
                pos: Point::new(1.0, 2.0),
                state_bytes: 8,
            }],
        ));
        assert!(!a.resync);
        assert_eq!(rx.snapshot().unwrap().client_count(), 1);
    }

    #[test]
    fn ops_before_any_snapshot_request_resync() {
        let mut rx: ReplicaReceiver<u64> = ReplicaReceiver::new();
        let a = rx.apply(ops(1, vec![ReplicaOp::Leave { client: 1 }]));
        assert!(a.resync);
        assert!(!rx.is_warm());
    }

    #[test]
    fn sequence_gap_requests_resync_and_drops_the_batch() {
        let mut rx: ReplicaReceiver<u64> = ReplicaReceiver::new();
        rx.apply(full(1));
        let a = rx.apply(ops(3, vec![ReplicaOp::Leave { client: 1 }]));
        assert!(a.resync);
        // A fresh full snapshot re-anchors the sequence.
        assert!(!rx.apply(full(4)).resync);
        assert!(!rx.apply(ops(5, vec![])).resync);
    }

    #[test]
    fn take_empties_the_receiver() {
        let mut rx: ReplicaReceiver<u64> = ReplicaReceiver::new();
        rx.apply(full(1));
        assert!(rx.take().is_some());
        assert!(!rx.is_warm());
        assert!(rx.take().is_none());
    }
}
