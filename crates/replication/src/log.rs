//! The primary-side replica log: what to ship to the standby, and when.

use crate::snapshot::{RegionSnapshot, ReplicaOp};
use matrix_sim::{SimDuration, SimTime};

/// The payload of one replication batch.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplicaPayload<K: Ord> {
    /// A full region snapshot — the standby replaces its state.
    Full(RegionSnapshot<K>),
    /// Incremental ops since the previous batch, in order.
    Ops(Vec<ReplicaOp<K>>),
}

/// One numbered replication batch shipped primary → standby.
///
/// Sequence numbers are contiguous per primary/standby pairing; the
/// receiver acks each batch and requests a resync (a fresh `Full`) on
/// any gap.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaBatch<K: Ord> {
    /// Batch sequence number (1-based, contiguous).
    pub seq: u64,
    /// Snapshot or ops.
    pub payload: ReplicaPayload<K>,
}

impl<K: Ord + Copy> ReplicaBatch<K> {
    /// Estimated wire size in bytes for replication-overhead accounting.
    pub fn wire_bytes(&self) -> usize {
        let header = 24; // framing, seq, payload tag
        header
            + match &self.payload {
                ReplicaPayload::Full(s) => s.wire_bytes(),
                ReplicaPayload::Ops(ops) => ops.iter().map(ReplicaOp::wire_bytes).sum(),
            }
    }

    /// Whether this batch carries a full snapshot.
    pub fn is_full(&self) -> bool {
        matches!(self.payload, ReplicaPayload::Full(_))
    }
}

/// Counters describing a primary's replication stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplicaLogStats {
    /// Full snapshots shipped.
    pub snapshots_shipped: u64,
    /// Incremental ops shipped.
    pub ops_shipped: u64,
    /// Batches forced out early because the unshipped backlog hit the
    /// lag cap.
    pub lag_forced_ships: u64,
    /// Resync requests received from the standby.
    pub resyncs: u64,
    /// Estimated bytes shipped.
    pub bytes_shipped: u64,
}

/// The primary-side shipping policy for one warm standby.
///
/// The log records session-state ops as they happen and decides, each
/// tick, whether a batch is due: the first batch (and any batch after a
/// resync request) is a full snapshot; once a full snapshot has been
/// acked, ops ship on the configured interval, or immediately when the
/// backlog exceeds the lag cap — bounding how far the standby can fall
/// behind regardless of interval.
#[derive(Debug, Clone)]
pub struct ReplicaLog<K: Ord> {
    interval: SimDuration,
    lag_cap: u32,
    next_seq: u64,
    /// Seq of the full snapshot most recently shipped, if its ack is
    /// still outstanding.
    unacked_full: Option<u64>,
    /// Whether the standby holds an acked full snapshot to apply ops on.
    synced: bool,
    pending: Vec<ReplicaOp<K>>,
    last_ship: Option<SimTime>,
    stats: ReplicaLogStats,
}

impl<K: Ord + Copy> ReplicaLog<K> {
    /// Creates a log shipping on `interval`, force-shipping at
    /// `lag_cap` backlogged ops (`0` disables the cap).
    pub fn new(interval: SimDuration, lag_cap: u32) -> ReplicaLog<K> {
        ReplicaLog {
            interval,
            lag_cap,
            next_seq: 1,
            unacked_full: None,
            synced: false,
            pending: Vec::new(),
            last_ship: None,
            stats: ReplicaLogStats::default(),
        }
    }

    /// Counters for experiments.
    pub fn stats(&self) -> &ReplicaLogStats {
        &self.stats
    }

    /// Ops recorded but not yet shipped.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// Whether the standby has acknowledged a full snapshot (ops are
    /// meaningful to it).
    pub fn is_synced(&self) -> bool {
        self.synced
    }

    /// Records one session-state op.
    pub fn record(&mut self, op: ReplicaOp<K>) {
        self.pending.push(op);
    }

    /// Whether a ship is due at `now`: the interval elapsed since the
    /// last ship (or nothing was ever shipped), or the backlog hit the
    /// lag cap.
    pub fn due(&self, now: SimTime) -> bool {
        let interval_due = match self.last_ship {
            None => true,
            Some(t) => now.since(t) >= self.interval,
        };
        let lag_due = self.lag_cap > 0 && self.pending.len() as u32 >= self.lag_cap;
        interval_due || lag_due
    }

    /// Whether the next batch must be a full snapshot (nothing acked
    /// yet, or the standby asked for a resync).
    pub fn needs_full(&self) -> bool {
        !self.synced && self.unacked_full.is_none()
    }

    /// Ships a full snapshot (the caller produces it only when
    /// [`ReplicaLog::needs_full`] says so). Clears the backlog: the
    /// snapshot supersedes every pending op.
    pub fn ship_full(&mut self, now: SimTime, snapshot: RegionSnapshot<K>) -> ReplicaBatch<K> {
        self.pending.clear();
        let seq = self.next_seq;
        self.next_seq += 1;
        self.unacked_full = Some(seq);
        self.last_ship = Some(now);
        let batch = ReplicaBatch {
            seq,
            payload: ReplicaPayload::Full(snapshot),
        };
        self.stats.snapshots_shipped += 1;
        self.stats.bytes_shipped += batch.wire_bytes() as u64;
        batch
    }

    /// Ships the backlogged ops, or `None` when there is nothing to say
    /// (an idle region produces no traffic).
    pub fn ship_ops(&mut self, now: SimTime) -> Option<ReplicaBatch<K>> {
        if self.pending.is_empty() {
            return None;
        }
        if self.lag_cap > 0 && self.pending.len() as u32 >= self.lag_cap {
            self.stats.lag_forced_ships += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.last_ship = Some(now);
        let ops = std::mem::take(&mut self.pending);
        self.stats.ops_shipped += ops.len() as u64;
        let batch = ReplicaBatch {
            seq,
            payload: ReplicaPayload::Ops(ops),
        };
        self.stats.bytes_shipped += batch.wire_bytes() as u64;
        Some(batch)
    }

    /// Handles the standby's acknowledgement of batch `seq`. A resync
    /// ack means the standby saw a gap (or lost its state): the next
    /// batch is a fresh full snapshot.
    pub fn ack(&mut self, seq: u64, resync: bool) {
        if resync {
            self.stats.resyncs += 1;
            self.synced = false;
            self.unacked_full = None;
            return;
        }
        if self.unacked_full == Some(seq) {
            self.unacked_full = None;
            self.synced = true;
        }
    }

    /// Forgets everything (the standby was released or replaced): the
    /// next pairing starts from a fresh full snapshot.
    pub fn reset(&mut self) {
        self.next_seq = 1;
        self.unacked_full = None;
        self.synced = false;
        self.pending.clear();
        self.last_ship = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix_geometry::Point;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn log() -> ReplicaLog<u64> {
        ReplicaLog::new(SimDuration::from_millis(100), 4)
    }

    #[test]
    fn first_ship_is_a_full_snapshot_then_ops() {
        let mut log = log();
        assert!(log.due(t(0)) && log.needs_full());
        let full = log.ship_full(t(0), RegionSnapshot::default());
        assert_eq!(full.seq, 1);
        assert!(full.is_full());
        // The full is in flight: the log neither resends one nor counts
        // as synced until the ack lands.
        assert!(!log.needs_full() && !log.is_synced());
        log.ack(1, false);
        assert!(log.is_synced() && !log.needs_full());

        log.record(ReplicaOp::Move {
            client: 1,
            pos: Point::new(1.0, 1.0),
        });
        assert!(!log.due(t(50)), "inside the interval");
        assert!(log.due(t(100)));
        let ops = log.ship_ops(t(100)).expect("backlog present");
        assert_eq!(ops.seq, 2);
        assert!(!ops.is_full());
        assert_eq!(log.backlog(), 0);
    }

    #[test]
    fn idle_region_ships_nothing() {
        let mut log = log();
        log.ship_full(t(0), RegionSnapshot::default());
        log.ack(1, false);
        assert!(log.due(t(200)));
        assert_eq!(log.ship_ops(t(200)), None);
    }

    #[test]
    fn lag_cap_forces_an_early_ship() {
        let mut log = log();
        log.ship_full(t(0), RegionSnapshot::default());
        log.ack(1, false);
        for i in 0..4 {
            log.record(ReplicaOp::Leave { client: i });
        }
        assert!(log.due(t(1)), "4 ops hit the cap inside the interval");
        log.ship_ops(t(1)).unwrap();
        assert_eq!(log.stats().lag_forced_ships, 1);
    }

    #[test]
    fn resync_ack_reverts_to_full_snapshots() {
        let mut log = log();
        log.ship_full(t(0), RegionSnapshot::default());
        log.ack(1, false);
        log.record(ReplicaOp::Leave { client: 1 });
        let b = log.ship_ops(t(100)).unwrap();
        log.ack(b.seq, true); // standby lost state
        assert!(log.needs_full());
        assert_eq!(log.stats().resyncs, 1);
        let again = log.ship_full(t(200), RegionSnapshot::default());
        assert!(again.is_full());
    }

    #[test]
    fn full_snapshot_supersedes_the_backlog() {
        let mut log = log();
        log.record(ReplicaOp::Leave { client: 1 });
        log.record(ReplicaOp::Leave { client: 2 });
        let full = log.ship_full(t(0), RegionSnapshot::default());
        assert!(full.is_full());
        assert_eq!(log.backlog(), 0, "ops before the snapshot are moot");
    }

    #[test]
    fn reset_starts_a_fresh_pairing() {
        let mut log = log();
        log.ship_full(t(0), RegionSnapshot::default());
        log.ack(1, false);
        log.reset();
        assert!(log.needs_full());
        let b = log.ship_full(t(1), RegionSnapshot::default());
        assert_eq!(b.seq, 1, "sequence restarts with the pairing");
    }
}
