//! The transferable image of one game server's region.

use matrix_geometry::{Point, Rect};
use matrix_sim::SimTime;
use std::collections::BTreeMap;

/// One connected client's session, as the snapshot carries it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionState {
    /// Last known position.
    pub pos: Point,
    /// Serialised per-client state size in bytes (travels on switches).
    pub state_bytes: u64,
}

/// One client's delta-compression stream state: the base origin the
/// *receiver* holds and the flushes left before a forced keyframe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamBase {
    /// Origin of the last item flushed to this client.
    pub base: Point,
    /// Flushes left before an absolute keyframe is forced.
    pub countdown: u32,
}

/// One queued-but-unflushed update, as the snapshot carries it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingUpdate {
    /// Where the event happened (already lattice-snapped).
    pub origin: Point,
    /// Payload size in bytes.
    pub payload_bytes: usize,
    /// Source entity id (`0` = anonymous).
    pub entity: u64,
    /// The vision ring the receiver was graded into when the update was
    /// admitted (`0` = near). Preserved so a restored node flushes the
    /// identical ring-tagged items the primary would have.
    pub ring: u8,
    /// Dead-reckoning velocity shipped with the item, x axis
    /// (`0.0, 0.0` = none; prediction off).
    pub vx: f64,
    /// Dead-reckoning velocity, y axis.
    pub vy: f64,
    /// Causal trace tag carried by the queued event, if sampled.
    /// Replicated so a promoted standby delivers the traced item with
    /// its original ingest time intact — the end-to-end latency a client
    /// measures across a failover includes the failover itself.
    pub trace: Option<matrix_telemetry::TraceTag>,
}

/// One dead-reckoning basis: what a receiver extrapolates one entity
/// from — the last transmitted position, velocity and instant.
/// Replicated so a promoted standby keeps suppressing consistently with
/// what the receivers actually hold, instead of rebasing (and
/// retransmitting) every visible entity at failover.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PredictBasis {
    /// The extrapolated entity.
    pub entity: u64,
    /// Last transmitted (wire) position.
    pub pos: Point,
    /// Transmitted velocity, x axis (world units/second).
    pub vx: f64,
    /// Transmitted velocity, y axis.
    pub vy: f64,
    /// Transmission instant, in seconds.
    pub time_secs: f64,
}

/// The interest-grid auto-tuner's learned state, replicated so a
/// promoted standby inherits the tuned resolution instead of re-learning
/// the region's density from the configured default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TunerState {
    /// The resolution (cells per axis) the tuner currently stands
    /// behind.
    pub cells: u32,
    /// Consecutive observations agreeing on the pending retune.
    pub streak: u32,
    /// The resolution the in-flight streak agrees on (`0` = none).
    pub pending: u32,
}

/// A versioned, restorable image of one region: everything a standby
/// needs to take over a dead primary's game server without the clients
/// reconnecting.
///
/// The snapshot is plain data — applying it to a node and re-deriving
/// the node's interest grid from the client positions reproduces the
/// region observably (client set, receiver sets, next flush). The wire
/// form lives in `matrix_core::codec` and carries
/// [`RegionSnapshot::VERSION`] so incompatible peers fail loudly
/// instead of mis-decoding.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionSnapshot<K: Ord> {
    /// Managed map range, if one was assigned.
    pub range: Option<Rect>,
    /// The game's registered radius of visibility.
    pub radius: f64,
    /// Whether bulk state had arrived (split-readiness flag).
    pub ready: bool,
    /// The packet sequence counter at snapshot time.
    pub seq: u64,
    /// When the last batch flush ran.
    pub last_flush: SimTime,
    /// The grid auto-tuner's learned state (`None` when the primary
    /// runs a static grid; the wire form omits it then, keeping
    /// static-grid frames identical to pre-tuner ones).
    pub tuner: Option<TunerState>,
    /// Connected clients and their sessions.
    pub clients: BTreeMap<K, SessionState>,
    /// Per-client delta-encoder stream state.
    pub streams: BTreeMap<K, StreamBase>,
    /// Per-client pending (queued, unflushed) updates.
    pub pending: BTreeMap<K, Vec<PendingUpdate>>,
    /// Per-client dead-reckoning bases, one per visible entity (empty
    /// when prediction is off; the wire form omits it then, keeping
    /// prediction-free frames identical to pre-prediction ones).
    pub bases: BTreeMap<K, Vec<PredictBasis>>,
}

impl<K: Ord> Default for RegionSnapshot<K> {
    fn default() -> Self {
        RegionSnapshot {
            range: None,
            radius: 0.0,
            ready: false,
            seq: 0,
            last_flush: SimTime::ZERO,
            tuner: None,
            clients: BTreeMap::new(),
            streams: BTreeMap::new(),
            pending: BTreeMap::new(),
            bases: BTreeMap::new(),
        }
    }
}

impl<K: Ord + Copy> RegionSnapshot<K> {
    /// Wire-format version of the snapshot codec. Bumped on any
    /// incompatible change to the snapshot's field set; decoders reject
    /// other versions. Optional, default-omitted extensions (the tuner
    /// state, per-item ring tags) stay within a version — frames without
    /// them decode to the defaults, and defaults encode without them.
    pub const VERSION: u32 = 1;

    /// Connected client count.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Applies one incremental op, keeping the snapshot current with the
    /// primary's session state.
    ///
    /// Ops deliberately cover only *session* state (who is connected,
    /// where, what range). The flush-pipeline state (delta bases,
    /// pending batches) rides on full snapshots only: at promotion time
    /// every client resyncs through a keyframe anyway, because the
    /// primary kept flushing after the last full snapshot and the
    /// clients' receiver-side bases are unknowable to the standby.
    pub fn apply(&mut self, op: &ReplicaOp<K>) {
        match *op {
            ReplicaOp::Join {
                client,
                pos,
                state_bytes,
            } => {
                self.clients
                    .insert(client, SessionState { pos, state_bytes });
                // A (re)join resets the client's delta stream and its
                // dead-reckoning bases (a fresh connection extrapolates
                // from nothing).
                self.streams.remove(&client);
                self.bases.remove(&client);
            }
            ReplicaOp::Move { client, pos } => {
                if let Some(s) = self.clients.get_mut(&client) {
                    s.pos = pos;
                }
            }
            ReplicaOp::Leave { client } => {
                self.clients.remove(&client);
                self.streams.remove(&client);
                self.pending.remove(&client);
                self.bases.remove(&client);
            }
            ReplicaOp::Range { range, radius } => {
                self.range = Some(range);
                if radius > 0.0 {
                    self.radius = radius;
                }
                self.ready = true;
            }
        }
    }

    /// Estimated wire size in bytes, used for replication-overhead
    /// accounting (coordinates as 8-byte floats, ids as 8 bytes, small
    /// framing constants).
    pub fn wire_bytes(&self) -> usize {
        let header = 48; // version, seq, flags, range, radius, timestamps
        let clients = self.clients.len() * 32; // id + pos + state size
        let streams = self.streams.len() * 28; // id + base + countdown
        let pending: usize = self.pending.values().map(|v| 16 + v.len() * 32).sum();
        // id + per basis: entity + pos + vel + time
        let bases: usize = self.bases.values().map(|v| 16 + v.len() * 48).sum();
        header + clients + streams + pending + bases
    }
}

/// One incremental replication op: a session-state mutation on the
/// primary, shipped to keep the standby's snapshot current between full
/// snapshots.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReplicaOp<K> {
    /// A client joined (or re-joined) the region.
    Join {
        /// The client.
        client: K,
        /// Join position.
        pos: Point,
        /// Serialised session-state size in bytes.
        state_bytes: u64,
    },
    /// A client moved.
    Move {
        /// The client.
        client: K,
        /// New position.
        pos: Point,
    },
    /// A client left (or was redirected away).
    Leave {
        /// The client.
        client: K,
    },
    /// The managed range or radius changed (splits, reclaims, absorbs).
    Range {
        /// The new range.
        range: Rect,
        /// Radius of visibility (`0.0` = unchanged).
        radius: f64,
    },
}

impl<K> ReplicaOp<K> {
    /// Estimated wire size in bytes for overhead accounting.
    pub fn wire_bytes(&self) -> usize {
        match self {
            ReplicaOp::Join { .. } => 33,
            ReplicaOp::Move { .. } => 25,
            ReplicaOp::Leave { .. } => 9,
            ReplicaOp::Range { .. } => 41,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> RegionSnapshot<u64> {
        let mut s = RegionSnapshot::default();
        s.apply(&ReplicaOp::Range {
            range: Rect::from_coords(0.0, 0.0, 100.0, 100.0),
            radius: 10.0,
        });
        s.apply(&ReplicaOp::Join {
            client: 1,
            pos: Point::new(5.0, 5.0),
            state_bytes: 64,
        });
        s
    }

    #[test]
    fn ops_maintain_session_state() {
        let mut s = snap();
        assert_eq!(s.client_count(), 1);
        s.apply(&ReplicaOp::Move {
            client: 1,
            pos: Point::new(6.0, 5.0),
        });
        assert_eq!(s.clients[&1].pos, Point::new(6.0, 5.0));
        s.apply(&ReplicaOp::Leave { client: 1 });
        assert_eq!(s.client_count(), 0);
    }

    #[test]
    fn join_resets_the_clients_stream() {
        let mut s = snap();
        s.streams.insert(
            1,
            StreamBase {
                base: Point::new(5.0, 5.0),
                countdown: 3,
            },
        );
        s.apply(&ReplicaOp::Join {
            client: 1,
            pos: Point::new(7.0, 7.0),
            state_bytes: 64,
        });
        assert!(s.streams.is_empty(), "rejoin invalidates the delta base");
    }

    #[test]
    fn leave_drops_pending_and_stream() {
        let mut s = snap();
        s.pending.insert(
            1,
            vec![PendingUpdate {
                origin: Point::new(1.0, 1.0),
                payload_bytes: 8,
                entity: 2,
                ring: 0,
                vx: 0.0,
                vy: 0.0,
                trace: None,
            }],
        );
        s.streams.insert(
            1,
            StreamBase {
                base: Point::new(5.0, 5.0),
                countdown: 1,
            },
        );
        s.apply(&ReplicaOp::Leave { client: 1 });
        assert!(s.pending.is_empty());
        assert!(s.streams.is_empty());
    }

    #[test]
    fn moves_of_unknown_clients_are_tolerated() {
        let mut s = snap();
        s.apply(&ReplicaOp::Move {
            client: 99,
            pos: Point::new(1.0, 1.0),
        });
        assert_eq!(s.client_count(), 1, "stale op after a leave is a no-op");
    }

    #[test]
    fn wire_size_grows_with_content() {
        let empty = RegionSnapshot::<u64>::default().wire_bytes();
        let filled = snap().wire_bytes();
        assert!(filled > empty);
        assert!(ReplicaOp::<u64>::Leave { client: 1 }.wire_bytes() > 0);
    }
}
