//! Fault tolerance for the Matrix middleware: region snapshots and
//! warm-standby replication.
//!
//! The paper's adaptivity story ends at *detection*: when the
//! coordinator's liveness sweep declares a server dead it can hand the
//! orphaned range to a neighbour, but every client session, position and
//! delta stream hosted on the dead node is lost. This crate supplies the
//! missing layer — the one related sync middleware treats as the
//! backbone of availability (Jacob et al., *A Glimpse of the Matrix*;
//! Arslan's service-oriented MMOG regions as restartable,
//! state-transferable units):
//!
//! * [`RegionSnapshot`] — the durable, transferable image of one game
//!   server's region: connected clients with positions and session
//!   state sizes, per-client delta-encoder bases, and the pending
//!   (unflushed) update batches. Restoring a snapshot into a fresh node
//!   reproduces the region observably: same client set, same receiver
//!   sets, same next flush.
//! * [`ReplicaOp`] / [`ReplicaBatch`] — the incremental log entries a
//!   primary ships between full snapshots: joins, moves, leaves and
//!   range changes, enough to keep a standby's snapshot current.
//! * [`ReplicaLog`] — the primary-side shipping policy: a full snapshot
//!   until the standby acknowledges one, then ops on a configurable
//!   interval (`replica_interval`), force-shipped when the unshipped
//!   backlog exceeds `replica_lag_cap`, with ack/resync tracking.
//! * [`ReplicaReceiver`] — the standby side: applies batches in
//!   sequence, requests a resync on any gap, and surrenders the
//!   snapshot at promotion time.
//!
//! Like `matrix-interest`, everything here is generic over the client
//! key and independent of the middleware's message taxonomy:
//! `matrix-core` instantiates it with `ClientId`, wraps batches in
//! protocol messages, and gives them a versioned wire form in
//! `matrix_core::codec`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod log;
mod receiver;
mod snapshot;

pub use log::{ReplicaBatch, ReplicaLog, ReplicaLogStats, ReplicaPayload};
pub use receiver::{ReplicaApply, ReplicaReceiver};
pub use snapshot::{
    PendingUpdate, PredictBasis, RegionSnapshot, ReplicaOp, SessionState, StreamBase, TunerState,
};
