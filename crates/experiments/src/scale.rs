//! E8 — the asymptotic scalability analysis (§4.2).
//!
//! Evaluates the closed-form model of `matrix_core::analysis` over the
//! parameter ranges the paper quotes: ">1,000,000 players and 10,000
//! servers", feasible "only if the number of players in the overlap
//! regions is small relative to the total number of game players", with
//! scalability "ultimately limited by the maximum I/O capacity of
//! individual servers".

use matrix_core::analysis::ScalabilityModel;
use matrix_metrics::Table;

/// Sweeps fleet sizes at 100 players/server and reports the model's
/// traffic breakdown.
pub fn fleet_table(model: &ScalabilityModel) -> Table {
    let mut t = Table::new(
        "E8 — per-server traffic vs fleet size (100 players per server)",
        &[
            "servers",
            "players",
            "overlap frac",
            "client B/s",
            "overlap B/s",
            "fanout B/s",
            "IO util",
            "feasible",
        ],
    );
    for &servers in &[100u32, 1_000, 10_000, 100_000] {
        let players = servers as u64 * 100;
        let b = model.breakdown(players, servers);
        t.push_row(&[
            servers.to_string(),
            players.to_string(),
            format!("{:.3}", b.overlap_fraction),
            format!("{:.0}", b.client_bytes),
            format!("{:.0}", b.overlap_bytes),
            format!("{:.0}", b.fanout_bytes),
            format!("{:.4}", b.io_utilisation),
            if model.feasible(players, servers) {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t
}

/// The radius sensitivity table: the "only if overlap population is
/// small" precondition, made quantitative.
pub fn radius_table() -> Table {
    let mut t = Table::new(
        "E8 — headline (1M players / 10k servers) vs radius of visibility",
        &["radius", "overlap frac", "IO util", "1M/10k feasible"],
    );
    for &radius in &[50.0f64, 200.0, 1_000.0, 5_000.0, 10_000.0, 20_000.0] {
        let model = ScalabilityModel {
            radius,
            ..ScalabilityModel::default()
        };
        let b = model.breakdown(1_000_000, 10_000);
        t.push_row(&[
            format!("{:.0}", radius),
            format!("{:.3}", b.overlap_fraction),
            format!("{:.3}", b.io_utilisation),
            if model.paper_headline_feasible() {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t
}

/// The I/O-bound table: max players as a function of per-server I/O.
pub fn io_table() -> Table {
    let mut t = Table::new(
        "E8 — max supportable players on 10k servers vs per-server I/O budget",
        &["per-server I/O", "max players"],
    );
    for &(label, io) in &[
        ("100 Mbps", 12_500_000.0f64),
        ("1 Gbps", 125_000_000.0),
        ("10 Gbps", 1_250_000_000.0),
    ] {
        let model = ScalabilityModel {
            server_io_bytes_per_sec: io,
            ..ScalabilityModel::default()
        };
        t.push_row(&[label.to_string(), model.max_players(10_000).to_string()]);
    }
    t
}

/// Runs all three tables.
pub fn run() -> Vec<Table> {
    let model = ScalabilityModel::default();
    vec![fleet_table(&model), radius_table(), io_table()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_row_is_feasible_by_default() {
        let tables = run();
        let fleet = tables[0].render();
        assert!(fleet.contains("10000"));
        // The default parameters must reproduce the paper's positive
        // headline.
        let radius = tables[1].render();
        assert!(radius.contains("yes"));
        assert!(radius.contains("NO"), "huge radii must break the headline");
    }

    #[test]
    fn io_table_is_monotone() {
        let t = io_table();
        assert_eq!(t.len(), 3);
    }
}
