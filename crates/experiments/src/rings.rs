//! E14 — tiered dissemination: multi-ring AOI + grid auto-tuning on the
//! dense-crowd workload.
//!
//! E12 showed what batching, budgets and delta compression do for a
//! dense crowd; every one of those levers still treats the farthest
//! visible entity exactly like the nearest. This experiment measures the
//! next lever: grading the AOI into concentric rings (near = every
//! event, outer tiers deterministically sampled) so the periphery of the
//! crowd — most of its area, and therefore most of its bytes — updates
//! at a fraction of the rate while the near ring stays at full fidelity.
//!
//! Three configurations replay the same seeded hotspot crowd on one
//! static server:
//!
//! * **binary** — the ring *boundaries* are configured but every rate is
//!   1, i.e. sampling off. Receiver set and bytes are identical to the
//!   plain binary vision radius (property-tested in
//!   `tests/interest_properties.rs`); the tier accounting just lets this
//!   row report its near-ring delivery for the staleness comparison.
//! * **rings** — the recommended tiers (`GameSpec::ring_tiers`): near
//!   35% of the radius at rate 1, mid 65% at 1-in-2, far 100% at 1-in-4.
//! * **rings+tuner** — the same tiers plus density-driven
//!   `cells_per_axis` auto-tuning, showing the CPU side: the tuner
//!   re-picks the grid resolution for the observed crowd instead of
//!   trusting the static default.
//!
//! The enforced verdict (CI runs `matrix-experiments rings --smoke`):
//! the ringed run must cut `UpdateBatch` bytes-on-wire by **≥ 25%**
//! versus the binary row *at unchanged near-ring staleness* — the near
//! ring is never sampled, so its delivered-item count must not drop
//! (under budget pressure it can only rise, since sampled-out far items
//! no longer compete for the per-flush caps).

use crate::harness::{Cluster, ClusterConfig, ClusterReport};
use matrix_core::WireCodec;
use matrix_games::{GameSpec, Placement, PopulationEvent, WorkloadSchedule};
use matrix_metrics::Table;
use matrix_sim::SimTime;

/// Scenario scale: the full run and a CI smoke variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Crowd size on the lone server.
    pub crowd: u32,
    /// Run horizon in seconds.
    pub horizon_secs: u64,
}

impl Scale {
    /// The full experiment.
    pub fn full() -> Scale {
        Scale {
            crowd: 1_500,
            horizon_secs: 20,
        }
    }

    /// A fast variant for CI (`matrix-experiments rings --smoke`).
    pub fn smoke() -> Scale {
        Scale {
            crowd: 300,
            horizon_secs: 10,
        }
    }
}

/// Which dissemination configuration a row ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Ring boundaries configured, every rate 1 (binary-radius bytes).
    Binary,
    /// The recommended sampled tiers.
    Rings,
    /// Sampled tiers plus grid auto-tuning.
    RingsTuned,
}

impl Mode {
    fn label(&self) -> &'static str {
        match self {
            Mode::Binary => "binary (rates 1)",
            Mode::Rings => "rings 1/2/4",
            Mode::RingsTuned => "rings + tuner",
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct RingsRow {
    /// The configuration.
    pub mode: Mode,
    /// Full cluster report.
    pub report: ClusterReport,
    /// Wall-clock cost of the whole replay (the CPU column; identical
    /// workload, so differences are the pipeline's doing).
    pub wall_ms: u128,
}

/// Builds the single-server dense-crowd configuration for one mode.
pub fn config(spec: &GameSpec, mode: Mode, seed: u64, codec: WireCodec) -> ClusterConfig {
    let mut spec = spec.clone();
    spec.update_rate_hz = spec.update_rate_hz.min(2.0);
    let (radii, rates) = spec.ring_tiers();
    spec.ring_radii = radii;
    spec.ring_sample_rates = match mode {
        // Same boundaries, sampling off: byte-identical to the plain
        // binary radius, but with per-tier delivery accounting.
        Mode::Binary => vec![1; spec.ring_radii.len()],
        _ => rates,
    };
    spec.grid_autotune = mode == Mode::RingsTuned;
    let mut cfg = ClusterConfig::static_partition(spec, 1);
    cfg.seed = seed;
    // Delivered batches are the point, not queue drops: unbounded
    // capacity, real per-client emission (the E12 arrangement).
    cfg.queue_capacity = None;
    cfg.game.emit_updates = true;
    // The per-flush caps off: they are E12's lever (graceful degradation
    // under a fixed budget, at the price of staleness — the preset's 64
    // cap defers ~80% of this crowd's items). Ring tiering attacks the
    // same periphery *without* a budget: what ships is decided by
    // relevance tier, not by truncation, so the measured reduction is
    // the AOI grading itself. The two levers compose in production.
    cfg.game.max_updates_per_flush = 0;
    cfg.game.client_budget_bytes = 0;
    // The bytes columns are measured on whichever wire codec is active
    // (v2 binary frames by default; `--codec json` re-measures on v1).
    cfg.game.codec = codec;
    cfg
}

/// Runs one mode of the scenario.
pub fn run_one(spec: &GameSpec, mode: Mode, seed: u64, scale: Scale, codec: WireCodec) -> RingsRow {
    let cfg = config(spec, mode, seed, codec);
    let horizon = SimTime::from_secs(scale.horizon_secs);
    let hotspot = cfg.spec.hotspot_a();
    let spread = cfg.spec.radius * 0.5;
    let schedule = WorkloadSchedule::new(horizon).at(
        SimTime::from_secs(0),
        PopulationEvent::Join {
            n: scale.crowd,
            placement: Placement::Hotspot {
                center: hotspot,
                spread,
            },
        },
    );
    let started = std::time::Instant::now();
    let report = Cluster::new(cfg, schedule).run();
    RingsRow {
        mode,
        report,
        wall_ms: started.elapsed().as_millis(),
    }
}

/// Runs all three modes on the BzFlag crowd.
pub fn run(seed: u64, scale: Scale, codec: WireCodec) -> Vec<RingsRow> {
    let spec = GameSpec::bzflag();
    vec![
        run_one(&spec, Mode::Binary, seed, scale, codec),
        run_one(&spec, Mode::Rings, seed, scale, codec),
        run_one(&spec, Mode::RingsTuned, seed, scale, codec),
    ]
}

/// Renders the comparison table.
pub fn table(rows: &[RingsRow]) -> Table {
    let baseline_bytes = rows
        .iter()
        .find(|r| r.mode == Mode::Binary)
        .map(|r| r.report.batch_bytes)
        .unwrap_or(0);
    let mut t = Table::new(
        "E14 — tiered dissemination on the dense crowd (multi-ring AOI + grid auto-tuning)",
        &[
            "mode", "fanned", "sampled", "near", "mid", "far", "batch MB", "Δbytes", "stale%",
            "retunes", "wall ms",
        ],
    );
    for row in rows {
        let r = &row.report;
        let items = r.keyframe_items + r.delta_items;
        let relevant = items + r.updates_rate_limited;
        let stale = if relevant == 0 {
            0.0
        } else {
            100.0 * r.updates_rate_limited as f64 / relevant as f64
        };
        let delta = if baseline_bytes == 0 || row.mode == Mode::Binary {
            "—".into()
        } else {
            format!(
                "{:+.1}%",
                100.0 * (r.batch_bytes as f64 - baseline_bytes as f64) / baseline_bytes as f64
            )
        };
        t.push_row(&[
            row.mode.label().into(),
            format!("{}", r.updates_fanned),
            format!("{}", r.updates_sampled_out),
            format!("{}", r.ring_items[0]),
            format!("{}", r.ring_items[1]),
            format!("{}", r.ring_items[2]),
            format!("{:.1}", r.batch_bytes as f64 / 1e6),
            delta,
            format!("{stale:.0}"),
            format!("{}", r.grid_retunes),
            format!("{}", row.wall_ms),
        ]);
    }
    t
}

/// One-line verdict against the acceptance bounds, printed under the
/// table and asserted by the smoke runner in CI: ≥ 25% bytes-on-wire
/// reduction at unchanged (or better) near-ring delivery.
pub fn verdict(rows: &[RingsRow]) -> Result<String, String> {
    let binary = rows
        .iter()
        .find(|r| r.mode == Mode::Binary)
        .ok_or("no binary row")?;
    let rings = rows
        .iter()
        .find(|r| r.mode == Mode::Rings)
        .ok_or("no rings row")?;
    if binary.report.batch_bytes == 0 {
        return Err("binary row shipped no bytes".into());
    }
    if binary.report.updates_sampled_out != 0 {
        return Err("binary row sampled events out — rates were not 1".into());
    }
    if rings.report.updates_sampled_out == 0 {
        return Err("ringed row sampled nothing — tiers were not in effect".into());
    }
    let reduction = 1.0 - rings.report.batch_bytes as f64 / binary.report.batch_bytes as f64;
    if reduction < 0.25 {
        return Err(format!(
            "bytes-on-wire reduction {:.1}% < 25% ({} -> {} bytes)",
            reduction * 100.0,
            binary.report.batch_bytes,
            rings.report.batch_bytes
        ));
    }
    // Near-ring staleness must not worsen: ring 0 is never sampled, so
    // its delivered count can only be depressed by a regression.
    if rings.report.ring_items[0] < binary.report.ring_items[0] {
        return Err(format!(
            "near-ring delivery dropped: {} < {}",
            rings.report.ring_items[0], binary.report.ring_items[0]
        ));
    }
    let tuned = rows.iter().find(|r| r.mode == Mode::RingsTuned);
    let retunes = tuned.map(|r| r.report.grid_retunes).unwrap_or(0);
    Ok(format!(
        "rings OK: -{:.1}% bytes-on-wire at unchanged near-ring delivery \
         ({} near items both ways, {} far events sampled out, {} grid retunes in tuned mode)",
        reduction * 100.0,
        rings.report.ring_items[0],
        rings.report.updates_sampled_out,
        retunes
    ))
}

/// CSV artefact.
pub fn to_csv(rows: &[RingsRow]) -> String {
    let mut out = String::from(
        "mode,updates_fanned,updates_sampled_out,ring0_items,ring1_items,ring2_items,\
         batch_bytes,updates_rate_limited,grid_retunes,wall_ms\n",
    );
    for row in rows {
        let r = &row.report;
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{}\n",
            row.mode.label(),
            r.updates_fanned,
            r.updates_sampled_out,
            r.ring_items[0],
            r.ring_items[1],
            r.ring_items[2],
            r.batch_bytes,
            r.updates_rate_limited,
            r.grid_retunes,
            row.wall_ms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_meets_the_acceptance_bounds() {
        let rows = run(42, Scale::smoke(), WireCodec::BinaryV2);
        let verdict = verdict(&rows).expect("rings acceptance");
        assert!(verdict.contains("rings OK"), "{verdict}");
        // The tuned row actually retuned: a 300-client crowd on an
        // 800×800 world wants a much coarser grid than the static 32.
        let tuned = rows.iter().find(|r| r.mode == Mode::RingsTuned).unwrap();
        assert!(
            tuned.report.grid_retunes > 0,
            "the density tuner must re-pick the resolution"
        );
        // Tiering only decimates the periphery: the near ring is never
        // sampled, so for the same seed the ringed run delivers at least
        // the binary run's near items (more, when far items no longer
        // compete for the per-flush caps).
        let binary = rows.iter().find(|r| r.mode == Mode::Binary).unwrap();
        let rings = rows.iter().find(|r| r.mode == Mode::Rings).unwrap();
        assert!(
            rings.report.ring_items[0] >= binary.report.ring_items[0],
            "near ring regressed: {} < {}",
            rings.report.ring_items[0],
            binary.report.ring_items[0]
        );
    }
}
