//! The discrete-event cluster harness.
//!
//! Wires the sans-io state machines of `matrix-core` to the `matrix-sim`
//! kernel: every protocol message becomes a timestamped event delivered
//! over modelled links, every game-server node owns a fluid
//! [`ServiceQueue`] whose backlog is the paper's "receive queue length",
//! and a scripted [`WorkloadSchedule`] drives clients exactly as §4.1
//! describes. One [`Cluster::run`] call replays an entire experiment
//! deterministically for a given seed.

use matrix_core::{
    Action, ClientId, ClientToGame, CoordAction, CoordMsg, CoordReply, Coordinator,
    CoordinatorConfig, GameAction, GameServerConfig, GameServerNode, GameToClient, MatrixConfig,
    MatrixServer, MatrixToGame, PeerMsg, PoolMsg, PoolReply, ResourcePool,
};
use matrix_games::{ClientPop, GameSpec, PopulationEvent, WorkloadSchedule};
use matrix_geometry::{Point, ServerId};
use matrix_metrics::{Histogram, TimeSeries};
use matrix_sim::{EventQueue, LinkModel, ServiceQueue, SimDuration, SimRng, SimTime};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Network shape of the deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetConfig {
    /// Client ↔ game-server link (wide area).
    pub client_link: LinkModel,
    /// Matrix-server ↔ Matrix-server link (datacenter).
    pub server_link: LinkModel,
    /// Matrix-server ↔ coordinator link (datacenter).
    pub coord_link: LinkModel,
    /// Provisioning delay for a pool grant (boot a spare server).
    pub pool_delay: SimDuration,
    /// Extra client-side delay to tear down and re-establish a connection
    /// during a server switch.
    pub reconnect_delay: SimDuration,
    /// How long a client takes to notice its server is dead and reconnect
    /// elsewhere (keepalive timeout).
    pub crash_detect: SimDuration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            client_link: LinkModel::constant_millis(25),
            server_link: LinkModel {
                latency: matrix_sim::LatencyModel::constant_millis(1),
                loss_probability: 0.0,
                bandwidth_bytes_per_sec: Some(125_000_000.0), // 1 Gbps
            },
            coord_link: LinkModel::constant_millis(1),
            pool_delay: SimDuration::from_millis(500),
            reconnect_delay: SimDuration::from_millis(50),
            crash_detect: SimDuration::from_secs(3),
        }
    }
}

/// Everything configurable about one experiment run.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// The game being played.
    pub spec: GameSpec,
    /// Matrix-server behaviour (adaptive vs static, thresholds, strategy).
    pub matrix: MatrixConfig,
    /// Game-server behaviour.
    pub game: GameServerConfig,
    /// Coordinator behaviour.
    pub coordinator: CoordinatorConfig,
    /// Network shape.
    pub net: NetConfig,
    /// Spare servers in the pool.
    pub pool_size: u32,
    /// Initial static servers (1 = adaptive bootstrap; >1 = static grid).
    pub initial_servers: u32,
    /// Receive-queue capacity in work units (`None` = unbounded).
    pub queue_capacity: Option<f64>,
    /// RNG seed.
    pub seed: u64,
    /// Metric sampling interval.
    pub sample_every: SimDuration,
    /// Scripted node crashes (time, victim).
    pub crashes: Vec<(SimTime, ServerId)>,
    /// Deployment failure-domain (rack / availability-zone) tags per
    /// server id, threaded into `ResourcePool::with_zones`: standby
    /// acquisitions then prefer a spare outside the requesting
    /// primary's zone. Empty (the default) leaves every zone unknown.
    pub zones: Vec<(ServerId, u32)>,
}

impl ClusterConfig {
    /// An adaptive single-bootstrap deployment of `spec` (the paper's
    /// Matrix configuration).
    pub fn adaptive(spec: GameSpec) -> ClusterConfig {
        let matrix = MatrixConfig {
            split_strategy: matrix_geometry::SplitStrategy::SplitToLeft,
            metric: spec.metric,
            ..MatrixConfig::default()
        };
        let mut game = GameServerConfig {
            client_state_bytes: spec.client_state_bytes,
            global_state_bytes: spec.global_state_bytes,
            metric: spec.metric,
            handoff_margin: spec.radius * 0.15,
            vision_radius: spec.vision_radius,
            max_updates_per_flush: spec.max_updates_per_flush,
            client_budget_bytes: spec.client_budget_bytes,
            grid_autotune: spec.grid_autotune,
            predict: spec.predict,
            motion_window: spec.motion_window,
            position_only_ring: spec.position_only_ring,
            flush_workers: spec.flush_workers,
            ..GameServerConfig::default()
        };
        game.set_rings(&spec.ring_radii, &spec.ring_sample_rates);
        game.set_error_budgets(&spec.error_budgets);
        ClusterConfig {
            spec,
            matrix,
            game,
            coordinator: CoordinatorConfig::default(),
            net: NetConfig::default(),
            pool_size: 16,
            initial_servers: 1,
            queue_capacity: None,
            seed: 42,
            sample_every: SimDuration::from_secs(1),
            crashes: Vec::new(),
            zones: Vec::new(),
        }
    }

    /// The static-partitioning baseline with `k` fixed servers.
    pub fn static_partition(spec: GameSpec, k: u32) -> ClusterConfig {
        let mut cfg = ClusterConfig::adaptive(spec);
        cfg.matrix = MatrixConfig {
            metric: cfg.matrix.metric,
            ..MatrixConfig::static_baseline()
        };
        cfg.initial_servers = k.max(1);
        cfg.pool_size = 0;
        // Static servers have finite buffers; when they saturate they drop
        // ("the static partitioning schemes just fail", §4.2).
        cfg.queue_capacity = Some(cfg.spec.server_capacity * 5.0);
        cfg
    }

    /// Stripes every server id this deployment can ever use (the
    /// initial servers and the pool spares) across `n` zones
    /// round-robin — consecutive machine ids land in different racks,
    /// so standby placement has a cross-zone spare to prefer.
    pub fn with_zone_stripes(mut self, n: u32) -> ClusterConfig {
        let last = self.initial_servers + 1 + self.pool_size;
        self.zones = (1..=last).map(|id| (ServerId(id), id % n.max(1))).collect();
        self
    }
}

/// One co-located game-server + Matrix-server pair.
struct Node {
    matrix: MatrixServer,
    game: GameServerNode,
    queue: ServiceQueue,
    alive: bool,
    clients_series: TimeSeries,
    queue_series: TimeSeries,
}

/// Simulation events.
enum Event {
    /// A client's periodic update cycle.
    ClientUpdate(ClientId),
    /// A scripted population change (index into the schedule).
    Population(usize),
    /// A client finishes (re)connecting to a server.
    ClientJoin(ClientId, ServerId),
    /// Peer message delivery.
    Peer {
        to: ServerId,
        from: ServerId,
        msg: PeerMsg,
    },
    /// Message to the coordinator.
    Coord(CoordMsg),
    /// Coordinator reply delivery.
    CoordReply(ServerId, CoordReply),
    /// Pool request (requester encoded in the message).
    Pool(ServerId, PoolMsg),
    /// Pool reply delivery.
    PoolReply(ServerId, PoolReply),
    /// Per-node game tick.
    NodeTick(ServerId),
    /// Coordinator liveness sweep.
    CoordSweep,
    /// Metrics sampling.
    Sample,
    /// Failure injection.
    Crash(ServerId),
    /// A client's keepalive on a dead server expired without a failover
    /// resume: it gives up and reconnects from scratch.
    KeepaliveExpire(ClientId),
}

/// One adaptation event for the run timeline.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyEvent {
    /// `parent` split, handing a range to `child`.
    Split {
        /// Splitting server.
        parent: ServerId,
        /// New server.
        child: ServerId,
    },
    /// `parent` reclaimed `child`.
    Reclaim {
        /// Absorbing parent.
        parent: ServerId,
        /// Folded child.
        child: ServerId,
    },
    /// A crashed/orphaned server's range was reassigned.
    Failure {
        /// The dead or orphaned server.
        victim: ServerId,
    },
    /// A crashed server's warm standby was promoted in its place.
    Failover {
        /// The dead primary.
        failed: ServerId,
        /// The promoted standby.
        standby: ServerId,
    },
}

impl std::fmt::Display for TopologyEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopologyEvent::Split { parent, child } => write!(f, "split   {parent} -> {child}"),
            TopologyEvent::Reclaim { parent, child } => write!(f, "reclaim {parent} <- {child}"),
            TopologyEvent::Failure { victim } => write!(f, "failure {victim} reassigned"),
            TopologyEvent::Failover { failed, standby } => {
                write!(f, "failover {failed} -> {standby}")
            }
        }
    }
}

/// Tracks one crashed server's clients from the crash to their first
/// post-failover delivery, measuring recovery as the client experiences
/// it.
#[derive(Debug, Clone)]
struct FailureProbe {
    victim: ServerId,
    crashed_at: SimTime,
    affected: Vec<ClientId>,
    first_delivery: Option<SimTime>,
}

/// One crashed server's recovery, as its clients experienced it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Recovery {
    /// The crashed server.
    pub victim: ServerId,
    /// Crash → first `UpdateBatch` delivered to one of its clients: the
    /// full dark window, dominated by liveness detection.
    pub dark: SimDuration,
    /// Standby promotion → first delivery (`None` when recovery went
    /// through absorb + reconnect instead of failover). This is the
    /// part replication is responsible for; detection latency is the
    /// heartbeat timeout's business.
    pub post_promotion: Option<SimDuration>,
}

/// Aggregated results of one run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Per-server client counts over time (Figure 2a).
    pub clients_per_server: Vec<TimeSeries>,
    /// Per-server receive-queue backlog over time (Figure 2b).
    pub queue_per_server: Vec<TimeSeries>,
    /// Number of active servers over time.
    pub servers_in_use: TimeSeries,
    /// Client action response latency (µs).
    pub response_latency_us: Histogram,
    /// Client switch (handoff) latency (µs).
    pub switch_latency_us: Histogram,
    /// Fraction of sampled responses above the 150 ms playability bound.
    pub late_fraction: f64,
    /// Total bytes exchanged between Matrix servers.
    pub inter_server_bytes: u64,
    /// Total client updates processed by game servers.
    pub updates_processed: u64,
    /// Total per-receiver update deliveries counted by the interest
    /// layer (each event counts once per client whose AOI contains it).
    pub updates_fanned: u64,
    /// Estimated client-bound batch traffic in bytes (headers + items +
    /// payloads), as accounted by the game servers' batching layer.
    pub batch_bytes: u64,
    /// Bytes saved by delta-encoding batch-item origins, relative to the
    /// absolute-origin wire format.
    pub delta_bytes_saved: u64,
    /// Delta-encoded items flushed to clients.
    pub delta_items: u64,
    /// Absolute (keyframe) items flushed to clients.
    pub keyframe_items: u64,
    /// Updates merged/dropped by the per-client flush policy — the
    /// staleness the rate limiter traded for bounded downlinks.
    pub updates_rate_limited: u64,
    /// Candidate receivers whose outer vision ring sampled an event out
    /// (multi-tier AOI periphery decimation).
    pub updates_sampled_out: u64,
    /// Delivered batch items per vision ring (index 0 = near; with
    /// rings disabled everything is ring 0).
    pub ring_items: [u64; matrix_core::MAX_RINGS],
    /// Interest-grid resolution retunes performed by the density-driven
    /// auto-tuner.
    pub grid_retunes: u64,
    /// Candidate deliveries suppressed by dead reckoning (predictive
    /// dissemination: the receiver's extrapolation stood in for the
    /// transmission).
    pub updates_suppressed: u64,
    /// Batch items degraded to position-only by the per-ring payload
    /// policy.
    pub payloads_stripped: u64,
    /// Sum of simulated receiver prediction errors over suppressed
    /// deliveries (world units; divide by `updates_suppressed` for the
    /// mean).
    pub pred_error_sum: f64,
    /// Largest simulated receiver prediction error among suppressed
    /// deliveries.
    pub pred_error_max: f64,
    /// Work units dropped at full queues (static-baseline failure mode).
    pub dropped_work: f64,
    /// Total client switches (handoffs) completed.
    pub switches: u64,
    /// Switches resolved by *resume*: the target server already held the
    /// client's replicated session, so no reconnect or state transfer
    /// was needed (failover promotions).
    pub resumes: u64,
    /// Clients whose keepalive on a dead server expired before any
    /// failover resume reached them — each one is a full disconnect and
    /// reconnect. Zero when failover beats the keepalive.
    pub disconnects: u64,
    /// Client update cycles that first found their server dead — each
    /// affected client detects once, then pauses until a failover
    /// resume or its keepalive expiry.
    pub updates_to_dead: u64,
    /// Estimated bytes of replication traffic between primaries and
    /// standbys — the steady-state overhead fault tolerance costs.
    pub replica_bytes: u64,
    /// Per-victim recovery timings (crash → delivery, and promotion →
    /// delivery when a failover happened).
    pub recoveries: Vec<Recovery>,
    /// `UpdateBatch` messages delivered to clients (only non-zero when
    /// `GameServerConfig::emit_updates` is on).
    pub update_batches_delivered: u64,
    /// Individual updates carried inside those batches.
    pub batched_updates_delivered: u64,
    /// Batched items that carried a causal trace tag; each one was
    /// measured at apply and echoed back as a `TraceAck` (only non-zero
    /// when `GameServerConfig::trace_sample_rate` is on).
    pub traced_deliveries: u64,
    /// Per-ring freshness measured by the trace plane, merged across
    /// every node that was alive at the end of the run:
    /// `(delivery latency, staleness at apply)` histograms in µs,
    /// index = vision ring.
    pub trace_freshness: Vec<(Histogram, Histogram)>,
    /// Trace acks folded per server (non-zero entries only). A promoted
    /// standby appearing here proves traces kept flowing — and being
    /// measured — after a failover, not just before the crash.
    pub trace_acks_by_server: Vec<(ServerId, u64)>,
    /// Splits performed across the run.
    pub splits: u64,
    /// Reclaims performed across the run.
    pub reclaims: u64,
    /// Peak number of simultaneously active servers.
    pub peak_servers: usize,
    /// Peak receive-queue backlog across all servers.
    pub peak_queue: f64,
    /// Coordinator statistics at the end of the run.
    pub coordinator: matrix_core::CoordinatorStats,
    /// Pool statistics at the end of the run.
    pub pool: matrix_core::PoolStats,
    /// Total simulated events processed.
    pub events: u64,
    /// Time-ordered adaptation timeline (splits, reclaims, failures),
    /// read back from the coordinator's flight recorder.
    pub timeline: Vec<(SimTime, TopologyEvent)>,
    /// Cluster-wide telemetry: every node's heartbeat-carried snapshot
    /// merged, plus the driver's own tick-latency histogram
    /// (`sim_tick_us`). Empty unless `GameServerConfig::telemetry` is
    /// on.
    pub telemetry: matrix_core::TelemetrySnapshot,
}

impl ClusterReport {
    /// Peak client count observed on any single server.
    pub fn peak_clients_on_one_server(&self) -> f64 {
        self.clients_per_server
            .iter()
            .filter_map(|s| s.max_value())
            .fold(0.0, f64::max)
    }
}

/// The deterministic cluster simulation.
pub struct Cluster {
    cfg: ClusterConfig,
    pop: ClientPop,
    schedule: WorkloadSchedule,
    nodes: BTreeMap<ServerId, Node>,
    coordinator: Coordinator,
    pool: ResourcePool,
    queue: EventQueue<Event>,
    now: SimTime,
    rng: SimRng,
    response_latency: Histogram,
    switch_latency: Histogram,
    switch_started: BTreeMap<ClientId, SimTime>,
    /// Clients currently dark on a dead server, keyed to their pending
    /// keepalive deadline. Cleared on resume or reconnect, so a stale
    /// `KeepaliveExpire` event cannot hit a client that long since
    /// recovered and merely happens to be mid-switch again.
    keepalive_deadline: BTreeMap<ClientId, SimTime>,
    servers_in_use: TimeSeries,
    late: u64,
    samples: u64,
    switches: u64,
    resumes: u64,
    disconnects: u64,
    updates_to_dead: u64,
    replica_bytes: u64,
    update_batches: u64,
    batched_updates: u64,
    traced_deliveries: u64,
    late_threshold: SimDuration,
    bootstrap: ServerId,
    probes: Vec<FailureProbe>,
    /// Driver-side tick latency (µs), sampled only with
    /// `GameServerConfig::telemetry` on — the clock reads are the cost
    /// being measured.
    tick_hist: Histogram,
}

impl Cluster {
    /// Builds a cluster for a config and a workload script.
    pub fn new(cfg: ClusterConfig, schedule: WorkloadSchedule) -> Cluster {
        let seed = cfg.seed;
        let spec = cfg.spec.clone();
        let pop = ClientPop::new(spec, seed);
        let mut cluster = Cluster {
            pop,
            schedule,
            nodes: BTreeMap::new(),
            coordinator: Coordinator::new(cfg.coordinator),
            pool: ResourcePool::with_capacity(cfg.initial_servers + 1, cfg.pool_size)
                .with_zones(cfg.zones.clone()),
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::seed_from_u64(seed ^ 0xC0FFEE),
            response_latency: Histogram::new(),
            switch_latency: Histogram::new(),
            switch_started: BTreeMap::new(),
            keepalive_deadline: BTreeMap::new(),
            servers_in_use: TimeSeries::new("servers"),
            late: 0,
            samples: 0,
            switches: 0,
            resumes: 0,
            disconnects: 0,
            updates_to_dead: 0,
            replica_bytes: 0,
            update_batches: 0,
            batched_updates: 0,
            traced_deliveries: 0,
            late_threshold: SimDuration::from_millis(150),
            bootstrap: ServerId(1),
            probes: Vec::new(),
            tick_hist: Histogram::new(),
            cfg,
        };
        cluster.bootstrap();
        cluster
    }

    fn make_node(&self, id: ServerId) -> Node {
        let mut queue = ServiceQueue::new(self.cfg.spec.server_capacity);
        if let Some(cap) = self.cfg.queue_capacity {
            queue = queue.with_capacity(cap);
        }
        Node {
            matrix: MatrixServer::new(id, self.cfg.matrix),
            game: GameServerNode::new(id, self.cfg.game),
            queue,
            alive: true,
            clients_series: TimeSeries::new(format!("{id} clients")),
            queue_series: TimeSeries::new(format!("{id} queue")),
        }
    }

    fn bootstrap(&mut self) {
        let world = self.cfg.spec.world;
        let radius = self.cfg.spec.radius;
        if self.cfg.initial_servers <= 1 {
            // Adaptive bootstrap: one server registers the world.
            let id = ServerId(1);
            self.bootstrap = id;
            let mut node = self.make_node(id);
            let actions = node.game.register(world, radius);
            self.nodes.insert(id, node);
            self.process_game_actions(id, actions);
        } else {
            // Static grid: K servers with fixed ranges, tables pushed once.
            let servers: Vec<ServerId> = (1..=self.cfg.initial_servers).map(ServerId).collect();
            self.bootstrap = servers[0];
            let map = matrix_geometry::PartitionMap::static_grid(world, &servers)
                .expect("static grid construction");
            for &s in &servers {
                let mut node = self.make_node(s);
                node.matrix =
                    MatrixServer::with_range(s, self.cfg.matrix, map.range_of(s).unwrap(), radius);
                let _ = node.game.register(world, radius); // registers radius
                node.game.on_matrix(
                    SimTime::ZERO,
                    MatrixToGame::SetRange {
                        range: map.range_of(s).unwrap(),
                        radius,
                    },
                );
                self.nodes.insert(s, node);
            }
            let (coordinator, actions) = Coordinator::with_map(self.cfg.coordinator, map, radius);
            self.coordinator = coordinator;
            for a in actions {
                let CoordAction::Send(to, reply) = a;
                self.deliver_coord_reply_now(to, reply);
            }
        }
        // Schedule the script, node ticks, sweeps, samples, crashes.
        let events: Vec<(SimTime, usize)> = self
            .schedule
            .events()
            .iter()
            .enumerate()
            .map(|(i, (t, _))| (*t, i))
            .collect();
        for (t, i) in events {
            self.queue.schedule(t, Event::Population(i));
        }
        let node_ids: Vec<ServerId> = self.nodes.keys().copied().collect();
        for id in node_ids {
            self.queue
                .schedule(SimTime::ZERO + self.cfg.game.tick, Event::NodeTick(id));
        }
        self.queue
            .schedule(SimTime::from_secs(1), Event::CoordSweep);
        self.queue
            .schedule(SimTime::ZERO + self.cfg.sample_every, Event::Sample);
        let crashes = self.cfg.crashes.clone();
        for (t, victim) in crashes {
            self.queue.schedule(t, Event::Crash(victim));
        }
    }

    /// Runs to the schedule horizon and produces the report.
    pub fn run(mut self) -> ClusterReport {
        let horizon = self.schedule.horizon;
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (t, ev) = self.queue.pop().expect("peeked");
            self.now = t;
            self.handle(ev);
        }
        self.report()
    }

    // -- event handling -------------------------------------------------------

    fn handle(&mut self, ev: Event) {
        match ev {
            Event::ClientUpdate(id) => self.client_update(id),
            Event::Population(idx) => self.population_event(idx),
            Event::ClientJoin(id, server) => self.client_join(id, server),
            Event::Peer { to, from, msg } => {
                if let Some(node) = self.nodes.get_mut(&to) {
                    if node.alive {
                        let actions = node.matrix.on_peer(self.now, from, msg);
                        self.process_matrix_actions(to, actions);
                        return;
                    }
                }
                // Unknown target: a fresh pool server being adopted for a
                // split, or armed as a warm standby.
                if matches!(
                    msg,
                    PeerMsg::AdoptPartition { .. } | PeerMsg::StandbyAssign { .. }
                ) {
                    let mut node = self.make_node(to);
                    let actions = node.matrix.on_peer(self.now, from, msg);
                    self.nodes.insert(to, node);
                    self.queue
                        .schedule(self.now + self.cfg.game.tick, Event::NodeTick(to));
                    self.process_matrix_actions(to, actions);
                }
            }
            Event::Coord(msg) => {
                // Splits, reclaims and orphaned ranges land in the
                // coordinator's flight recorder; the run timeline is
                // derived from it in `report`, not tracked here.
                let actions = self.coordinator.handle(self.now, msg);
                self.process_coord_actions(actions);
            }
            Event::CoordReply(to, reply) => {
                if let Some(node) = self.nodes.get_mut(&to) {
                    if node.alive {
                        let actions = node.matrix.on_coord(self.now, reply);
                        self.process_matrix_actions(to, actions);
                    }
                }
            }
            Event::Pool(requester, msg) => {
                let reply = self.pool.handle(msg);
                if let Some(reply) = reply {
                    let at = self.now + self.cfg.net.pool_delay;
                    self.queue.schedule(at, Event::PoolReply(requester, reply));
                }
            }
            Event::PoolReply(to, reply) => {
                if let Some(node) = self.nodes.get_mut(&to) {
                    if node.alive {
                        let actions = node.matrix.on_pool(self.now, reply);
                        self.process_matrix_actions(to, actions);
                    }
                }
            }
            Event::NodeTick(id) => self.node_tick(id),
            Event::CoordSweep => {
                // Failure declarations, failovers and promotions are
                // structured events in the coordinator's flight recorder
                // now; `report` reads them back, so the sweep needs no
                // side-channel probing of replies.
                let actions = self.coordinator.check_liveness(self.now);
                self.process_coord_actions(actions);
                self.queue
                    .schedule(self.now + SimDuration::from_secs(1), Event::CoordSweep);
            }
            Event::Sample => self.sample(),
            Event::Crash(victim) => {
                if let Some(node) = self.nodes.get_mut(&victim) {
                    node.alive = false;
                    // Snapshot the victim's population: the failure probe
                    // reports how long these clients went dark.
                    self.probes.push(FailureProbe {
                        victim,
                        crashed_at: self.now,
                        affected: node.game.client_ids(),
                        first_delivery: None,
                    });
                }
            }
            Event::KeepaliveExpire(id) => {
                // Only a client still dark from the episode this event
                // belongs to gives up and reconnects from scratch; a
                // client resumed (or reconnected) since had its deadline
                // cleared, even if it is now mid-switch for an ordinary
                // handover.
                let expired = self
                    .keepalive_deadline
                    .get(&id)
                    .is_some_and(|deadline| *deadline <= self.now);
                if expired && self.pop.get(id).is_some_and(|c| c.switching) {
                    self.keepalive_deadline.remove(&id);
                    self.disconnects += 1;
                    let pos = self.pop.get(id).expect("checked").walker.pos;
                    let owner = self.owner_of(pos);
                    self.client_join(id, owner);
                }
            }
        }
    }

    fn client_update(&mut self, id: ClientId) {
        let interval = SimDuration::from_secs_f64(self.pop.spec().update_interval_secs());
        let Some(client) = self.pop.get(id) else {
            return; // left the game
        };
        if client.switching {
            // Paused mid-switch; resume on the next cycle.
            self.queue
                .schedule(self.now + interval, Event::ClientUpdate(id));
            return;
        }
        let server = client.server;
        let Some((pos, action)) = self.pop.step(id, interval.as_secs_f64()) else {
            return;
        };
        let spec = self.cfg.spec.clone();
        let server_alive = self.nodes.get(&server).map(|n| n.alive).unwrap_or(false);
        if !server_alive {
            // The client's server is gone. It keeps trying (these uplink
            // packets are the staleness window) until either a failover
            // resume re-points it — no reconnect — or the keepalive
            // expires and it reconnects to whoever owns its position.
            self.updates_to_dead += 1;
            self.pop.begin_switch(id);
            self.switch_started.entry(id).or_insert(self.now);
            self.keepalive_deadline
                .insert(id, self.now + self.cfg.net.crash_detect);
            self.queue.schedule(
                self.now + self.cfg.net.crash_detect,
                Event::KeepaliveExpire(id),
            );
            self.queue
                .schedule(self.now + interval, Event::ClientUpdate(id));
            return;
        }
        if let Some(node) = self.nodes.get_mut(&server) {
            if node.alive {
                // Move packet.
                let fanned_before = node.game.stats().updates_fanned;
                let mut actions = node
                    .game
                    .on_client(self.now, id, ClientToGame::Move { pos });
                if action {
                    actions.extend(node.game.on_client(
                        self.now,
                        id,
                        ClientToGame::Action {
                            pos,
                            payload_bytes: spec.action_bytes,
                        },
                    ));
                }
                let fanned = node.game.stats().updates_fanned - fanned_before;
                let packets = if action { 2.0 } else { 1.0 };
                let work = packets * spec.packet_work + spec.fanout_work * fanned as f64;
                node.queue.arrive(self.now, work);
                // Response latency sample for actions: uplink + queueing +
                // downlink.
                if action {
                    let mut rng = self.rng.fork();
                    let up = self
                        .cfg
                        .net
                        .client_link
                        .delay_for(spec.action_bytes, &mut rng);
                    let down = self.cfg.net.client_link.delay_for(64, &mut rng);
                    if let (Some(up), Some(down)) = (up, down) {
                        let queueing = node.queue.drain_time(self.now);
                        let total = up + queueing + down;
                        self.response_latency.record(total.as_micros() as f64);
                        self.samples += 1;
                        if total >= self.late_threshold {
                            self.late += 1;
                        }
                    }
                }
                self.process_game_actions(server, actions);
            }
        }
        self.queue
            .schedule(self.now + interval, Event::ClientUpdate(id));
    }

    fn population_event(&mut self, idx: usize) {
        let (_, event) = self.schedule.events()[idx];
        match event {
            PopulationEvent::Join { .. } => {
                let ids = self.pop.apply(event, self.bootstrap);
                for id in ids {
                    let pos = self.pop.get(id).expect("just joined").walker.pos;
                    let owner = self.owner_of(pos);
                    self.pop.set_server(id, owner);
                    self.pop.begin_switch(id); // not connected until the join lands
                    let mut rng = self.rng.fork();
                    let delay = self
                        .cfg
                        .net
                        .client_link
                        .delay_for(256, &mut rng)
                        .unwrap_or(SimDuration::from_millis(25));
                    self.queue
                        .schedule(self.now + delay, Event::ClientJoin(id, owner));
                }
            }
            PopulationEvent::Leave { .. } => {
                let ids = self.pop.apply(event, self.bootstrap);
                for id in ids {
                    // Tell the hosting game server.
                    let hosts: Vec<ServerId> = self
                        .nodes
                        .iter()
                        .filter(|(_, n)| n.game.has_client(id))
                        .map(|(s, _)| *s)
                        .collect();
                    for s in hosts {
                        if let Some(node) = self.nodes.get_mut(&s) {
                            let actions = node.game.on_client(self.now, id, ClientToGame::Leave);
                            self.process_game_actions(s, actions);
                        }
                    }
                }
            }
        }
    }

    fn client_join(&mut self, id: ClientId, server: ServerId) {
        let Some(client) = self.pop.get(id) else {
            return; // left while connecting
        };
        let pos = client.walker.pos;
        let state_bytes = self.cfg.spec.client_state_bytes;
        // The target may have retired (reclaim racing the redirect); fall
        // back to the current owner of the client's position.
        let target = if self
            .nodes
            .get(&server)
            .map(|n| n.alive && n.matrix.lifecycle() == matrix_core::Lifecycle::Active)
            .unwrap_or(false)
        {
            server
        } else {
            self.owner_of(pos)
        };
        self.keepalive_deadline.remove(&id);
        if let Some(node) = self.nodes.get_mut(&target) {
            let actions =
                node.game
                    .on_client(self.now, id, ClientToGame::Join { pos, state_bytes });
            node.queue.arrive(self.now, self.cfg.spec.packet_work);
            self.pop.set_server(id, target);
            self.process_game_actions(target, actions);
        }
        // Handoff latency bookkeeping.
        if let Some(started) = self.switch_started.remove(&id) {
            let latency = self.now.since(started);
            self.switch_latency.record(latency.as_micros() as f64);
            self.switches += 1;
        } else {
            // First join: start the update loop.
            let interval = SimDuration::from_secs_f64(self.pop.spec().update_interval_secs());
            self.queue
                .schedule(self.now + interval, Event::ClientUpdate(id));
        }
    }

    fn node_tick(&mut self, id: ServerId) {
        let Some(node) = self.nodes.get_mut(&id) else {
            return;
        };
        if !node.alive {
            return; // crashed: no more ticks, no more heartbeats
        }
        // Retired nodes keep ticking (cheaply, producing no actions): the
        // pool can hand their id out again, and the resurrected server must
        // resume load reports and heartbeats immediately. Idle nodes tick
        // their Matrix side too — warm standbys heartbeat while idle.
        if node.matrix.lifecycle() == matrix_core::Lifecycle::Active {
            let t0 = self.cfg.game.telemetry.then(std::time::Instant::now);
            let backlog = node.queue.backlog_at(self.now);
            let game_actions = node.game.on_tick(self.now, backlog);
            self.process_game_actions(id, game_actions);
            if let Some(t0) = t0 {
                self.tick_hist.record(t0.elapsed().as_secs_f64() * 1e6);
            }
        }
        if let Some(node) = self.nodes.get_mut(&id) {
            let matrix_actions = node.matrix.on_tick(self.now);
            self.process_matrix_actions(id, matrix_actions);
        }
        self.queue
            .schedule(self.now + self.cfg.game.tick, Event::NodeTick(id));
    }

    fn sample(&mut self) {
        let t = self.now.as_secs_f64();
        let mut active = 0;
        for node in self.nodes.values_mut() {
            let is_active = node.alive && node.matrix.lifecycle() == matrix_core::Lifecycle::Active;
            if is_active {
                active += 1;
            }
            let clients = if node.alive {
                node.game.client_count() as f64
            } else {
                0.0
            };
            let backlog = if node.alive {
                node.queue.backlog_at(self.now)
            } else {
                0.0
            };
            node.clients_series.push(t, clients);
            node.queue_series.push(t, backlog);
        }
        self.servers_in_use.push(t, active as f64);
        self.queue
            .schedule(self.now + self.cfg.sample_every, Event::Sample);
    }

    // -- action dispatch -------------------------------------------------------

    /// Applies game-server actions: local Matrix deliveries are processed
    /// iteratively; client messages are interpreted by the client driver.
    fn process_game_actions(&mut self, server: ServerId, actions: Vec<GameAction>) {
        let mut work: VecDeque<(ServerId, GameAction)> =
            actions.into_iter().map(|a| (server, a)).collect();
        while let Some((at, action)) = work.pop_front() {
            match action {
                GameAction::ToMatrix(msg) => {
                    let Some(node) = self.nodes.get_mut(&at) else {
                        continue;
                    };
                    if !node.alive {
                        continue;
                    }
                    let matrix_actions = node.matrix.on_game(self.now, msg);
                    self.dispatch_matrix(at, matrix_actions, &mut work);
                }
                GameAction::ToClient(client, msg) => self.client_message(at, client, msg),
            }
        }
    }

    /// Applies Matrix-server actions (wrapper around the shared dispatcher).
    fn process_matrix_actions(&mut self, server: ServerId, actions: Vec<Action>) {
        let mut work: VecDeque<(ServerId, GameAction)> = VecDeque::new();
        self.dispatch_matrix(server, actions, &mut work);
        while let Some((at, action)) = work.pop_front() {
            match action {
                GameAction::ToMatrix(msg) => {
                    let Some(node) = self.nodes.get_mut(&at) else {
                        continue;
                    };
                    if !node.alive {
                        continue;
                    }
                    let matrix_actions = node.matrix.on_game(self.now, msg);
                    self.dispatch_matrix(at, matrix_actions, &mut work);
                }
                GameAction::ToClient(client, msg) => self.client_message(at, client, msg),
            }
        }
    }

    /// Routes Matrix actions: local game deliveries are processed
    /// immediately (same machine, §3.2.2) with queue accounting; remote
    /// sends become events with link latency.
    fn dispatch_matrix(
        &mut self,
        from: ServerId,
        actions: Vec<Action>,
        work: &mut VecDeque<(ServerId, GameAction)>,
    ) {
        for action in actions {
            match action {
                Action::ToGame(msg) => {
                    let Some(node) = self.nodes.get_mut(&from) else {
                        continue;
                    };
                    if !node.alive {
                        continue;
                    }
                    // Charge delivered peer updates as receive-queue work.
                    if let MatrixToGame::Deliver(ref pkt) = msg {
                        let fanned_before = node.game.stats().updates_fanned;
                        let spec = &self.cfg.spec;
                        let ga = node.game.on_matrix(self.now, msg.clone());
                        let fanned = node.game.stats().updates_fanned - fanned_before;
                        let w = spec.work_for_remote(fanned as usize);
                        node.queue.arrive(self.now, w);
                        let _ = pkt;
                        for a in ga {
                            work.push_back((from, a));
                        }
                    } else {
                        let redirect = matches!(
                            msg,
                            MatrixToGame::RedirectClients { .. } | MatrixToGame::RedirectAll { .. }
                        );
                        let before = node.game.client_count();
                        let ga = node.game.on_matrix(self.now, msg);
                        if redirect && before > 0 {
                            // The buffered work of redirected connections
                            // leaves with them.
                            let kept = node.game.client_count() as f64 / before as f64;
                            node.queue.scale_backlog(self.now, kept);
                        }
                        for a in ga {
                            work.push_back((from, a));
                        }
                    }
                }
                Action::ToPeer(to, msg) => {
                    let bytes = peer_msg_bytes(&msg);
                    if matches!(msg, PeerMsg::Replica { .. } | PeerMsg::ReplicaAck { .. }) {
                        self.replica_bytes += bytes as u64;
                    }
                    let mut rng = self.rng.fork();
                    if let Some(delay) = self.cfg.net.server_link.delay_for(bytes, &mut rng) {
                        self.queue
                            .schedule(self.now + delay, Event::Peer { to, from, msg });
                    }
                }
                Action::ToCoord(msg) => {
                    let mut rng = self.rng.fork();
                    if let Some(delay) = self.cfg.net.coord_link.delay_for(256, &mut rng) {
                        self.queue.schedule(self.now + delay, Event::Coord(msg));
                    }
                }
                Action::ToPool(msg) => {
                    self.queue.schedule(self.now, Event::Pool(from, msg));
                }
            }
        }
    }

    fn process_coord_actions(&mut self, actions: Vec<CoordAction>) {
        for CoordAction::Send(to, reply) in actions {
            let mut rng = self.rng.fork();
            if let Some(delay) = self.cfg.net.coord_link.delay_for(4096, &mut rng) {
                self.queue
                    .schedule(self.now + delay, Event::CoordReply(to, reply));
            }
        }
    }

    fn deliver_coord_reply_now(&mut self, to: ServerId, reply: CoordReply) {
        if let Some(node) = self.nodes.get_mut(&to) {
            let actions = node.matrix.on_coord(self.now, reply);
            self.process_matrix_actions(to, actions);
        }
    }

    /// Interprets a server-to-client message on the client driver.
    fn client_message(&mut self, from: ServerId, client: ClientId, msg: GameToClient) {
        match msg {
            GameToClient::Joined { server } => {
                self.pop.set_server(client, server);
            }
            GameToClient::Ack { .. } | GameToClient::Update { .. } => {
                // Latency accounting happens at the send site; per-client
                // rendering is out of scope for the cluster harness.
            }
            GameToClient::UpdateBatch { updates } => {
                // Emitted when `GameServerConfig::emit_updates` is on:
                // count delivery so experiments can verify batching
                // end-to-end and measure coalescing rates.
                self.update_batches += 1;
                self.batched_updates += updates.len() as u64;
                // Close the causal trace loop exactly as a real client
                // does: each traced item is measured against the apply
                // instant (now — batches deliver on the driver's own
                // timeline) and echoed to the serving node, which folds
                // the numbers into its per-ring freshness histograms.
                let apply_us = self.now.as_micros();
                for item in &updates {
                    if let Some(tag) = item.trace() {
                        self.traced_deliveries += 1;
                        if let Some(node) = self.nodes.get_mut(&from) {
                            // TraceAck produces no actions, so the
                            // result needs no dispatch.
                            let _ = node.game.on_client(
                                self.now,
                                client,
                                ClientToGame::TraceAck {
                                    ring: item.ring(),
                                    latency_us: tag.latency_us(apply_us),
                                    staleness_us: tag.staleness_us(apply_us),
                                },
                            );
                        }
                    }
                }
                // Failure probes: the first delivery to a crashed
                // server's client marks the end of its dark window.
                for probe in &mut self.probes {
                    if probe.first_delivery.is_none() && probe.affected.contains(&client) {
                        probe.first_delivery = Some(self.now);
                    }
                }
            }
            GameToClient::SwitchServer { to } => {
                if self.pop.get(client).is_none() {
                    return; // already left
                }
                // Resume: the target already holds this client's session
                // (a promoted standby restored it from the replica). The
                // client just re-points its uplink — no reconnect, no
                // state transfer, no Join round-trip.
                if self
                    .nodes
                    .get(&to)
                    .is_some_and(|n| n.alive && n.game.has_client(client))
                {
                    self.pop.set_server(client, to);
                    self.keepalive_deadline.remove(&client);
                    self.resumes += 1;
                    if let Some(started) = self.switch_started.remove(&client) {
                        self.switch_latency
                            .record(self.now.since(started).as_micros() as f64);
                        self.switches += 1;
                    }
                    return;
                }
                self.pop.begin_switch(client);
                self.switch_started.entry(client).or_insert(self.now);
                // The reconnect uploads the client's session state over
                // the access link, so bigger state and slower links both
                // stretch the handoff (experiment E4).
                let state = self.cfg.spec.client_state_bytes as usize + 256;
                let mut rng = self.rng.fork();
                let delay = self
                    .cfg
                    .net
                    .client_link
                    .delay_for(state, &mut rng)
                    .unwrap_or(SimDuration::from_millis(25))
                    + self.cfg.net.reconnect_delay;
                self.queue
                    .schedule(self.now + delay, Event::ClientJoin(client, to));
            }
        }
    }

    /// Ground-truth owner lookup for client placement (the directory the
    /// coordinator maintains).
    fn owner_of(&self, pos: Point) -> ServerId {
        self.coordinator
            .map()
            .and_then(|m| m.owner_of(pos))
            .unwrap_or(self.bootstrap)
    }

    // -- reporting ---------------------------------------------------------------

    fn report(mut self) -> ClusterReport {
        let mut clients_per_server = Vec::new();
        let mut queue_per_server = Vec::new();
        let mut inter_server_bytes = 0;
        let mut updates_processed = 0;
        let mut updates_fanned = 0;
        let mut batch_bytes = 0;
        let mut delta_bytes_saved = 0;
        let mut delta_items = 0;
        let mut keyframe_items = 0;
        let mut updates_rate_limited = 0;
        let mut updates_sampled_out = 0;
        let mut ring_items = [0u64; matrix_core::MAX_RINGS];
        let mut grid_retunes = 0;
        let mut updates_suppressed = 0;
        let mut payloads_stripped = 0;
        let mut pred_error_sum = 0.0;
        let mut pred_error_max = 0.0f64;
        let mut dropped = 0.0;
        let mut splits = 0;
        let mut reclaims = 0;
        let mut peak_queue: f64 = 0.0;
        let mut trace_freshness: Vec<(Histogram, Histogram)> = (0..matrix_core::MAX_RINGS)
            .map(|_| (Histogram::new(), Histogram::new()))
            .collect();
        let mut trace_acks_by_server = Vec::new();
        for node in self.nodes.values_mut() {
            let (latency, staleness) = node.game.trace_histograms();
            for (ring, slot) in trace_freshness.iter_mut().enumerate() {
                slot.0.merge(&latency[ring]);
                slot.1.merge(&staleness[ring]);
            }
            if node.game.trace_acks() > 0 {
                trace_acks_by_server.push((node.game.id(), node.game.trace_acks()));
            }
            inter_server_bytes += node.matrix.stats().bytes_to_peers;
            updates_processed += node.game.stats().moves + node.game.stats().actions;
            updates_fanned += node.game.stats().updates_fanned;
            batch_bytes += node.game.stats().batch_bytes;
            delta_bytes_saved += node.game.stats().delta_bytes_saved;
            delta_items += node.game.stats().delta_items;
            keyframe_items += node.game.stats().keyframe_items;
            updates_rate_limited += node.game.stats().updates_rate_limited;
            updates_sampled_out += node.game.stats().updates_sampled_out;
            for (total, per_node) in ring_items.iter_mut().zip(node.game.stats().ring_items) {
                *total += per_node;
            }
            grid_retunes += node.game.stats().grid_retunes;
            updates_suppressed += node.game.stats().updates_suppressed;
            payloads_stripped += node.game.stats().payloads_stripped;
            pred_error_sum += node.game.stats().pred_error_sum;
            pred_error_max = pred_error_max.max(node.game.stats().pred_error_max);
            dropped += node.queue.total_dropped();
            splits += node.matrix.stats().splits;
            reclaims += node.matrix.stats().reclaims;
            peak_queue = peak_queue.max(node.queue_series.max_value().unwrap_or(0.0));
            clients_per_server.push(node.clients_series.clone());
            queue_per_server.push(node.queue_series.clone());
        }
        let peak_servers = self.servers_in_use.max_value().unwrap_or(0.0) as usize;
        let late_fraction = if self.samples == 0 {
            0.0
        } else {
            self.late as f64 / self.samples as f64
        };
        // Derive the adaptation timeline — and each victim's promotion
        // instant — from the coordinator's flight recorder instead of
        // probing protocol messages in flight.
        let mut timeline = Vec::new();
        let mut promoted_at: BTreeMap<ServerId, SimTime> = BTreeMap::new();
        let events: Vec<&matrix_core::TelemetryEvent> =
            self.coordinator.recorder().events().collect();
        for (i, ev) in events.iter().enumerate() {
            match ev.kind {
                matrix_core::EventKind::Split { parent, child } => {
                    timeline.push((ev.at, TopologyEvent::Split { parent, child }));
                }
                matrix_core::EventKind::Reclaim { parent, child } => {
                    timeline.push((ev.at, TopologyEvent::Reclaim { parent, child }));
                }
                matrix_core::EventKind::Orphan { child } => {
                    timeline.push((ev.at, TopologyEvent::Failure { victim: child }));
                }
                matrix_core::EventKind::FailureDeclared { failed, .. } => {
                    // A declaration resolved by a standby promotion shows
                    // up as the Failover entry recorded right after it;
                    // only absorb-and-reassign recoveries appear as bare
                    // failures.
                    let resolved_by_failover = matches!(
                        events.get(i + 1).map(|e| &e.kind),
                        Some(matrix_core::EventKind::Failover { failed: f, .. }) if *f == failed
                    );
                    if !resolved_by_failover {
                        timeline.push((ev.at, TopologyEvent::Failure { victim: failed }));
                    }
                }
                matrix_core::EventKind::Failover { failed, standby } => {
                    timeline.push((ev.at, TopologyEvent::Failover { failed, standby }));
                    promoted_at.entry(failed).or_insert(ev.at);
                }
                _ => {}
            }
        }
        let mut telemetry = self.coordinator.merged_telemetry();
        telemetry.hist("sim_tick_us", &self.tick_hist);
        ClusterReport {
            clients_per_server,
            queue_per_server,
            servers_in_use: self.servers_in_use,
            response_latency_us: self.response_latency,
            switch_latency_us: self.switch_latency,
            late_fraction,
            inter_server_bytes,
            updates_processed,
            updates_fanned,
            batch_bytes,
            delta_bytes_saved,
            delta_items,
            keyframe_items,
            updates_rate_limited,
            updates_sampled_out,
            ring_items,
            grid_retunes,
            updates_suppressed,
            payloads_stripped,
            pred_error_sum,
            pred_error_max,
            dropped_work: dropped,
            switches: self.switches,
            resumes: self.resumes,
            disconnects: self.disconnects,
            updates_to_dead: self.updates_to_dead,
            replica_bytes: self.replica_bytes,
            recoveries: self
                .probes
                .iter()
                .filter_map(|p| {
                    p.first_delivery.map(|t| Recovery {
                        victim: p.victim,
                        dark: t.since(p.crashed_at),
                        post_promotion: promoted_at.get(&p.victim).map(|at| t.since(*at)),
                    })
                })
                .collect(),
            update_batches_delivered: self.update_batches,
            batched_updates_delivered: self.batched_updates,
            traced_deliveries: self.traced_deliveries,
            trace_freshness,
            trace_acks_by_server,
            splits,
            reclaims,
            peak_servers,
            peak_queue,
            coordinator: *self.coordinator.stats(),
            pool: *self.pool.stats(),
            events: self.queue.delivered(),
            timeline,
            telemetry,
        }
    }
}

/// Wire size of a peer message for bandwidth accounting.
fn peer_msg_bytes(msg: &PeerMsg) -> usize {
    match msg {
        PeerMsg::Update(pkt) => pkt.wire_size(),
        PeerMsg::StateTransfer { bytes, .. } => *bytes as usize,
        PeerMsg::ClientTransfer { bytes, .. } => *bytes as usize + 64,
        PeerMsg::Replica { batch, .. } => batch.wire_bytes(),
        PeerMsg::ReplicaAck { .. } => 32,
        _ => 128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix_games::{Placement, WorkloadSchedule};

    fn small_spec() -> GameSpec {
        // A scaled-down bzflag so debug-mode tests stay fast.
        let mut spec = GameSpec::bzflag();
        spec.update_rate_hz = 2.0;
        spec.server_capacity = 300.0;
        spec
    }

    #[test]
    fn steady_small_population_stays_on_one_server() {
        let spec = small_spec();
        let schedule = WorkloadSchedule::steady(50, SimTime::from_secs(30));
        let report = Cluster::new(ClusterConfig::adaptive(spec), schedule).run();
        assert_eq!(report.peak_servers, 1);
        assert_eq!(report.splits, 0);
        assert!(
            report.updates_processed > 1000,
            "{}",
            report.updates_processed
        );
    }

    #[test]
    fn hotspot_forces_splits() {
        let mut spec = small_spec();
        spec.update_rate_hz = 2.0;
        let schedule = WorkloadSchedule::flash_crowd(&spec, 20, 500, SimTime::from_secs(5));
        let mut cfg = ClusterConfig::adaptive(spec);
        cfg.matrix.overload_clients = 100;
        cfg.matrix.underload_clients = 50;
        let report = Cluster::new(cfg, schedule).run();
        assert!(
            report.splits >= 1,
            "hotspot must trigger at least one split"
        );
        assert!(report.peak_servers >= 2);
        assert!(report.switches > 0, "splits redirect clients");
    }

    #[test]
    fn static_cluster_never_splits_and_drops_under_hotspot() {
        let spec = small_spec();
        let schedule = WorkloadSchedule::flash_crowd(&spec, 20, 600, SimTime::from_secs(5));
        let report = Cluster::new(ClusterConfig::static_partition(spec, 2), schedule).run();
        assert_eq!(report.splits, 0);
        assert_eq!(report.peak_servers, 2);
        assert!(
            report.dropped_work > 0.0,
            "saturated static servers must drop"
        );
    }

    #[test]
    fn same_seed_reproduces_the_run() {
        let spec = small_spec();
        let run = || {
            let schedule = WorkloadSchedule::flash_crowd(&spec, 10, 200, SimTime::from_secs(5));
            let mut cfg = ClusterConfig::adaptive(spec.clone());
            cfg.matrix.overload_clients = 80;
            let r = Cluster::new(cfg, schedule).run();
            (
                r.splits,
                r.switches,
                r.updates_processed,
                r.inter_server_bytes,
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn clients_are_conserved() {
        let spec = small_spec();
        let schedule = WorkloadSchedule::flash_crowd(&spec, 30, 300, SimTime::from_secs(5));
        let mut cfg = ClusterConfig::adaptive(spec);
        cfg.matrix.overload_clients = 100;
        cfg.matrix.underload_clients = 50;
        let cluster = Cluster::new(cfg, schedule);
        let report = cluster.run();
        // At the end every connected client is hosted by exactly one
        // active server; the series' last samples must sum to the
        // population.
        let total: f64 = report
            .clients_per_server
            .iter()
            .filter_map(|s| s.last_value())
            .sum();
        assert!(
            (total - 330.0).abs() <= 5.0,
            "clients lost or duplicated: {total} hosted at the end"
        );
    }

    #[test]
    fn failover_keeps_clients_connected_without_reconnects() {
        // Two static servers, each paired with a warm standby; one dies.
        // Its clients must keep receiving updates through the promoted
        // standby with zero reconnects — the keepalive never expires.
        let mut spec = small_spec();
        spec.update_rate_hz = 2.0;
        let mut cfg = ClusterConfig::static_partition(spec, 2);
        cfg.queue_capacity = None;
        cfg.game.emit_updates = true;
        cfg.matrix.standby_replication = true;
        cfg.pool_size = 4;
        cfg.coordinator.heartbeat_timeout = SimDuration::from_secs(2);
        cfg.net.crash_detect = SimDuration::from_secs(8);
        cfg.crashes = vec![(SimTime::from_secs(10), ServerId(1))];
        // Two stable crowds away from the partition boundary, so no one
        // is mid-roam when the crash hits (a client switching *into* a
        // dying server is genuinely unrecoverable — its session never
        // reached the replica).
        let spec = cfg.spec.clone();
        let schedule = WorkloadSchedule::new(SimTime::from_secs(25))
            .at(
                SimTime::ZERO,
                PopulationEvent::Join {
                    n: 60,
                    placement: Placement::Hotspot {
                        center: spec.hotspot_a(),
                        spread: spec.radius * 0.3,
                    },
                },
            )
            .at(
                SimTime::ZERO,
                PopulationEvent::Join {
                    n: 60,
                    placement: Placement::Hotspot {
                        center: spec.hotspot_b(),
                        spread: spec.radius * 0.3,
                    },
                },
            );
        let report = Cluster::new(cfg, schedule).run();

        assert_eq!(report.coordinator.failovers, 1, "{:?}", report.timeline);
        assert_eq!(report.disconnects, 0, "no client waited out its keepalive");
        assert!(report.resumes > 0, "victim clients resumed on the standby");
        assert!(report.replica_bytes > 0, "replication actually streamed");
        let recovery = report
            .recoveries
            .iter()
            .find(|r| r.victim == ServerId(1))
            .expect("the victim's clients must recover");
        let post = recovery
            .post_promotion
            .expect("recovery must go through a promotion");
        // First post-failover delivery within one batch interval plus
        // one replica interval of the promotion (plus client link).
        let bound = GameServerConfig::default().batch_interval
            + GameServerConfig::default().replica_interval
            + SimDuration::from_millis(100);
        assert!(
            post <= bound,
            "post-promotion recovery {post} exceeds {bound}"
        );
        // End-to-end population sanity: everyone is still hosted.
        let total: f64 = report
            .clients_per_server
            .iter()
            .filter_map(|s| s.last_value())
            .sum();
        assert!((total - 120.0).abs() <= 2.0, "clients lost: {total}");
    }

    #[test]
    fn zone_striped_deployments_place_standbys_cross_zone() {
        // Deployment config assigns rack ids; the pool must then prefer
        // standbys outside the primary's failure domain (the PR 4
        // follow-on: drivers now *assign* zones, not just tests).
        let mut spec = small_spec();
        spec.update_rate_hz = 2.0;
        let mut cfg = ClusterConfig::static_partition(spec, 2).with_zone_stripes(2);
        cfg.matrix.standby_replication = true;
        cfg.pool_size = 4;
        assert!(!cfg.zones.is_empty(), "stripes must produce tags");
        let schedule = WorkloadSchedule::steady(20, SimTime::from_secs(8));
        let report = Cluster::new(cfg, schedule).run();
        assert!(
            report.pool.standby_grants >= 2,
            "both primaries pair: {:?}",
            report.pool
        );
        assert!(
            report.pool.cross_zone_grants >= 1,
            "zone-aware placement must land at least one standby off-rack: {:?}",
            report.pool
        );
    }

    #[test]
    fn crash_recovery_absorbs_partition() {
        let spec = small_spec();
        let schedule = WorkloadSchedule::flash_crowd(&spec, 20, 300, SimTime::from_secs(5));
        let mut cfg = ClusterConfig::adaptive(spec);
        cfg.matrix.overload_clients = 100;
        cfg.matrix.underload_clients = 10; // never reclaim in this test
                                           // Crash whichever child exists at t=40 (the first split child gets
                                           // the first pool id, initial_servers + 1 = 2).
        cfg.crashes = vec![(SimTime::from_secs(40), ServerId(2))];
        let report = Cluster::new(cfg, schedule).run();
        assert!(report.splits >= 1, "need a split before the crash");
        assert!(
            report.coordinator.failures_declared >= 1,
            "coordinator must declare the crashed server dead"
        );
    }
}
