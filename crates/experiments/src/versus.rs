//! E3 — Matrix vs static partitioning for BzFlag, Quake 2 and Daimonin.
//!
//! §4.2: "For these three games, we showed that Matrix is able to
//! outperform static partitioning schemes when unexpected loads or
//! hotspots occur. In particular, Matrix is able to automatically use
//! extra servers to handle the load while the static partitioning schemes
//! just fail." Each game gets the same unexpected 600-client flash crowd;
//! Matrix runs adaptively against statically partitioned deployments of
//! 2 and 4 servers.

use crate::harness::{Cluster, ClusterConfig, ClusterReport};
use matrix_games::{GameSpec, WorkloadSchedule};
use matrix_metrics::Table;
use matrix_sim::SimTime;

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct VersusRow {
    /// Game title.
    pub game: String,
    /// System under test.
    pub system: String,
    /// Peak servers used.
    pub peak_servers: usize,
    /// Peak queue backlog.
    pub peak_queue: f64,
    /// Dropped work (static failure mode).
    pub dropped_work: f64,
    /// Fraction of responses above 150 ms.
    pub late_fraction: f64,
    /// p95 response latency in ms.
    pub p95_ms: f64,
}

fn row(game: &str, system: &str, report: &ClusterReport) -> VersusRow {
    VersusRow {
        game: game.to_string(),
        system: system.to_string(),
        peak_servers: report.peak_servers,
        peak_queue: report.peak_queue,
        dropped_work: report.dropped_work,
        late_fraction: report.late_fraction,
        p95_ms: report.response_latency_us.p95().unwrap_or(0.0) / 1000.0,
    }
}

/// Runs the three-game comparison. `seed` controls the workload.
pub fn run(seed: u64) -> Vec<VersusRow> {
    let mut rows = Vec::new();
    for spec in GameSpec::all() {
        let name = spec.name.clone();
        let schedule = || WorkloadSchedule::flash_crowd(&spec, 100, 600, SimTime::from_secs(20));

        let mut adaptive = ClusterConfig::adaptive(spec.clone());
        adaptive.seed = seed;
        let report = Cluster::new(adaptive, schedule()).run();
        rows.push(row(&name, "matrix", &report));

        for k in [2u32, 4] {
            let mut st = ClusterConfig::static_partition(spec.clone(), k);
            st.seed = seed;
            let report = Cluster::new(st, schedule()).run();
            rows.push(row(&name, &format!("static-{k}"), &report));
        }
    }
    rows
}

/// Renders the comparison table.
pub fn table(rows: &[VersusRow]) -> Table {
    let mut t = Table::new(
        "E3 — Matrix vs static partitioning under a 600-client hotspot (per game)",
        &[
            "game",
            "system",
            "servers",
            "peak queue",
            "dropped work",
            "late >150ms",
            "p95 (ms)",
        ],
    );
    for r in rows {
        t.push_row(&[
            r.game.clone(),
            r.system.clone(),
            r.peak_servers.to_string(),
            format!("{:.0}", r.peak_queue),
            format!("{:.0}", r.dropped_work),
            format!("{:.1}%", r.late_fraction * 100.0),
            format!("{:.1}", r.p95_ms),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_rows() {
        let rows = vec![VersusRow {
            game: "bzflag".into(),
            system: "matrix".into(),
            peak_servers: 4,
            peak_queue: 100.0,
            dropped_work: 0.0,
            late_fraction: 0.01,
            p95_ms: 42.0,
        }];
        let rendered = table(&rows).render();
        assert!(rendered.contains("bzflag"));
        assert!(rendered.contains("matrix"));
    }
}
