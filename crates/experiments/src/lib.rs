//! Experiment harness regenerating every table and figure of the Matrix
//! paper (see DESIGN.md §4 for the experiment index E1–E10, A1–A2).
//!
//! The [`harness`] module wires the `matrix-core` state machines to the
//! `matrix-sim` kernel; each experiment module scripts a workload, runs
//! the cluster, and renders paper-style output (ASCII charts + tables +
//! CSV). The `matrix-experiments` binary exposes them as subcommands:
//!
//! ```text
//! matrix-experiments fig2        # E1/E2  Figure 2a + 2b
//! matrix-experiments versus      # E3     Matrix vs static, 3 games
//! matrix-experiments micro-switch# E4     switching latency
//! matrix-experiments micro-mc    # E5     coordinator overhead
//! matrix-experiments micro-traffic # E6   traffic vs overlap size
//! matrix-experiments userstudy   # E7     latency-perception proxy
//! matrix-experiments scale       # E8     asymptotic analysis
//! matrix-experiments ablation-split      # A1
//! matrix-experiments ablation-hysteresis # A2
//! matrix-experiments dense       # E12    dense-crowd interest management
//! matrix-experiments failover    # E13    warm-standby failover
//! matrix-experiments rings       # E14    multi-ring AOI + grid auto-tuning
//! matrix-experiments predict     # E15    dead-reckoning suppression
//! matrix-experiments trace       # E16    causal tracing + freshness SLOs
//! matrix-experiments all         # everything, in order
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod densecrowd;
pub mod failover;
pub mod fig2;
pub mod harness;
pub mod micro;
pub mod predict;
pub mod rings;
pub mod scale;
pub mod sweep;
pub mod trace;
pub mod userstudy;
pub mod versus;

pub use harness::{Cluster, ClusterConfig, ClusterReport, NetConfig};
