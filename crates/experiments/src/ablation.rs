//! A1/A2 — ablations of Matrix design choices.
//!
//! * **A1** split strategy: the paper's simple split-to-left against the
//!   locality/load-aware alternatives its §5 cites as complementary work.
//! * **A2** hysteresis: §3.2.3 claims "simple heuristics ... prevent
//!   oscillations and ensure stability". Disabling the streaks, cooldown
//!   and reclaim headroom shows the flapping they prevent.

use crate::harness::{Cluster, ClusterConfig, ClusterReport};
use matrix_games::{GameSpec, WorkloadSchedule};
use matrix_geometry::SplitStrategy;
use matrix_metrics::Table;
use matrix_sim::{SimDuration, SimTime};

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Splits over the run.
    pub splits: u64,
    /// Reclaims over the run.
    pub reclaims: u64,
    /// Peak servers.
    pub peak_servers: usize,
    /// Handoffs.
    pub switches: u64,
    /// Peak queue backlog.
    pub peak_queue: f64,
    /// Fraction of responses above 150 ms.
    pub late_fraction: f64,
}

fn row(variant: &str, r: &ClusterReport) -> AblationRow {
    AblationRow {
        variant: variant.to_string(),
        splits: r.splits,
        reclaims: r.reclaims,
        peak_servers: r.peak_servers,
        switches: r.switches,
        peak_queue: r.peak_queue,
        late_fraction: r.late_fraction,
    }
}

/// A1: Figure-2 workload under each split strategy.
pub fn run_split_strategies(seed: u64) -> Vec<AblationRow> {
    let mut rows = Vec::new();
    for strategy in [
        SplitStrategy::SplitToLeft,
        SplitStrategy::LongestAxis,
        SplitStrategy::LoadAwareMedian,
    ] {
        let spec = GameSpec::bzflag();
        let schedule = WorkloadSchedule::figure2(&spec, 100);
        let mut cfg = ClusterConfig::adaptive(spec);
        cfg.seed = seed;
        cfg.matrix.split_strategy = strategy;
        let report = Cluster::new(cfg, schedule).run();
        rows.push(row(&strategy.to_string(), &report));
    }
    rows
}

/// A2: borderline load right at the overload threshold, with and without
/// the anti-oscillation heuristics.
///
/// The flap trap: a dense 280-client crowd generates just over one
/// (slightly derated) server's capacity, so the server overloads through
/// its queue backlog rather than the client count. A split halves the
/// crowd into two ~140-client servers — both under the 150-client
/// underload bound — so a reclaim is immediately tempting, which rebuilds
/// the overload, which splits again. The paper's heuristics (streaks,
/// cooldown, reclaim headroom) are exactly what breaks this cycle.
pub fn run_hysteresis(seed: u64) -> Vec<AblationRow> {
    let mut spec = GameSpec::bzflag();
    spec.server_capacity = 2_500.0;
    let crowd = matrix_games::Placement::Hotspot {
        center: spec.hotspot_a(),
        spread: spec.radius * 0.3,
    };
    let schedule = || {
        WorkloadSchedule::new(SimTime::from_secs(150))
            .at(
                SimTime::ZERO,
                matrix_games::PopulationEvent::Join {
                    n: 10,
                    placement: matrix_games::Placement::Uniform,
                },
            )
            .at(
                SimTime::from_secs(5),
                matrix_games::PopulationEvent::Join {
                    n: 280,
                    placement: crowd,
                },
            )
    };

    let mut with = ClusterConfig::adaptive(spec.clone());
    with.seed = seed;
    let with_report = Cluster::new(with, schedule()).run();

    let mut without = ClusterConfig::adaptive(spec.clone());
    without.seed = seed;
    without.matrix.overload_streak = 1;
    without.matrix.underload_streak = 1;
    without.matrix.cooldown = SimDuration::from_millis(0);
    without.matrix.reclaim_headroom = 1.0;
    let without_report = Cluster::new(without, schedule()).run();

    vec![
        row("hysteresis on (paper)", &with_report),
        row("hysteresis off", &without_report),
    ]
}

/// Renders an ablation table.
pub fn table(title: &str, rows: &[AblationRow]) -> Table {
    let mut t = Table::new(
        title,
        &[
            "variant",
            "splits",
            "reclaims",
            "peak servers",
            "switches",
            "peak queue",
            "late >150ms",
        ],
    );
    for r in rows {
        t.push_row(&[
            r.variant.clone(),
            r.splits.to_string(),
            r.reclaims.to_string(),
            r.peak_servers.to_string(),
            r.switches.to_string(),
            format!("{:.0}", r.peak_queue),
            format!("{:.1}%", r.late_fraction * 100.0),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let rows = vec![AblationRow {
            variant: "split-to-left".into(),
            splits: 5,
            reclaims: 5,
            peak_servers: 4,
            switches: 100,
            peak_queue: 9000.0,
            late_fraction: 0.1,
        }];
        assert!(table("A1", &rows).render().contains("split-to-left"));
    }
}
