//! `matrix-experiments` — regenerate the Matrix paper's tables and figures.
//!
//! Run with a subcommand (see `--help`); results print as ASCII charts and
//! tables, and CSV artefacts land in `./results/`.

use matrix_experiments::{
    ablation, densecrowd, failover, fig2, micro, predict, rings, scale, sweep, trace, userstudy,
    versus,
};
use std::io::Write;

const HELP: &str = "\
matrix-experiments — regenerate the Matrix paper's evaluation

USAGE: matrix-experiments [--seed N] [--smoke] [--codec binary|json] [--flush-workers N] <command>

COMMANDS:
  fig2                 E1/E2: Figure 2a (clients/server) + 2b (queue length)
  fig2a                E1 only
  fig2b                E2 only
  versus               E3: Matrix vs static partitioning (BzFlag, Quake2, Daimonin)
  micro-switch         E4: client switching latency sweep
  micro-mc             E5: coordinator overhead (recompute cost + traffic share)
  micro-traffic        E6: inter-server traffic vs overlap-region size
  userstudy            E7: latency-perception proxy for the user study
  scale                E8: asymptotic scalability analysis
  sweep                E11: adaptivity scaling vs crowd size
  dense [--smoke]      E12: dense-crowd interest management (2k clients, one server)
  failover [--smoke]   E13: warm-standby failover (kill a region server mid-run)
  rings [--smoke]      E14: multi-ring AOI + grid auto-tuning vs the binary radius
  predict [--smoke]    E15: dead-reckoning suppression vs the sampled-rings pipeline
  trace [--smoke]      E16: end-to-end causal tracing + freshness SLO plane
  ablation-split       A1: split-strategy ablation
  ablation-hysteresis  A2: oscillation-prevention ablation
  all                  run everything in order

`--codec` picks the wire codec the byte columns of E12/E14/E15 are
measured on (v2 binary frames by default; `json` re-measures on the v1
JSON codec). The verdicts must hold on either.

`--flush-workers N` shards the dissemination flush across N workers
(E12's knob; default 1 = the sequential path). Sharding is
byte-invariant on the wire, so every verdict must hold unchanged at
any worker count.
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut smoke = false;
    let mut codec = matrix_core::WireCodec::BinaryV2;
    let mut flush_workers = 1u32;
    let mut command = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--smoke" => smoke = true,
            "--flush-workers" => {
                flush_workers = it
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--flush-workers needs an integer"));
            }
            "--codec" => {
                codec = match it.next().map(|s| s.as_str()) {
                    Some("binary") => matrix_core::WireCodec::BinaryV2,
                    Some("json") => matrix_core::WireCodec::Json,
                    _ => die("--codec needs 'binary' or 'json'"),
                };
            }
            "--help" | "-h" => {
                println!("{HELP}");
                return;
            }
            cmd if command.is_none() => command = Some(cmd.to_string()),
            other => die(&format!("unexpected argument: {other}")),
        }
    }
    let command = command.unwrap_or_else(|| "all".to_string());
    std::fs::create_dir_all("results").ok();

    match command.as_str() {
        "fig2" => run_fig2(seed, true, true),
        "fig2a" => run_fig2(seed, true, false),
        "fig2b" => run_fig2(seed, false, true),
        "versus" => run_versus(seed),
        "micro-switch" => run_micro_switch(seed),
        "micro-mc" => run_micro_mc(seed),
        "micro-traffic" => run_micro_traffic(seed),
        "userstudy" => run_userstudy(seed),
        "scale" => run_scale(),
        "sweep" => run_sweep(seed),
        "dense" => run_dense(seed, smoke, codec, flush_workers),
        "failover" => run_failover(seed, smoke),
        "rings" => run_rings(seed, smoke, codec),
        "predict" => run_predict(seed, smoke, codec),
        "trace" => run_trace(seed, smoke),
        "ablation-split" => run_ablation_split(seed),
        "ablation-hysteresis" => run_ablation_hysteresis(seed),
        "all" => {
            run_fig2(seed, true, true);
            run_versus(seed);
            run_micro_switch(seed);
            run_micro_mc(seed);
            run_micro_traffic(seed);
            run_userstudy(seed);
            run_scale();
            run_sweep(seed);
            run_dense(seed, false, codec, flush_workers);
            run_failover(seed, false);
            run_rings(seed, false, codec);
            run_predict(seed, false, codec);
            run_trace(seed, false);
            run_ablation_split(seed);
            run_ablation_hysteresis(seed);
        }
        other => die(&format!("unknown command: {other}\n\n{HELP}")),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2)
}

fn save(name: &str, content: &str) {
    let path = format!("results/{name}");
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(content.as_bytes())) {
        Ok(()) => println!("[saved {path}]"),
        Err(e) => matrix_core::emit_diag(
            "experiments",
            "save_failed",
            &[("path", &path), ("err", &e.to_string())],
        ),
    }
}

/// Reports one experiment's acceptance failure as a structured
/// diagnostic and exits non-zero (the CI contract: exit code 1 means
/// "ran fine, verdict failed").
fn acceptance_failed(experiment: &str, why: &str) -> ! {
    matrix_core::emit_diag(
        "experiments",
        "acceptance_failed",
        &[("experiment", experiment), ("why", why)],
    );
    std::process::exit(1)
}

fn run_fig2(seed: u64, a: bool, b: bool) {
    let report = fig2::run(seed);
    if a {
        println!("{}", fig2::render_2a(&report));
    }
    if b {
        println!("{}", fig2::render_2b(&report));
    }
    println!("{}", fig2::summary(&report).render());
    println!("{}", fig2::timeline(&report));
    save("fig2.csv", &fig2::to_csv(&report));
}

fn run_versus(seed: u64) {
    let rows = versus::run(seed);
    let table = versus::table(&rows);
    println!("{}", table.render());
    save("versus.csv", &table.to_csv());
}

fn run_micro_switch(seed: u64) {
    let rows = micro::run_switching(seed);
    let table = micro::switching_table(&rows);
    println!("{}", table.render());
    save("micro_switch.csv", &table.to_csv());
}

fn run_micro_mc(seed: u64) {
    let cost = micro::mc_cost_table(&micro::run_mc_cost());
    println!("{}", cost.render());
    save("micro_mc_cost.csv", &cost.to_csv());
    let share = micro::run_mc_share(seed);
    println!("{}", share.render());
    save("micro_mc_share.csv", &share.to_csv());
}

fn run_micro_traffic(seed: u64) {
    let rows = micro::run_traffic(seed);
    let table = micro::traffic_table(&rows);
    println!("{}", table.render());
    save("micro_traffic.csv", &table.to_csv());
}

fn run_userstudy(seed: u64) {
    let rows = userstudy::run(seed);
    let table = userstudy::table(&rows);
    println!("{}", table.render());
    save("userstudy.csv", &table.to_csv());
}

fn run_sweep(seed: u64) {
    let rows = sweep::run(seed);
    let table = sweep::table(&rows);
    println!("{}", table.render());
    save("sweep.csv", &table.to_csv());
}

fn run_dense(seed: u64, smoke: bool, codec: matrix_core::WireCodec, flush_workers: u32) {
    let scale = if smoke {
        densecrowd::Scale::smoke()
    } else {
        densecrowd::Scale::full()
    };
    let rows = densecrowd::run(seed, codec, scale, flush_workers);
    let table = densecrowd::table(&rows);
    println!("{}", table.render());
    match densecrowd::verdict(&rows) {
        Ok(line) => println!("{line}"),
        Err(why) => acceptance_failed("dense", &why),
    }
    save("densecrowd.csv", &table.to_csv());
}

fn run_failover(seed: u64, smoke: bool) {
    let scale = if smoke {
        failover::Scale::smoke()
    } else {
        failover::Scale::full()
    };
    let rows = failover::run(seed, scale);
    println!("{}", failover::table(&rows).render());
    let game = failover::config(matrix_games::GameSpec::bzflag(), true, seed, scale).game;
    match failover::verdict(&rows, &game) {
        Ok(line) => println!("{line}"),
        Err(why) => acceptance_failed("failover", &why),
    }
    save("failover.csv", &failover::to_csv(&rows));
}

fn run_rings(seed: u64, smoke: bool, codec: matrix_core::WireCodec) {
    let scale = if smoke {
        rings::Scale::smoke()
    } else {
        rings::Scale::full()
    };
    let rows = rings::run(seed, scale, codec);
    println!("{}", rings::table(&rows).render());
    match rings::verdict(&rows) {
        Ok(line) => println!("{line}"),
        Err(why) => acceptance_failed("rings", &why),
    }
    save("rings.csv", &rings::to_csv(&rows));
}

fn run_predict(seed: u64, smoke: bool, codec: matrix_core::WireCodec) {
    let scale = if smoke {
        predict::Scale::smoke()
    } else {
        predict::Scale::full()
    };
    let rows = predict::run(seed, scale, codec);
    println!("{}", predict::table(&rows).render());
    match predict::verdict(&rows, &matrix_games::GameSpec::racer()) {
        Ok(line) => println!("{line}"),
        Err(why) => acceptance_failed("predict", &why),
    }
    save("predict.csv", &predict::to_csv(&rows));
}

fn run_trace(seed: u64, smoke: bool) {
    let scale = if smoke {
        trace::Scale::smoke()
    } else {
        trace::Scale::full()
    };
    let (dense, failover, rt) = trace::run(seed, scale);
    println!("{}", trace::table(&dense).render());
    println!("{}", trace::table(&failover).render());
    println!("{}", trace::rt_table(&rt).render());
    match trace::verdict(&dense, &failover, &rt) {
        Ok(line) => println!("{line}"),
        Err(why) => acceptance_failed("trace", &why),
    }
    save("trace.csv", &trace::to_csv(&dense, &failover, &rt));
}

fn run_scale() {
    for table in scale::run() {
        println!("{}", table.render());
    }
}

fn run_ablation_split(seed: u64) {
    let rows = ablation::run_split_strategies(seed);
    let table = ablation::table("A1 — split-strategy ablation (Figure-2 workload)", &rows);
    println!("{}", table.render());
    save("ablation_split.csv", &table.to_csv());
}

fn run_ablation_hysteresis(seed: u64) {
    let rows = ablation::run_hysteresis(seed);
    let table = ablation::table(
        "A2 — oscillation-prevention ablation (borderline 280-client crowd)",
        &rows,
    );
    println!("{}", table.render());
    save("ablation_hysteresis.csv", &table.to_csv());
}
