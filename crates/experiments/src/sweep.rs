//! E11 (our addition) — adaptivity scaling: servers recruited and latency
//! vs crowd size.
//!
//! The paper shows one crowd size (600). This sweep charts *how* Matrix's
//! response scales with the surprise: crowd sizes from harmless to 2× the
//! paper's, reporting servers recruited, handoffs, and playability. The
//! shape to expect: a flat region (no adaptation needed), then a staircase
//! of recruited servers that keeps the late fraction bounded while the
//! static baseline's failure grows without bound.

use crate::harness::{Cluster, ClusterConfig, ClusterReport};
use matrix_games::{GameSpec, WorkloadSchedule};
use matrix_metrics::Table;
use matrix_sim::SimTime;

/// One crowd-size point, adaptive vs static.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Hotspot crowd size.
    pub crowd: u32,
    /// Peak servers Matrix used.
    pub matrix_servers: usize,
    /// Matrix handoffs.
    pub matrix_switches: u64,
    /// Matrix late fraction.
    pub matrix_late: f64,
    /// Static-2 late fraction.
    pub static_late: f64,
    /// Static-2 dropped work.
    pub static_dropped: f64,
}

fn run_one(spec: &GameSpec, crowd: u32, seed: u64) -> (ClusterReport, ClusterReport) {
    let schedule = || WorkloadSchedule::flash_crowd(spec, 100, crowd, SimTime::from_secs(15));
    let mut adaptive = ClusterConfig::adaptive(spec.clone());
    adaptive.seed = seed;
    let a = Cluster::new(adaptive, schedule()).run();
    let mut st = ClusterConfig::static_partition(spec.clone(), 2);
    st.seed = seed;
    let s = Cluster::new(st, schedule()).run();
    (a, s)
}

/// Runs the crowd-size sweep on BzFlag.
pub fn run(seed: u64) -> Vec<SweepRow> {
    let spec = GameSpec::bzflag();
    [150u32, 300, 600, 900, 1200]
        .iter()
        .map(|&crowd| {
            let (a, s) = run_one(&spec, crowd, seed);
            SweepRow {
                crowd,
                matrix_servers: a.peak_servers,
                matrix_switches: a.switches,
                matrix_late: a.late_fraction,
                static_late: s.late_fraction,
                static_dropped: s.dropped_work,
            }
        })
        .collect()
}

/// Renders the sweep table.
pub fn table(rows: &[SweepRow]) -> Table {
    let mut t = Table::new(
        "E11 — adaptivity scaling: response to growing flash crowds (BzFlag)",
        &[
            "crowd",
            "matrix servers",
            "matrix switches",
            "matrix late",
            "static-2 late",
            "static-2 dropped",
        ],
    );
    for r in rows {
        t.push_row(&[
            r.crowd.to_string(),
            r.matrix_servers.to_string(),
            r.matrix_switches.to_string(),
            format!("{:.1}%", r.matrix_late * 100.0),
            format!("{:.1}%", r.static_late * 100.0),
            format!("{:.0}", r.static_dropped),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let rows = vec![SweepRow {
            crowd: 600,
            matrix_servers: 4,
            matrix_switches: 2000,
            matrix_late: 0.15,
            static_late: 0.6,
            static_dropped: 1000.0,
        }];
        assert!(table(&rows).render().contains("600"));
    }
}
