//! E7 — the user study, recast as a measurable latency comparison.
//!
//! §4.2: "a simple user study, using Bzflag, showed that Matrix is
//! completely transparent to real game players. Even under heavy load,
//! requiring Matrix to add servers, game players did not perceive any
//! significant Matrix-induced performance degradation."
//!
//! We cannot recruit players, so the perceptual question becomes a
//! measurable one: does the response-latency distribution a client
//! experiences under Matrix-with-hotspot look like an unloaded server, and
//! unlike a statically partitioned server under the same hotspot? The
//! playability threshold is the 150 ms bound the paper cites (Armitage's
//! Quake 3 server-selection study).

use crate::harness::{Cluster, ClusterConfig, ClusterReport};
use matrix_games::{GameSpec, WorkloadSchedule};
use matrix_metrics::Table;

/// Latency summary for one deployment.
#[derive(Debug, Clone)]
pub struct StudyRow {
    /// Deployment description.
    pub system: String,
    /// Median response latency (ms).
    pub p50_ms: f64,
    /// 90th percentile (ms).
    pub p90_ms: f64,
    /// 99th percentile (ms).
    pub p99_ms: f64,
    /// Fraction of responses above 150 ms.
    pub late_fraction: f64,
    /// Peak servers used.
    pub servers: usize,
}

fn row(system: &str, report: &ClusterReport) -> StudyRow {
    StudyRow {
        system: system.to_string(),
        p50_ms: report.response_latency_us.p50().unwrap_or(0.0) / 1000.0,
        p90_ms: report.response_latency_us.quantile(0.90).unwrap_or(0.0) / 1000.0,
        p99_ms: report.response_latency_us.p99().unwrap_or(0.0) / 1000.0,
        late_fraction: report.late_fraction,
        servers: report.peak_servers,
    }
}

/// Runs the three deployments of the study.
pub fn run(seed: u64) -> Vec<StudyRow> {
    let spec = GameSpec::bzflag();

    // (a) Unloaded reference: 100 wandering clients, one server.
    let baseline_schedule = WorkloadSchedule::steady(100, matrix_sim::SimTime::from_secs(300));
    let mut cfg = ClusterConfig::adaptive(spec.clone());
    cfg.seed = seed;
    let baseline = Cluster::new(cfg, baseline_schedule).run();

    // (b) Matrix with the full Figure-2 hotspot workload.
    let mut cfg = ClusterConfig::adaptive(spec.clone());
    cfg.seed = seed;
    let matrix = Cluster::new(cfg, WorkloadSchedule::figure2(&spec, 100)).run();

    // (c) Static 2-server deployment under the same hotspots.
    let mut cfg = ClusterConfig::static_partition(spec.clone(), 2);
    cfg.seed = seed;
    let static2 = Cluster::new(cfg, WorkloadSchedule::figure2(&spec, 100)).run();

    vec![
        row("unloaded single server", &baseline),
        row("matrix + hotspots", &matrix),
        row("static-2 + hotspots", &static2),
    ]
}

/// Renders the study table.
pub fn table(rows: &[StudyRow]) -> Table {
    let mut t = Table::new(
        "E7 — user-study proxy: response latency under hotspots (150 ms playability bound)",
        &[
            "system",
            "p50 (ms)",
            "p90 (ms)",
            "p99 (ms)",
            "late >150ms",
            "servers",
        ],
    );
    for r in rows {
        t.push_row(&[
            r.system.clone(),
            format!("{:.1}", r.p50_ms),
            format!("{:.1}", r.p90_ms),
            format!("{:.1}", r.p99_ms),
            format!("{:.2}%", r.late_fraction * 100.0),
            r.servers.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let rows = vec![StudyRow {
            system: "matrix".into(),
            p50_ms: 51.0,
            p90_ms: 60.0,
            p99_ms: 120.0,
            late_fraction: 0.01,
            servers: 4,
        }];
        assert!(table(&rows).render().contains("matrix"));
    }
}
