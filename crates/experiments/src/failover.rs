//! E13 — fault tolerance: region snapshots, warm standbys, fast failover.
//!
//! The paper's liveness machinery *detects* a dead server and hands its
//! range to a neighbour — but every session on the dead node is lost,
//! and its clients reconnect from scratch after a keepalive timeout.
//! This experiment measures what the replication subsystem buys instead:
//! each region streams snapshots + incremental ops to a warm standby
//! drawn from the resource pool, and on liveness expiry the coordinator
//! promotes the standby in place. The dead server's clients are
//! re-pointed with `SwitchServer` and *resume* — no reconnect, no state
//! transfer — with their delta streams resyncing through the ordinary
//! keyframe-on-handover machinery.
//!
//! Reported per mode (replication on/off, same topology, same workload,
//! same crash):
//!
//! * **recovery** — crash → first post-failover `UpdateBatch` delivered
//!   to one of the victim's clients (the full dark window, dominated by
//!   the heartbeat timeout), and promotion → first delivery (the part
//!   replication is responsible for; the acceptance bound is one
//!   `batch_interval` + one `replica_interval`);
//! * **continuity** — resumes vs. full disconnect/reconnects;
//! * **overhead** — replication bytes/sec on the server link, and its
//!   share of all inter-server traffic.

use crate::harness::{Cluster, ClusterConfig, ClusterReport};
use matrix_games::{GameSpec, Placement, PopulationEvent, WorkloadSchedule};
use matrix_geometry::ServerId;
use matrix_metrics::Table;
use matrix_sim::{SimDuration, SimTime};

/// Scenario scale: the full run and a CI smoke variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Clients per hotspot (two hotspots, one per partition).
    pub crowd: u32,
    /// Run horizon in seconds.
    pub horizon_secs: u64,
    /// Crash time in seconds.
    pub crash_at_secs: u64,
}

impl Scale {
    /// The full experiment.
    pub fn full() -> Scale {
        Scale {
            crowd: 250,
            horizon_secs: 40,
            crash_at_secs: 15,
        }
    }

    /// A fast variant for CI (`matrix-experiments failover --smoke`).
    pub fn smoke() -> Scale {
        Scale {
            crowd: 60,
            horizon_secs: 20,
            crash_at_secs: 8,
        }
    }
}

/// Result of one failover run.
#[derive(Debug, Clone)]
pub struct FailoverRow {
    /// Whether warm-standby replication was armed.
    pub replication: bool,
    /// Seconds simulated (for bytes/sec).
    pub horizon_secs: u64,
    /// Full cluster report.
    pub report: ClusterReport,
}

/// Two static partitions (so the comparison is topology-for-topology),
/// each hosting one hotspot crowd placed away from the boundary; server
/// 1 is killed mid-run. Replication mode arms a warm standby per
/// region; baseline mode recovers by absorb + client reconnect.
pub fn config(spec: GameSpec, replication: bool, seed: u64, scale: Scale) -> ClusterConfig {
    let mut cfg = ClusterConfig::static_partition(spec, 2);
    cfg.seed = seed;
    cfg.queue_capacity = None;
    cfg.game.emit_updates = true;
    cfg.matrix.standby_replication = replication;
    if replication {
        cfg.pool_size = 4; // standbys come from spare capacity
    }
    // Detection beats the keepalive: clients only give up and reconnect
    // when no failover resume reaches them first.
    cfg.coordinator.heartbeat_timeout = SimDuration::from_secs(2);
    cfg.net.crash_detect = SimDuration::from_secs(8);
    cfg.crashes = vec![(SimTime::from_secs(scale.crash_at_secs), ServerId(1))];
    cfg
}

/// Runs one mode of the scenario.
pub fn run_one(spec: &GameSpec, replication: bool, seed: u64, scale: Scale) -> FailoverRow {
    let mut spec = spec.clone();
    spec.update_rate_hz = spec.update_rate_hz.min(2.0);
    let schedule = WorkloadSchedule::new(SimTime::from_secs(scale.horizon_secs))
        .at(
            SimTime::ZERO,
            PopulationEvent::Join {
                n: scale.crowd,
                placement: Placement::Hotspot {
                    center: spec.hotspot_a(),
                    spread: spec.radius * 0.3,
                },
            },
        )
        .at(
            SimTime::ZERO,
            PopulationEvent::Join {
                n: scale.crowd,
                placement: Placement::Hotspot {
                    center: spec.hotspot_b(),
                    spread: spec.radius * 0.3,
                },
            },
        );
    let report = Cluster::new(config(spec, replication, seed, scale), schedule).run();
    FailoverRow {
        replication,
        horizon_secs: scale.horizon_secs,
        report,
    }
}

/// Runs both modes.
pub fn run(seed: u64, scale: Scale) -> Vec<FailoverRow> {
    let spec = GameSpec::bzflag();
    vec![
        run_one(&spec, false, seed, scale),
        run_one(&spec, true, seed, scale),
    ]
}

/// Renders the comparison table.
pub fn table(rows: &[FailoverRow]) -> Table {
    let mut table = Table::new(
        "E13 — failover: kill one of two region servers mid-run",
        &[
            "mode",
            "failovers",
            "resumes",
            "disconnects",
            "recovery ms",
            "post-promo ms",
            "replica B/s",
            "replica share",
            "divergences",
        ],
    );
    for row in rows {
        let r = &row.report;
        let recovery = r
            .recoveries
            .first()
            .map(|rec| format!("{:.0}", rec.dark.as_micros() as f64 / 1000.0))
            .unwrap_or_else(|| "—".into());
        let post = r
            .recoveries
            .first()
            .and_then(|rec| rec.post_promotion)
            .map(|d| format!("{:.1}", d.as_micros() as f64 / 1000.0))
            .unwrap_or_else(|| "—".into());
        let replica_rate = r.replica_bytes as f64 / row.horizon_secs as f64;
        let share = if r.inter_server_bytes > 0 {
            format!(
                "{:.1}%",
                100.0 * r.replica_bytes as f64 / r.inter_server_bytes as f64
            )
        } else {
            "—".into()
        };
        table.push_row(&[
            if row.replication {
                "matrix+replication".into()
            } else {
                "matrix (absorb)".into()
            },
            r.coordinator.failovers.to_string(),
            r.resumes.to_string(),
            r.disconnects.to_string(),
            recovery,
            post,
            format!("{replica_rate:.0}"),
            share,
            r.coordinator.divergences.to_string(),
        ]);
    }
    table
}

/// One-line verdict against the acceptance bounds, printed under the
/// table (and asserted by the smoke runner in CI).
pub fn verdict(
    rows: &[FailoverRow],
    game: &matrix_core::GameServerConfig,
) -> Result<String, String> {
    let with = rows
        .iter()
        .find(|r| r.replication)
        .ok_or("no replication row")?;
    let r = &with.report;
    if r.coordinator.failovers == 0 {
        return Err("no failover happened".into());
    }
    if r.disconnects != 0 {
        return Err(format!("{} clients disconnected", r.disconnects));
    }
    let post = r
        .recoveries
        .first()
        .and_then(|rec| rec.post_promotion)
        .ok_or("no post-promotion recovery measured")?;
    let bound = game.batch_interval + game.replica_interval;
    // One client-link delivery rides on top of the server-side bound.
    let bound = bound + SimDuration::from_millis(100);
    if post > bound {
        return Err(format!("post-promotion recovery {post} exceeds {bound}"));
    }
    Ok(format!(
        "failover OK: {} resumes, 0 disconnects, first delivery {post} after promotion \
         (bound {bound}), replication {} B/s",
        r.resumes,
        r.replica_bytes / with.horizon_secs
    ))
}

/// CSV artefact.
pub fn to_csv(rows: &[FailoverRow]) -> String {
    let mut out = String::from(
        "mode,failovers,resumes,disconnects,recovery_ms,post_promotion_ms,replica_bytes,\
         replica_bytes_per_sec,inter_server_bytes,divergences\n",
    );
    for row in rows {
        let r = &row.report;
        let recovery = r
            .recoveries
            .first()
            .map(|rec| (rec.dark.as_micros() as f64 / 1000.0).to_string())
            .unwrap_or_default();
        let post = r
            .recoveries
            .first()
            .and_then(|rec| rec.post_promotion)
            .map(|d| (d.as_micros() as f64 / 1000.0).to_string())
            .unwrap_or_default();
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{:.0},{},{}\n",
            if row.replication {
                "replication"
            } else {
                "absorb"
            },
            r.coordinator.failovers,
            r.resumes,
            r.disconnects,
            recovery,
            post,
            r.replica_bytes,
            r.replica_bytes as f64 / row.horizon_secs as f64,
            r.inter_server_bytes,
            r.coordinator.divergences,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_meets_the_acceptance_bounds() {
        let rows = run(42, Scale::smoke());
        let game = config(GameSpec::bzflag(), true, 42, Scale::smoke()).game;
        let verdict = verdict(&rows, &game).expect("failover acceptance");
        assert!(verdict.contains("failover OK"));
        // The baseline pays with real disconnects; replication does not.
        let baseline = rows.iter().find(|r| !r.replication).unwrap();
        assert!(baseline.report.disconnects > 0);
        assert_eq!(baseline.report.resumes, 0);
        assert_eq!(baseline.report.replica_bytes, 0);
    }
}
