//! E12 — dense-crowd interest management on a single server.
//!
//! The paper's split machinery caps how many clients one server hosts,
//! but the per-server fan-out cost still decides *where* that cap sits:
//! with a linear receiver scan, one event near a crowd of `n` costs
//! `O(n)` and a tick of the crowd costs `O(n²)`. This experiment pins the
//! whole crowd onto one non-adaptive server — thousands of clients, all
//! attracted to one hotspot — and reports what the interest-managed
//! fan-out path (spatial-hash grid + update batching) does under the
//! worst case the middleware can see: receivers per event, batching
//! coalescing rates, and the client-bound bandwidth the batcher accounts
//! for. The companion Criterion bench (`benches/fanout.rs`) measures the
//! grid-vs-scan speedup in isolation; this run shows the subsystem
//! working end to end under the full protocol.

use crate::harness::{Cluster, ClusterConfig, ClusterReport};
use matrix_games::{GameSpec, Placement, PopulationEvent, WorkloadSchedule};
use matrix_metrics::Table;
use matrix_sim::SimTime;

/// Result of one dense-crowd run.
#[derive(Debug, Clone)]
pub struct DenseCrowdRow {
    /// Crowd size.
    pub clients: u32,
    /// Full cluster report.
    pub report: ClusterReport,
}

/// Builds the single-server dense-crowd configuration.
///
/// Adaptation is disabled (one static server) so the crowd cannot be
/// split away — the interest layer has to absorb the full fan-out.
pub fn config(spec: GameSpec, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig::static_partition(spec, 1);
    cfg.seed = seed;
    // The point of the experiment is delivered batches, not queue drops:
    // give the lone server effectively unbounded capacity and emit real
    // per-client updates so batching is exercised end to end.
    cfg.queue_capacity = None;
    cfg.game.emit_updates = true;
    cfg
}

/// Runs the dense-crowd scenario for one crowd size.
pub fn run_one(spec: &GameSpec, clients: u32, seed: u64) -> DenseCrowdRow {
    let mut spec = spec.clone();
    // Keep event volume tractable while still dense: moderate update rate.
    spec.update_rate_hz = spec.update_rate_hz.min(2.0);
    let horizon = SimTime::from_secs(20);
    let schedule = WorkloadSchedule::new(horizon).at(
        SimTime::from_secs(0),
        PopulationEvent::Join {
            n: clients,
            placement: Placement::Hotspot {
                center: spec.hotspot_a(),
                spread: spec.radius * 0.5,
            },
        },
    );
    let report = Cluster::new(config(spec, seed), schedule).run();
    DenseCrowdRow { clients, report }
}

/// Runs the scenario across crowd sizes (2k+ exercises the acceptance
/// target).
pub fn run(seed: u64) -> Vec<DenseCrowdRow> {
    let spec = GameSpec::bzflag();
    [500, 1000, 2000]
        .into_iter()
        .map(|n| run_one(&spec, n, seed))
        .collect()
}

/// Renders the results table.
pub fn table(rows: &[DenseCrowdRow]) -> Table {
    let mut t = Table::new(
        "E12 — dense crowd on one server (interest-managed fan-out, batched delivery)",
        &[
            "clients",
            "updates",
            "fanned",
            "batches",
            "batched",
            "upd/batch",
            "batch MB",
            "events",
        ],
    );
    for row in rows {
        let r = &row.report;
        let per_batch = if r.update_batches_delivered == 0 {
            0.0
        } else {
            r.batched_updates_delivered as f64 / r.update_batches_delivered as f64
        };
        t.push_row(&[
            format!("{}", row.clients),
            format!("{}", r.updates_processed),
            format!("{}", r.updates_fanned),
            format!("{}", r.update_batches_delivered),
            format!("{}", r.batched_updates_delivered),
            format!("{per_batch:.1}"),
            format!("{:.1}", r.batch_bytes as f64 / 1e6),
            format!("{}", r.events),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_crowd_delivers_batched_updates_end_to_end() {
        let spec = GameSpec::bzflag();
        let row = run_one(&spec, 300, 7);
        let r = &row.report;
        assert!(r.update_batches_delivered > 0, "batches must reach clients");
        assert!(r.batched_updates_delivered >= r.update_batches_delivered);
        assert!(r.batch_bytes > 0, "bandwidth accounting must tick");
        assert_eq!(r.splits, 0, "single static server must not split");
    }

    #[test]
    fn bigger_crowds_fan_out_more() {
        let spec = GameSpec::bzflag();
        let small = run_one(&spec, 100, 11).report.updates_fanned;
        let large = run_one(&spec, 400, 11).report.updates_fanned;
        assert!(
            large > 4 * small,
            "fan-out grows superlinearly with crowd density: {small} -> {large}"
        );
    }
}
