//! E12 — dense-crowd interest management on a single server.
//!
//! The paper's split machinery caps how many clients one server hosts,
//! but the per-server fan-out cost still decides *where* that cap sits:
//! with a linear receiver scan, one event near a crowd of `n` costs
//! `O(n)` and a tick of the crowd costs `O(n²)`. This experiment pins the
//! whole crowd onto one non-adaptive server — thousands of clients, all
//! attracted to one hotspot — and reports what the adaptive dissemination
//! pipeline (spatial-hash grid → update batching → priority/rate
//! limiting → per-client delta compression) does under the worst case
//! the middleware can see.
//!
//! Alongside the fan-out/batching counters, the report covers
//! **bandwidth** — client-bound bytes, the share of items shipped as
//! deltas, and the bytes delta encoding saved versus the absolute-origin
//! wire format — and **staleness** — the fraction of relevant updates
//! the per-client rate limiter merged/dropped to keep each flush inside
//! `max_updates_per_flush` / `client_budget_bytes` (those events are
//! *deferred*, re-described by a later flush if still relevant, rather
//! than queued without bound). The companion Criterion benches
//! (`benches/fanout.rs`, `benches/delta.rs`) measure the grid speedup
//! and the encoding savings in isolation; this run shows the subsystem
//! working end to end under the full protocol.

use crate::harness::{Cluster, ClusterConfig, ClusterReport};
use matrix_core::WireCodec;
use matrix_games::{GameSpec, Placement, PopulationEvent, WorkloadSchedule};
use matrix_metrics::Table;
use matrix_sim::SimTime;

/// Result of one dense-crowd run.
#[derive(Debug, Clone)]
pub struct DenseCrowdRow {
    /// Crowd size.
    pub clients: u32,
    /// Per-client downlink budget in bytes per flush (0 = unlimited).
    pub budget_bytes: u32,
    /// Full cluster report.
    pub report: ClusterReport,
}

/// Run scale: full regenerates the paper-grade table, smoke is the CI
/// variant (`matrix-experiments dense --smoke`).
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// The largest crowd; the table also runs half and a quarter of it.
    pub max_crowd: u32,
    /// Run horizon in seconds.
    pub horizon_secs: u64,
}

impl Scale {
    /// The full experiment.
    pub fn full() -> Scale {
        Scale {
            max_crowd: 2000,
            horizon_secs: 20,
        }
    }

    /// A fast variant for CI.
    pub fn smoke() -> Scale {
        Scale {
            max_crowd: 300,
            horizon_secs: 10,
        }
    }
}

/// Builds the single-server dense-crowd configuration.
///
/// Adaptation is disabled (one static server) so the crowd cannot be
/// split away — the interest layer has to absorb the full fan-out.
pub fn config(spec: GameSpec, seed: u64, codec: WireCodec) -> ClusterConfig {
    let mut cfg = ClusterConfig::static_partition(spec, 1);
    cfg.seed = seed;
    // The point of the experiment is delivered batches, not queue drops:
    // give the lone server effectively unbounded capacity and emit real
    // per-client updates so the dissemination pipeline is exercised end
    // to end.
    cfg.queue_capacity = None;
    cfg.game.emit_updates = true;
    // The bytes columns are measured on whichever wire codec is active
    // (v2 binary frames by default; `--codec json` re-measures on v1).
    cfg.game.codec = codec;
    cfg
}

/// Runs the dense-crowd scenario for one crowd size and per-client
/// downlink budget (`0` = keep the game preset's own budget).
pub fn run_one(
    spec: &GameSpec,
    clients: u32,
    budget_bytes: u32,
    horizon_secs: u64,
    seed: u64,
    codec: WireCodec,
) -> DenseCrowdRow {
    let mut spec = spec.clone();
    // Keep event volume tractable while still dense: moderate update rate.
    spec.update_rate_hz = spec.update_rate_hz.min(2.0);
    if budget_bytes != 0 {
        spec.client_budget_bytes = budget_bytes;
    }
    let horizon = SimTime::from_secs(horizon_secs);
    let schedule = WorkloadSchedule::new(horizon).at(
        SimTime::from_secs(0),
        PopulationEvent::Join {
            n: clients,
            placement: Placement::Hotspot {
                center: spec.hotspot_a(),
                spread: spec.radius * 0.5,
            },
        },
    );
    let report = Cluster::new(config(spec, seed, codec), schedule).run();
    DenseCrowdRow {
        clients,
        budget_bytes,
        report,
    }
}

/// Runs the scenario across crowd sizes (2k+ exercises the acceptance
/// target at full scale), plus a tight-downlink variant of the largest
/// crowd showing the rate limiter degrading gracefully. `flush_workers`
/// shards the lone server's flush; by the shard-count invariance
/// property the table must come out identical for any value — which is
/// exactly what the CI smoke run at 4 workers pins.
pub fn run(seed: u64, codec: WireCodec, scale: Scale, flush_workers: u32) -> Vec<DenseCrowdRow> {
    let spec = GameSpec::bzflag().with_flush_workers(flush_workers);
    let max = scale.max_crowd;
    let mut rows: Vec<DenseCrowdRow> = [max / 4, max / 2, max]
        .into_iter()
        .map(|n| run_one(&spec, n, 0, scale.horizon_secs, seed, codec))
        .collect();
    // The same largest crowd on a 2 KiB-per-flush client downlink.
    rows.push(run_one(&spec, max, 2048, scale.horizon_secs, seed, codec));
    rows
}

/// E12's acceptance verdict: batched updates actually reach clients,
/// the steady stream is delta-dominated with accounted savings, and the
/// static single server never split. Checked over every row, so the
/// verdict holds at any crowd size and under the budgeted downlink.
pub fn verdict(rows: &[DenseCrowdRow]) -> Result<String, String> {
    if rows.is_empty() {
        return Err("no rows".into());
    }
    for row in rows {
        let r = &row.report;
        let label = format!("{} clients, budget {}B", row.clients, row.budget_bytes);
        if r.update_batches_delivered == 0 {
            return Err(format!("{label}: no update batches delivered"));
        }
        if r.delta_items <= r.keyframe_items {
            return Err(format!(
                "{label}: stream not delta-dominated ({} deltas vs {} keyframes)",
                r.delta_items, r.keyframe_items
            ));
        }
        if r.delta_bytes_saved == 0 {
            return Err(format!("{label}: no delta savings accounted"));
        }
        if r.splits != 0 {
            return Err(format!("{label}: static server split {} times", r.splits));
        }
    }
    let largest = &rows[rows.len() - 2].report;
    Ok(format!(
        "E12 verdict: PASS — {} batches / {} updates delivered at the largest crowd, \
         delta-dominated on every row, zero splits",
        largest.update_batches_delivered, largest.batched_updates_delivered
    ))
}

/// Renders the results table.
pub fn table(rows: &[DenseCrowdRow]) -> Table {
    let mut t = Table::new(
        "E12 — dense crowd on one server (grid → batch → rate-limit → delta pipeline)",
        &[
            "clients",
            "budget",
            "fanned",
            "batches",
            "batched",
            "upd/batch",
            "batch MB",
            "delta%",
            "saved KB",
            "stale%",
        ],
    );
    for row in rows {
        let r = &row.report;
        let per_batch = if r.update_batches_delivered == 0 {
            0.0
        } else {
            r.batched_updates_delivered as f64 / r.update_batches_delivered as f64
        };
        let items = r.delta_items + r.keyframe_items;
        let delta_share = if items == 0 {
            0.0
        } else {
            100.0 * r.delta_items as f64 / items as f64
        };
        // Staleness proxy: the fraction of relevant updates deferred by
        // the per-client budgets instead of delivered in their flush.
        let relevant = items + r.updates_rate_limited;
        let stale = if relevant == 0 {
            0.0
        } else {
            100.0 * r.updates_rate_limited as f64 / relevant as f64
        };
        t.push_row(&[
            format!("{}", row.clients),
            if row.budget_bytes == 0 {
                "-".into()
            } else {
                format!("{}B", row.budget_bytes)
            },
            format!("{}", r.updates_fanned),
            format!("{}", r.update_batches_delivered),
            format!("{}", r.batched_updates_delivered),
            format!("{per_batch:.1}"),
            format!("{:.1}", r.batch_bytes as f64 / 1e6),
            format!("{delta_share:.0}"),
            format!("{:.0}", r.delta_bytes_saved as f64 / 1e3),
            format!("{stale:.0}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_crowd_delivers_batched_updates_end_to_end() {
        let spec = GameSpec::bzflag();
        let row = run_one(&spec, 300, 0, 20, 7, WireCodec::BinaryV2);
        let r = &row.report;
        assert!(r.update_batches_delivered > 0, "batches must reach clients");
        assert!(r.batched_updates_delivered >= r.update_batches_delivered);
        assert!(r.batch_bytes > 0, "bandwidth accounting must tick");
        assert_eq!(r.splits, 0, "single static server must not split");
        assert!(
            r.delta_items > r.keyframe_items,
            "a steady crowd stream must be dominated by deltas: {} deltas vs {} keyframes",
            r.delta_items,
            r.keyframe_items
        );
        assert!(r.delta_bytes_saved > 0, "delta savings must be accounted");
    }

    #[test]
    fn bigger_crowds_fan_out_more() {
        let spec = GameSpec::bzflag();
        let small = run_one(&spec, 100, 0, 20, 11, WireCodec::BinaryV2)
            .report
            .updates_fanned;
        let large = run_one(&spec, 400, 0, 20, 11, WireCodec::BinaryV2)
            .report
            .updates_fanned;
        assert!(
            large > 4 * small,
            "fan-out grows superlinearly with crowd density: {small} -> {large}"
        );
    }

    #[test]
    fn tight_downlink_budget_rate_limits_instead_of_queueing() {
        let spec = GameSpec::bzflag();
        let free = run_one(&spec, 300, 0, 20, 13, WireCodec::BinaryV2).report;
        let tight = run_one(&spec, 300, 512, 20, 13, WireCodec::BinaryV2).report;
        assert!(
            tight.updates_rate_limited > free.updates_rate_limited,
            "a 512-byte downlink must defer updates: {} vs {}",
            tight.updates_rate_limited,
            free.updates_rate_limited
        );
        assert!(
            tight.batch_bytes < free.batch_bytes,
            "budgeted clients must receive fewer bytes: {} vs {}",
            tight.batch_bytes,
            free.batch_bytes
        );
        assert!(
            tight.update_batches_delivered > 0,
            "degradation must not starve clients"
        );
    }
}
