//! E15 — predictive dissemination: dead-reckoning suppression on the
//! high-velocity racer workload.
//!
//! E14 graded the AOI into rings and cut the periphery's update *rate*;
//! every relevant movement event inside a ring was still shipped at
//! that ring's rate. Dead reckoning is the next multiplier: model each
//! entity's velocity, let receivers *extrapolate* between updates, and
//! transmit only when the receiver's prediction would drift past the
//! ring's error budget. Rate grading becomes **accuracy** grading — the
//! near ring still gets every event, while an outer-ring entity on a
//! straight run may ship a handful of bases per leg and be rendered
//! from extrapolation the rest of the time.
//!
//! The workload is the synthetic **racer** spec: fast vehicles
//! (120 u/s) on long straight waypoint runs at 10 Hz in a compact
//! world — the motion-model best case racing and vehicle games actually
//! present. Three configurations replay the same seeded crowd on one
//! static server with per-event flushes (`batch_interval = 0`, the
//! regime in which the suppression bound is exact — see below):
//!
//! * **rings** — the PR 4 tiered pipeline: recommended ring tiers with
//!   sampled outer rings (1 / 1-in-2 / 1-in-4), prediction off. This is
//!   the baseline the verdict measures against.
//! * **predict** — the same ring boundaries with sampling *off*
//!   (every-event rates) and dead reckoning on: the per-ring
//!   `error_budgets` decide what ships, so fidelity is graded by
//!   *error*, not by decimation.
//! * **predict+strip** — prediction plus per-ring payload degradation:
//!   the outermost ring ships position-only items
//!   (`position_only_ring`), composing the two outer-ring levers.
//!
//! Alongside the node's own counters, the runner mirrors **every
//! receiver**: an [`Extrapolator`] per client is fed exactly the
//! batches the server emits, and at every movement event the harness
//! measures the distance between the receiver's extrapolation and the
//! entity's true (wire) position, bucketed by the receiver's vision
//! ring. Because sender-side suppression simulates the receiver with
//! the same arithmetic (`matrix_predict::extrapolate`) over the same
//! bases, the measured receiver error at every suppressed event equals
//! the sender's simulated error **bit-for-bit** — with per-event
//! flushes the per-ring error budget is therefore a hard bound, and the
//! experiment verifies it end-to-end rather than assuming it. (With a
//! coalescing `batch_interval`, admitted items wait up to one interval
//! in the batcher and the budget holds *at admission time* — the same
//! staleness window batching always had.)
//!
//! The enforced verdict (CI runs `matrix-experiments predict --smoke`):
//! the predict run must cut `UpdateBatch` bytes-on-wire by **≥ 30%**
//! versus the rings baseline, with the **maximum** receiver position
//! error within every ring's configured budget (max bounds p99, which
//! the table reports) and near-ring delivery unchanged — the near
//! ring's budget is pinned to 0, so prediction never touches it.

use matrix_core::{
    quantize, reconstruct_updates, ClientId, ClientToGame, Extrapolator, GameAction,
    GameServerConfig, GameServerNode, GameStats, GameToClient, RingSet, ServerId, WireCodec,
    MAX_RINGS,
};
use matrix_games::{ClientPop, GameSpec, Placement, PopulationEvent};
use matrix_geometry::Point;
use matrix_metrics::{Histogram, Table};
use matrix_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Scenario scale: the full run and a CI smoke variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Racer count on the lone server.
    pub racers: u32,
    /// Run horizon in seconds.
    pub horizon_secs: u64,
}

impl Scale {
    /// The full experiment.
    pub fn full() -> Scale {
        Scale {
            racers: 300,
            horizon_secs: 20,
        }
    }

    /// A fast variant for CI (`matrix-experiments predict --smoke`).
    pub fn smoke() -> Scale {
        Scale {
            racers: 120,
            horizon_secs: 8,
        }
    }
}

/// Which dissemination configuration a row ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// The PR 4 tiered pipeline: sampled outer rings, prediction off.
    Rings,
    /// Every-event rings plus dead-reckoning suppression.
    Predict,
    /// Prediction plus position-only items in the outermost ring.
    PredictStrip,
}

impl Mode {
    fn label(&self) -> &'static str {
        match self {
            Mode::Rings => "rings 1/2/4",
            Mode::Predict => "predict",
            Mode::PredictStrip => "predict+strip",
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct PredictRow {
    /// The configuration.
    pub mode: Mode,
    /// The node's dissemination counters after the replay.
    pub stats: GameStats,
    /// Receiver-measured position error per vision ring, in
    /// milli-world-units (×1000, so the log buckets resolve sub-unit
    /// errors): extrapolation vs true wire position at every movement
    /// event, mirrored through real `Extrapolator`s.
    pub ring_error_mu: Vec<Histogram>,
    /// Wall-clock cost of the whole replay.
    pub wall_ms: u128,
}

impl PredictRow {
    /// p99 receiver error in a ring, world units.
    pub fn p99(&self, ring: usize) -> Option<f64> {
        self.ring_error_mu[ring].p99().map(|v| v / 1e3)
    }

    /// Maximum receiver error in a ring, world units (exact).
    pub fn max_err(&self, ring: usize) -> Option<f64> {
        self.ring_error_mu[ring].max().map(|v| v / 1e3)
    }
}

/// Builds the game-server configuration for one mode: the racer's
/// recommended ring tiers, per-event flushes, caps off (E14's
/// arrangement — the AOI machinery, not the budget limiter, decides
/// what ships).
pub fn server_config(spec: &GameSpec, mode: Mode, codec: WireCodec) -> GameServerConfig {
    let (radii, rates) = spec.ring_tiers();
    let mut game = GameServerConfig {
        metric: spec.metric,
        vision_radius: spec.vision_radius,
        emit_updates: true,
        batch_interval: SimDuration::from_millis(0),
        max_updates_per_flush: 0,
        client_budget_bytes: 0,
        predict: mode != Mode::Rings,
        motion_window: spec.motion_window,
        velocity_quantum: spec.velocity_quantum(),
        position_only_ring: match mode {
            Mode::PredictStrip => (radii.len() as u8).saturating_sub(1),
            _ => 0,
        },
        // The bytes columns are measured on whichever wire codec is
        // active (v2 binary by default; `--codec json` re-measures v1).
        codec,
        ..GameServerConfig::default()
    };
    match mode {
        // The PR 4 baseline: outer tiers decimated by rate.
        Mode::Rings => game.set_rings(&radii, &rates),
        // Prediction grades accuracy instead: every-event rates, the
        // error budgets decide what ships.
        Mode::Predict | Mode::PredictStrip => {
            game.set_rings(&radii, &vec![1; radii.len()]);
            game.set_error_budgets(&spec.recommended_error_budgets());
        }
    }
    game
}

/// Runs one mode of the scenario, mirroring every receiver's
/// extrapolation state to measure the real position error.
pub fn run_one(
    spec: &GameSpec,
    mode: Mode,
    seed: u64,
    scale: Scale,
    codec: WireCodec,
) -> PredictRow {
    let started = std::time::Instant::now();
    let gcfg = server_config(spec, mode, codec);
    let rings = RingSet::from_tiers(&gcfg.ring_radii, &gcfg.ring_sample_rates);
    let mut node = GameServerNode::new(ServerId(1), gcfg).with_fanout();
    node.register(spec.world, spec.radius);

    // The seeded racer crowd: uniform placement, waypoint movement at
    // racer speed. Identical across modes for the same seed.
    let mut pop = ClientPop::new(spec.clone(), seed);
    let ids = pop.apply(
        PopulationEvent::Join {
            n: scale.racers,
            placement: Placement::Uniform,
        },
        ServerId(1),
    );
    let mut positions: BTreeMap<ClientId, Point> = BTreeMap::new();
    let mut mirrors: BTreeMap<ClientId, (Extrapolator, Option<Point>)> = BTreeMap::new();
    for &id in &ids {
        let pos = pop.get(id).expect("just joined").walker.pos;
        positions.insert(id, pos);
        mirrors.insert(id, (Extrapolator::new(), None));
        node.on_client(
            SimTime::ZERO,
            id,
            ClientToGame::Join {
                pos,
                state_bytes: 0,
            },
        );
    }

    let mut ring_error_mu: Vec<Histogram> = (0..MAX_RINGS).map(|_| Histogram::new()).collect();
    let dt = spec.update_interval_secs();
    let steps = (scale.horizon_secs as f64 / dt).round() as u64;
    let mut now = SimTime::ZERO;
    for _ in 0..steps {
        now += SimDuration::from_secs_f64(dt);
        for &id in &ids {
            let Some((pos, _)) = pop.step(id, dt) else {
                continue;
            };
            positions.insert(id, pos);
            let wire = quantize(pos, gcfg.origin_quantum);
            let actions = node.on_client(now, id, ClientToGame::Move { pos });
            // Mirror emitted batches into the receivers' extrapolators
            // exactly as a live client would (delta reconstruction,
            // then velocity-tagged items rebase the prediction).
            for a in actions {
                let GameAction::ToClient(cid, GameToClient::UpdateBatch { updates }) = a else {
                    continue;
                };
                let (extrap, base) = mirrors.get_mut(&cid).expect("known receiver");
                if let Some(items) = reconstruct_updates(base, &updates) {
                    for u in items {
                        // Every item rebases, velocity-tagged or not —
                        // the same rule `RtClient` applies (a zero
                        // velocity pins the entity at its reported
                        // position).
                        extrap.update(u.entity, u.origin, (u.vx, u.vy), now.as_secs_f64());
                    }
                }
            }
            // Measure: where does every in-AOI receiver believe this
            // entity is right now, versus where it actually is?
            for (&rid, (extrap, _)) in &mirrors {
                if rid == id {
                    continue;
                }
                let Some(predicted) = extrap.predict(id.0, now.as_secs_f64()) else {
                    continue; // never seen this entity
                };
                let d = positions[&rid].distance_by(pos, spec.metric);
                if let Some(ring) = rings.ring_of(d) {
                    ring_error_mu[ring as usize].record(predicted.distance(wire) * 1e3);
                }
            }
        }
    }

    PredictRow {
        mode,
        stats: *node.stats(),
        ring_error_mu,
        wall_ms: started.elapsed().as_millis(),
    }
}

/// Runs all three modes on the racer crowd.
pub fn run(seed: u64, scale: Scale, codec: WireCodec) -> Vec<PredictRow> {
    let spec = GameSpec::racer();
    vec![
        run_one(&spec, Mode::Rings, seed, scale, codec),
        run_one(&spec, Mode::Predict, seed, scale, codec),
        run_one(&spec, Mode::PredictStrip, seed, scale, codec),
    ]
}

/// Renders the comparison table.
pub fn table(rows: &[PredictRow]) -> Table {
    let baseline_bytes = rows
        .iter()
        .find(|r| r.mode == Mode::Rings)
        .map(|r| r.stats.batch_bytes)
        .unwrap_or(0);
    let mut t = Table::new(
        "E15 — predictive dissemination on the racer crowd (dead reckoning vs sampled rings)",
        &[
            "mode",
            "delivered",
            "suppr",
            "near",
            "batch MB",
            "Δbytes",
            "p99 err",
            "max err",
            "stripped",
            "wall ms",
        ],
    );
    for row in rows {
        let s = &row.stats;
        let delta = if baseline_bytes == 0 || row.mode == Mode::Rings {
            "—".into()
        } else {
            format!(
                "{:+.1}%",
                100.0 * (s.batch_bytes as f64 - baseline_bytes as f64) / baseline_bytes as f64
            )
        };
        // The outermost configured ring carries the loosest budget and
        // therefore the largest errors; report its distribution.
        let outer = row
            .ring_error_mu
            .iter()
            .rposition(|h| !h.is_empty())
            .unwrap_or(0);
        t.push_row(&[
            row.mode.label().into(),
            format!("{}", s.updates_fanned),
            format!("{}", s.updates_suppressed),
            format!("{}", s.ring_items[0]),
            format!("{:.1}", s.batch_bytes as f64 / 1e6),
            delta,
            row.p99(outer).map_or("—".into(), |v| format!("{v:.2}u")),
            row.max_err(outer)
                .map_or("—".into(), |v| format!("{v:.2}u")),
            format!("{}", s.payloads_stripped),
            format!("{}", row.wall_ms),
        ]);
    }
    t
}

/// One-line verdict against the acceptance bounds, printed under the
/// table and asserted by the smoke runner in CI: ≥ 30% bytes-on-wire
/// reduction versus the rings baseline, receiver error within every
/// ring's budget, near-ring delivery unchanged.
pub fn verdict(rows: &[PredictRow], spec: &GameSpec) -> Result<String, String> {
    let rings = rows
        .iter()
        .find(|r| r.mode == Mode::Rings)
        .ok_or("no rings row")?;
    let predict = rows
        .iter()
        .find(|r| r.mode == Mode::Predict)
        .ok_or("no predict row")?;
    if rings.stats.batch_bytes == 0 {
        return Err("rings row shipped no bytes".into());
    }
    if rings.stats.updates_suppressed != 0 {
        return Err("rings row suppressed updates — prediction was not off".into());
    }
    if predict.stats.updates_suppressed == 0 {
        return Err("predict row suppressed nothing — dead reckoning was not in effect".into());
    }
    let reduction = 1.0 - predict.stats.batch_bytes as f64 / rings.stats.batch_bytes as f64;
    if reduction < 0.30 {
        return Err(format!(
            "bytes-on-wire reduction {:.1}% < 30% ({} -> {} bytes)",
            reduction * 100.0,
            rings.stats.batch_bytes,
            predict.stats.batch_bytes
        ));
    }
    // The error bound: in every ring with a budget, the *maximum*
    // receiver-measured error (exact, not bucket-approximated) must sit
    // within the configured budget — max bounds p99.
    let budgets = spec.recommended_error_budgets();
    for row in rows.iter().filter(|r| r.mode != Mode::Rings) {
        for (ring, budget) in budgets.iter().enumerate() {
            let Some(max_err) = row.max_err(ring) else {
                continue;
            };
            if *budget > 0.0 && max_err > budget + 1e-9 {
                return Err(format!(
                    "{}: ring {ring} receiver error {max_err:.3} exceeds budget {budget:.3}",
                    row.mode.label()
                ));
            }
        }
    }
    // Near-ring delivery unchanged: the near budget is pinned to 0 and
    // both modes run every-event near rings over the same seeded trace.
    if predict.stats.ring_items[0] < rings.stats.ring_items[0] {
        return Err(format!(
            "near-ring delivery dropped: {} < {}",
            predict.stats.ring_items[0], rings.stats.ring_items[0]
        ));
    }
    let mean = if predict.stats.updates_suppressed == 0 {
        0.0
    } else {
        predict.stats.pred_error_sum / predict.stats.updates_suppressed as f64
    };
    Ok(format!(
        "predict OK: -{:.1}% bytes-on-wire vs sampled rings at bounded receiver error \
         ({} suppressed, mean absorbed error {:.2}u, max {:.2}u ≤ outer budget {:.2}u, \
         {} near items both ways)",
        reduction * 100.0,
        predict.stats.updates_suppressed,
        mean,
        predict.stats.pred_error_max,
        budgets.last().copied().unwrap_or(0.0),
        predict.stats.ring_items[0],
    ))
}

/// CSV artefact.
pub fn to_csv(rows: &[PredictRow]) -> String {
    let mut out = String::from(
        "mode,updates_fanned,updates_suppressed,ring0_items,batch_bytes,\
         payloads_stripped,pred_error_mean,pred_error_max,outer_p99,outer_max,wall_ms\n",
    );
    for row in rows {
        let s = &row.stats;
        let mean = if s.updates_suppressed == 0 {
            0.0
        } else {
            s.pred_error_sum / s.updates_suppressed as f64
        };
        let outer = row
            .ring_error_mu
            .iter()
            .rposition(|h| !h.is_empty())
            .unwrap_or(0);
        out.push_str(&format!(
            "{},{},{},{},{},{},{:.4},{:.4},{:.4},{:.4},{}\n",
            row.mode.label(),
            s.updates_fanned,
            s.updates_suppressed,
            s.ring_items[0],
            s.batch_bytes,
            s.payloads_stripped,
            mean,
            s.pred_error_max,
            row.p99(outer).unwrap_or(0.0),
            row.max_err(outer).unwrap_or(0.0),
            row.wall_ms,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_scale_meets_the_acceptance_bounds() {
        let spec = GameSpec::racer();
        let rows = run(42, Scale::smoke(), WireCodec::BinaryV2);
        let verdict = verdict(&rows, &spec).expect("predict acceptance");
        assert!(verdict.contains("predict OK"), "{verdict}");
        // The strip row composes: strictly fewer payload bytes than
        // plain predict, same suppression machinery.
        let predict = rows.iter().find(|r| r.mode == Mode::Predict).unwrap();
        let strip = rows.iter().find(|r| r.mode == Mode::PredictStrip).unwrap();
        assert!(strip.stats.payloads_stripped > 0);
        assert!(
            strip.stats.batch_bytes < predict.stats.batch_bytes,
            "position-only far items must save further bytes: {} vs {}",
            strip.stats.batch_bytes,
            predict.stats.batch_bytes
        );
    }
}
