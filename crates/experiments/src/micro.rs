//! E4/E5/E6 — the paper's microbenchmarks (§4.2).
//!
//! * **E4** client switching latency: how long a handoff takes as the
//!   per-client state and the access latency grow.
//! * **E5** coordinator overhead: wall-clock cost of recomputing and
//!   distributing overlap tables as the fleet grows, plus the share of
//!   protocol messages that ever touch the MC ("the overhead of using a
//!   central coordinator was negligible").
//! * **E6** inter-server traffic vs overlap size: "the amount of traffic
//!   sent between Matrix servers corresponded directly to the size of the
//!   overlap regions".

use crate::harness::{Cluster, ClusterConfig};
use matrix_core::{Coordinator, CoordinatorConfig};
use matrix_games::{GameSpec, WorkloadSchedule};
use matrix_geometry::{build_overlap, PartitionMap, ServerId};
use matrix_metrics::Table;
use matrix_sim::SimTime;

// ---------------------------------------------------------------------------
// E4 — switching latency
// ---------------------------------------------------------------------------

/// Switching latency for one configuration point.
#[derive(Debug, Clone)]
pub struct SwitchRow {
    /// Per-client state bytes.
    pub state_bytes: u64,
    /// Client access-link one-way latency (ms).
    pub link_ms: u64,
    /// Median switch latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile switch latency (ms).
    pub p95_ms: f64,
    /// Number of switches measured.
    pub switches: u64,
}

/// Sweeps per-client state size and access latency, measuring handoffs
/// induced by a hotspot split.
pub fn run_switching(seed: u64) -> Vec<SwitchRow> {
    let mut rows = Vec::new();
    for &state_bytes in &[512u64, 2_048, 8_192, 32_768] {
        for &link_ms in &[10u64, 25, 50] {
            let mut spec = GameSpec::bzflag();
            spec.client_state_bytes = state_bytes;
            let schedule = WorkloadSchedule::flash_crowd(&spec, 50, 500, SimTime::from_secs(10));
            let mut cfg = ClusterConfig::adaptive(spec);
            cfg.seed = seed;
            cfg.game.client_state_bytes = state_bytes;
            cfg.net.client_link = matrix_sim::LinkModel {
                latency: matrix_sim::LatencyModel::constant_millis(link_ms),
                loss_probability: 0.0,
                // A 2005-era broadband uplink: state size now matters.
                bandwidth_bytes_per_sec: Some(100_000.0),
            };
            let report = Cluster::new(cfg, schedule).run();
            rows.push(SwitchRow {
                state_bytes,
                link_ms,
                p50_ms: report.switch_latency_us.p50().unwrap_or(0.0) / 1000.0,
                p95_ms: report.switch_latency_us.p95().unwrap_or(0.0) / 1000.0,
                switches: report.switches,
            });
        }
    }
    rows
}

/// Renders the E4 table.
pub fn switching_table(rows: &[SwitchRow]) -> Table {
    let mut t = Table::new(
        "E4 — client switching latency vs per-client state and access latency",
        &["state (B)", "link (ms)", "p50 (ms)", "p95 (ms)", "switches"],
    );
    for r in rows {
        t.push_row(&[
            r.state_bytes.to_string(),
            r.link_ms.to_string(),
            format!("{:.1}", r.p50_ms),
            format!("{:.1}", r.p95_ms),
            r.switches.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// E5 — coordinator overhead
// ---------------------------------------------------------------------------

/// Coordinator recompute cost for one fleet size.
#[derive(Debug, Clone)]
pub struct McRow {
    /// Number of live servers.
    pub servers: u32,
    /// Wall-clock recompute + distribute cost (ms).
    pub recompute_ms: f64,
    /// Total overlap regions across all tables.
    pub regions: usize,
}

/// Measures table recomputation cost as the fleet grows.
pub fn run_mc_cost() -> Vec<McRow> {
    let world = GameSpec::bzflag().world;
    let radius = GameSpec::bzflag().radius;
    let mut rows = Vec::new();
    for &n in &[2u32, 4, 8, 16, 32, 64, 128, 256] {
        let servers: Vec<ServerId> = (1..=n).map(ServerId).collect();
        let map = PartitionMap::static_grid(world, &servers).expect("grid");
        let started = std::time::Instant::now();
        let (mut coordinator, _) =
            Coordinator::with_map(CoordinatorConfig::default(), map.clone(), radius);
        let actions = coordinator.recompute();
        let elapsed = started.elapsed().as_secs_f64() * 1000.0;
        let overlap = build_overlap(&map, radius, matrix_geometry::Metric::Euclidean);
        rows.push(McRow {
            servers: n,
            recompute_ms: elapsed,
            regions: overlap.total_regions(),
        });
        drop(actions);
    }
    rows
}

/// Renders the E5 recompute-cost table.
pub fn mc_cost_table(rows: &[McRow]) -> Table {
    let mut t = Table::new(
        "E5 — coordinator overlap-table recompute cost vs fleet size",
        &["servers", "recompute+distribute (ms)", "overlap regions"],
    );
    for r in rows {
        t.push_row(&[
            r.servers.to_string(),
            format!("{:.3}", r.recompute_ms),
            r.regions.to_string(),
        ]);
    }
    t
}

/// Share of protocol activity that touches the MC during a hotspot run —
/// the "negligible overhead" claim.
pub fn run_mc_share(seed: u64) -> Table {
    let spec = GameSpec::bzflag();
    let schedule = WorkloadSchedule::figure2(&spec, 100);
    let mut cfg = ClusterConfig::adaptive(spec);
    cfg.seed = seed;
    let report = Cluster::new(cfg, schedule).run();
    let mc_msgs = report.coordinator.recomputes
        + report.coordinator.tables_sent
        + report.coordinator.resolves
        + report.coordinator.splits_seen
        + report.coordinator.reclaims_seen;
    let total = report.updates_processed.max(1);
    let mut t = Table::new(
        "E5 — coordinator share of protocol traffic (Figure-2 run)",
        &["metric", "value"],
    );
    t.push_row(&["game updates processed".into(), total.to_string()]);
    t.push_row(&["MC messages (all kinds)".into(), mc_msgs.to_string()]);
    t.push_row(&[
        "MC share".into(),
        format!("{:.4}%", mc_msgs as f64 / total as f64 * 100.0),
    ]);
    t.push_row(&[
        "table recomputations".into(),
        report.coordinator.recomputes.to_string(),
    ]);
    t.push_row(&[
        "point resolutions".into(),
        report.coordinator.resolves.to_string(),
    ]);
    t
}

// ---------------------------------------------------------------------------
// E6 — traffic vs overlap size
// ---------------------------------------------------------------------------

/// Inter-server traffic for one radius point.
#[derive(Debug, Clone)]
pub struct TrafficRow {
    /// Radius of visibility.
    pub radius: f64,
    /// Total overlap-region area across servers.
    pub overlap_area: f64,
    /// Inter-Matrix-server bytes over the run.
    pub inter_server_bytes: u64,
    /// Bytes per unit of overlap area (should stay roughly flat).
    pub bytes_per_area: f64,
}

/// Sweeps the visibility radius on a fixed 4-server static grid and
/// correlates inter-server traffic with overlap area.
pub fn run_traffic(seed: u64) -> Vec<TrafficRow> {
    let mut rows = Vec::new();
    for &radius in &[25.0f64, 50.0, 100.0, 150.0, 200.0] {
        let mut spec = GameSpec::bzflag();
        spec.radius = radius;
        let schedule = WorkloadSchedule::steady(400, SimTime::from_secs(60));
        let mut cfg = ClusterConfig::static_partition(spec.clone(), 4);
        cfg.seed = seed;
        cfg.queue_capacity = None; // not studying drops here
        let report = Cluster::new(cfg, schedule).run();

        let servers: Vec<ServerId> = (1..=4).map(ServerId).collect();
        let map = PartitionMap::static_grid(spec.world, &servers).expect("grid");
        let overlap = build_overlap(&map, radius, spec.metric);
        let area = overlap.total_overlap_area();
        rows.push(TrafficRow {
            radius,
            overlap_area: area,
            inter_server_bytes: report.inter_server_bytes,
            bytes_per_area: report.inter_server_bytes as f64 / area.max(1.0),
        });
    }
    rows
}

/// Renders the E6 table.
pub fn traffic_table(rows: &[TrafficRow]) -> Table {
    let mut t = Table::new(
        "E6 — inter-server traffic vs overlap-region size (4 static servers, 400 clients, 60 s)",
        &[
            "radius",
            "overlap area",
            "inter-server bytes",
            "bytes / area",
        ],
    );
    for r in rows {
        t.push_row(&[
            format!("{:.0}", r.radius),
            format!("{:.0}", r.overlap_area),
            r.inter_server_bytes.to_string(),
            format!("{:.1}", r.bytes_per_area),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mc_cost_is_measurable_and_grows() {
        let rows = run_mc_cost();
        assert_eq!(rows.len(), 8);
        assert!(rows.last().unwrap().regions > rows.first().unwrap().regions);
        let table = mc_cost_table(&rows).render();
        assert!(table.contains("servers"));
    }

    #[test]
    fn switching_table_renders() {
        let rows = vec![SwitchRow {
            state_bytes: 512,
            link_ms: 10,
            p50_ms: 1.0,
            p95_ms: 2.0,
            switches: 5,
        }];
        assert!(switching_table(&rows).render().contains("512"));
    }

    #[test]
    fn traffic_table_renders() {
        let rows = vec![TrafficRow {
            radius: 50.0,
            overlap_area: 100.0,
            inter_server_bytes: 1000,
            bytes_per_area: 10.0,
        }];
        assert!(traffic_table(&rows).render().contains("50"));
    }
}
