//! E1/E2 — Figure 2: Matrix responding to a 600-client hotspot.
//!
//! Reproduces §4.1's experiment: 100 background BzFlag clients, a
//! 600-client hotspot at t=10 s (drained 200-at-a-time from t=75), and a
//! second hotspot elsewhere at t=170 s. Output is the two panels of
//! Figure 2 — clients per server (2a) and receive-queue length per server
//! (2b) — as ASCII charts plus CSV.

use crate::harness::{Cluster, ClusterConfig, ClusterReport};
use matrix_games::{GameSpec, WorkloadSchedule};
use matrix_metrics::{AsciiChart, Table};

/// Runs the Figure-2 scenario and returns the raw report.
pub fn run(seed: u64) -> ClusterReport {
    let spec = GameSpec::bzflag();
    let schedule = WorkloadSchedule::figure2(&spec, 100);
    let mut cfg = ClusterConfig::adaptive(spec);
    cfg.seed = seed;
    Cluster::new(cfg, schedule).run()
}

/// Renders Figure 2a (clients per server vs time).
pub fn render_2a(report: &ClusterReport) -> String {
    let mut out = String::from("Figure 2a — number of clients per server (600-client hotspot)\n");
    let series: Vec<&matrix_metrics::TimeSeries> = report
        .clients_per_server
        .iter()
        .filter(|s| s.max_value().unwrap_or(0.0) > 0.0)
        .collect();
    out.push_str(&AsciiChart::new(100, 20).render(&series));
    out
}

/// Renders Figure 2b (receive-queue length per server vs time).
pub fn render_2b(report: &ClusterReport) -> String {
    let mut out = String::from("Figure 2b — server receive-queue length\n");
    let series: Vec<&matrix_metrics::TimeSeries> = report
        .queue_per_server
        .iter()
        .filter(|s| s.max_value().unwrap_or(0.0) > 0.0)
        .collect();
    out.push_str(&AsciiChart::new(100, 20).render(&series));
    out
}

/// Summary table comparing the run against the paper's qualitative claims.
pub fn summary(report: &ClusterReport) -> Table {
    let mut t = Table::new(
        "Figure 2 run summary (paper: up to 4 servers, splits at 300+ clients, later reclaimed)",
        &["metric", "value"],
    );
    t.push_row(&[
        "peak servers in use".into(),
        report.peak_servers.to_string(),
    ]);
    t.push_row(&["splits".into(), report.splits.to_string()]);
    t.push_row(&["reclaims".into(), report.reclaims.to_string()]);
    t.push_row(&[
        "servers at end of run".into(),
        format!("{}", report.servers_in_use.last_value().unwrap_or(0.0)),
    ]);
    t.push_row(&[
        "peak clients on one server".into(),
        format!("{:.0}", report.peak_clients_on_one_server()),
    ]);
    t.push_row(&[
        "peak queue backlog (work units)".into(),
        format!("{:.0}", report.peak_queue),
    ]);
    t.push_row(&[
        "client switches (handoffs)".into(),
        report.switches.to_string(),
    ]);
    t.push_row(&[
        "pool grants / denials".into(),
        format!("{} / {}", report.pool.grants, report.pool.denials),
    ]);
    t.push_row(&[
        "p95 response latency (ms)".into(),
        format!(
            "{:.1}",
            report.response_latency_us.p95().unwrap_or(0.0) / 1000.0
        ),
    ]);
    t.push_row(&[
        "late responses (>150ms)".into(),
        format!("{:.2}%", report.late_fraction * 100.0),
    ]);
    t
}

/// Renders the adaptation timeline (when each split/reclaim happened).
pub fn timeline(report: &ClusterReport) -> String {
    let mut out = String::from("adaptation timeline:\n");
    for (t, event) in &report.timeline {
        out.push_str(&format!("  {t}  {event}\n"));
    }
    out
}

/// CSV artefacts for external plotting.
pub fn to_csv(report: &ClusterReport) -> String {
    let mut out = String::new();
    for s in &report.clients_per_server {
        out.push_str(&s.to_csv());
    }
    for s in &report.queue_per_server {
        out.push_str(&s.to_csv());
    }
    out.push_str(&report.servers_in_use.to_csv());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full Figure-2 scenario is exercised end-to-end in release-mode
    /// integration tests and the bench harness; here we only check the
    /// renderers on a cheap run.
    #[test]
    fn renderers_produce_output() {
        let spec = GameSpec::bzflag();
        let schedule = WorkloadSchedule::steady(30, matrix_sim::SimTime::from_secs(10));
        let mut cfg = ClusterConfig::adaptive(spec);
        cfg.seed = 7;
        let report = Cluster::new(cfg, schedule).run();
        assert!(render_2a(&report).contains("Figure 2a"));
        assert!(render_2b(&report).contains("Figure 2b"));
        let table = summary(&report);
        assert!(table.render().contains("peak servers"));
        assert!(to_csv(&report).contains("time,value"));
    }
}
