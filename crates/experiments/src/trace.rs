//! E16 — end-to-end causal tracing + the freshness SLO plane.
//!
//! Every experiment so far measured the pipeline from the *sender's*
//! side: fan-out counts, bytes on the wire, stage latencies inside one
//! node. None of them could answer the question the whole adaptive
//! middleware exists to optimise: **how stale was an entity on a real
//! receiver's screen, per vision ring, end to end?** The trace plane
//! answers it causally instead of statistically — a deterministic
//! 1-in-`trace_sample_rate` subset of ingested events is stamped with a
//! [`matrix_core::TraceTag`] at ingest, the tag rides through all five
//! pipeline stages, the sharded flush, both wire codecs and (on the
//! hard paths) replication to a warm standby, and the receiver closes
//! the loop: at apply it measures delivery latency and
//! staleness-at-apply on its own clock and echoes a `TraceAck`, which
//! the serving node folds into per-ring freshness histograms.
//!
//! Three legs, one verdict (CI runs `matrix-experiments trace --smoke`):
//!
//! * **dense** — the E12 hotspot crowd on one static server, tracing
//!   sampled at 1/64. Per-ring p50/p99 delivery latency and staleness
//!   come out of the trace plane itself; the near ring's p99 staleness
//!   must sit within the configured flush cadence (one
//!   `batch_interval` plus one `tick` of flush quantisation — with no
//!   per-client caps the near ring is never deferred, so anything
//!   above that bound is a trace-plane bug, not load). The traced
//!   share of delivered items must match the declared sample rate
//!   (within a wide determinism-safe window), and every traced
//!   delivery must round-trip: acks folded == items measured.
//! * **failover** — the E13 arrangement (two static partitions, warm
//!   standby, server 1 killed mid-run) with tracing on. Trace
//!   continuity must hold across the promotion: the *standby* folds
//!   trace acks after taking over (resumed clients keep measuring),
//!   and the traced share stays at the sample rate — tags are not
//!   silently shed on the replication path.
//! * **rt** — a real [`matrix_rt::RtCluster`] behind a TCP gateway:
//!   remote clients receive traced items over the actual v2 wire,
//!   measure latency/staleness against the cluster clock, ack over
//!   TCP, and the coordinator's freshness-SLO tracker surfaces its
//!   `slo_*` gauges on the live stats endpoint (pseudo-node `0`).

use crate::harness::{Cluster, ClusterConfig, ClusterReport, TopologyEvent};
use matrix_core::{ClientToGame, GameToClient, ServerId, SloTargets};
use matrix_games::{GameSpec, Placement, PopulationEvent, WorkloadSchedule};
use matrix_geometry::Point;
use matrix_metrics::{Histogram, Table};
use matrix_rt::{wire, RtCluster, RtConfig};
use matrix_sim::{SimDuration, SimTime};

/// The sample rate the verdict is declared at: 1 traced event per 64
/// ingested.
pub const TRACE_SAMPLE_RATE: u32 = 64;

/// Scenario scale: the full run and a CI smoke variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Dense-leg crowd on the lone server.
    pub crowd: u32,
    /// Dense-leg horizon in seconds.
    pub horizon_secs: u64,
    /// Failover-leg clients per hotspot (two hotspots).
    pub failover_crowd: u32,
    /// Failover-leg horizon in seconds.
    pub failover_horizon_secs: u64,
    /// Failover-leg crash time in seconds.
    pub crash_at_secs: u64,
    /// Runtime-leg remote TCP clients.
    pub rt_clients: u32,
    /// Runtime-leg drive steps (one move per client per step).
    pub rt_steps: u32,
}

impl Scale {
    /// The full experiment.
    pub fn full() -> Scale {
        Scale {
            crowd: 500,
            horizon_secs: 20,
            failover_crowd: 150,
            failover_horizon_secs: 30,
            crash_at_secs: 10,
            rt_clients: 8,
            rt_steps: 120,
        }
    }

    /// A fast variant for CI (`matrix-experiments trace --smoke`).
    pub fn smoke() -> Scale {
        Scale {
            crowd: 150,
            horizon_secs: 10,
            failover_crowd: 60,
            failover_horizon_secs: 20,
            crash_at_secs: 8,
            rt_clients: 6,
            rt_steps: 80,
        }
    }
}

/// One simulated leg's result.
#[derive(Debug, Clone)]
pub struct TraceRow {
    /// Leg label for the table ("dense" / "failover").
    pub label: &'static str,
    /// The near-ring staleness bound the flush cadence promises, µs.
    pub bound_us: u64,
    /// Full cluster report (trace fields populated).
    pub report: ClusterReport,
}

/// The runtime TCP leg's result.
#[derive(Debug, Clone)]
pub struct RtLeg {
    /// Traced items the remote clients saw arrive over real TCP.
    pub traced_items: u64,
    /// Trace acks the nodes folded (from live telemetry snapshots).
    pub acks_folded: u64,
    /// Client-measured delivery latency, µs (all rings merged — the
    /// tight crowd keeps every receiver in the near ring).
    pub latency_us: Histogram,
    /// Client-measured staleness at apply, µs.
    pub staleness_us: Histogram,
    /// Whether the coordinator's `slo_*` gauges showed up on the live
    /// Prometheus endpoint as pseudo-node `0`.
    pub slo_gauges_exposed: bool,
}

/// Trace knobs shared by both simulated legs: sampling at the declared
/// rate, telemetry on (acks ride heartbeats to the coordinator), and a
/// deterministic flush cadence — `tick == batch_interval` — so the
/// near-ring staleness bound is exactly one batch interval plus one
/// tick of quantisation. Per-client caps are off: deferral would
/// charge rate-limiter staleness into the near ring and the bound
/// would measure load, not the trace plane.
fn trace_knobs(cfg: &mut ClusterConfig) -> u64 {
    cfg.game.trace_sample_rate = TRACE_SAMPLE_RATE;
    cfg.game.telemetry = true;
    cfg.game.tick = SimDuration::from_millis(50);
    cfg.game.batch_interval = SimDuration::from_millis(50);
    cfg.game.max_updates_per_flush = 0;
    cfg.game.client_budget_bytes = 0;
    (cfg.game.batch_interval + cfg.game.tick).as_micros()
}

/// Dense leg: the E12 hotspot crowd on one static server, ring tiers
/// on (so the per-ring columns actually grade), tracing at 1/64.
pub fn run_dense(seed: u64, scale: Scale) -> TraceRow {
    let mut spec = GameSpec::bzflag();
    spec.update_rate_hz = spec.update_rate_hz.min(2.0);
    let (radii, rates) = spec.ring_tiers();
    let mut cfg = ClusterConfig::static_partition(spec.clone(), 1);
    cfg.seed = seed;
    cfg.queue_capacity = None;
    cfg.game.emit_updates = true;
    cfg.game.set_rings(&radii, &rates);
    let bound_us = trace_knobs(&mut cfg);
    let schedule = WorkloadSchedule::new(SimTime::from_secs(scale.horizon_secs)).at(
        SimTime::ZERO,
        PopulationEvent::Join {
            n: scale.crowd,
            placement: Placement::Hotspot {
                center: spec.hotspot_a(),
                spread: spec.radius * 0.5,
            },
        },
    );
    TraceRow {
        label: "dense",
        bound_us,
        report: Cluster::new(cfg, schedule).run(),
    }
}

/// Failover leg: the E13 arrangement — two static partitions with warm
/// standbys, server 1 crashed mid-run — with tracing on. The verdict
/// reads trace continuity off the promoted standby's ack fold.
pub fn run_failover(seed: u64, scale: Scale) -> TraceRow {
    let mut spec = GameSpec::bzflag();
    spec.update_rate_hz = spec.update_rate_hz.min(2.0);
    let (radii, rates) = spec.ring_tiers();
    let mut cfg = ClusterConfig::static_partition(spec.clone(), 2);
    cfg.seed = seed;
    cfg.queue_capacity = None;
    cfg.game.emit_updates = true;
    cfg.game.set_rings(&radii, &rates);
    cfg.matrix.standby_replication = true;
    cfg.pool_size = 4;
    cfg.coordinator.heartbeat_timeout = SimDuration::from_secs(2);
    cfg.net.crash_detect = SimDuration::from_secs(8);
    cfg.crashes = vec![(SimTime::from_secs(scale.crash_at_secs), ServerId(1))];
    let bound_us = trace_knobs(&mut cfg);
    let schedule = WorkloadSchedule::new(SimTime::from_secs(scale.failover_horizon_secs))
        .at(
            SimTime::ZERO,
            PopulationEvent::Join {
                n: scale.failover_crowd,
                placement: Placement::Hotspot {
                    center: spec.hotspot_a(),
                    spread: spec.radius * 0.3,
                },
            },
        )
        .at(
            SimTime::ZERO,
            PopulationEvent::Join {
                n: scale.failover_crowd,
                placement: Placement::Hotspot {
                    center: spec.hotspot_b(),
                    spread: spec.radius * 0.3,
                },
            },
        );
    TraceRow {
        label: "failover",
        bound_us,
        report: Cluster::new(cfg, schedule).run(),
    }
}

/// Runtime leg: a real cluster behind a TCP gateway. Remote clients
/// join in one tight neighbourhood, move for `rt_steps` rounds, and
/// close the trace loop themselves — measuring each traced item
/// against the cluster clock and acking over the same socket. The
/// coordinator runs a near-ring staleness SLO so its `slo_*` gauges
/// are live on the stats endpoint.
pub fn run_rt(scale: Scale) -> RtLeg {
    tokio::runtime::block_on(async move {
        let mut cfg = RtConfig::default();
        cfg.game.emit_updates = true;
        cfg.game.telemetry = true;
        cfg.game.trace_sample_rate = TRACE_SAMPLE_RATE;
        cfg.game.tick = SimDuration::from_millis(10);
        cfg.game.batch_interval = SimDuration::from_millis(10);
        // A deliberately loose 250 ms near-ring target: the point here
        // is that the gauges are live, not that localhost breaches.
        cfg.coordinator.slo = SloTargets {
            staleness_us: [250_000, 0, 0, 0],
            ..SloTargets::default()
        };
        let cluster = RtCluster::start(cfg).await;
        let gateway = wire::spawn_gateway(
            ("127.0.0.1", 0),
            cluster.router().clone(),
            cluster.bootstrap_id(),
        )
        .await
        .expect("bind gateway");
        let stats = cluster
            .serve_stats(("127.0.0.1", 0))
            .await
            .expect("bind stats");

        let mut clients = Vec::new();
        for i in 0..scale.rt_clients {
            let mut c = wire::TcpGameClient::connect(gateway)
                .await
                .expect("connect");
            c.send(&ClientToGame::Join {
                pos: Point::new(100.0 + i as f64 * 4.0, 100.0),
                state_bytes: 64,
            })
            .await
            .expect("join");
            clients.push(c);
        }

        let mut leg = RtLeg {
            traced_items: 0,
            acks_folded: 0,
            latency_us: Histogram::new(),
            staleness_us: Histogram::new(),
            slo_gauges_exposed: false,
        };
        let recv_window = std::time::Duration::from_millis(3);
        for step in 0..scale.rt_steps {
            for (i, c) in clients.iter_mut().enumerate() {
                let phase = (step as f64 / 10.0 + i as f64).sin();
                let pos = Point::new(100.0 + i as f64 * 4.0 + phase * 8.0, 100.0 + phase * 8.0);
                let _ = c.send(&ClientToGame::Move { pos }).await;
            }
            tokio::time::sleep(std::time::Duration::from_millis(15)).await;
            for c in clients.iter_mut() {
                // Drain whatever arrived this round; the timeout is the
                // idle detector, not a correctness bound.
                while let Ok(Ok(msg)) = tokio::time::timeout(recv_window, c.recv()).await {
                    let GameToClient::UpdateBatch { updates } = msg else {
                        continue;
                    };
                    let apply_us = cluster.router().now().as_micros();
                    for item in &updates {
                        let Some(tag) = item.trace() else { continue };
                        leg.traced_items += 1;
                        let latency = tag.latency_us(apply_us);
                        let staleness = tag.staleness_us(apply_us);
                        leg.latency_us.record(latency as f64);
                        leg.staleness_us.record(staleness as f64);
                        let _ = c
                            .send(&ClientToGame::TraceAck {
                                ring: item.ring(),
                                latency_us: latency,
                                staleness_us: staleness,
                            })
                            .await;
                    }
                }
            }
        }
        // Let the final acks land and a heartbeat carry the histograms
        // to the coordinator before reading anything back.
        tokio::time::sleep(std::time::Duration::from_millis(1_500)).await;

        for snap in cluster.snapshots().await {
            if let Some(telemetry) = snap.telemetry {
                leg.acks_folded += telemetry.get_counter("trace_acks").unwrap_or(0);
            }
        }
        if let Ok(prom) = wire::TcpStatsClient::fetch_text(stats).await {
            leg.slo_gauges_exposed =
                prom.contains("slo_target_us_r0") && prom.contains("server=\"0\"");
        }
        cluster.shutdown().await;
        leg
    })
}

/// Runs all three legs.
pub fn run(seed: u64, scale: Scale) -> (TraceRow, TraceRow, RtLeg) {
    (
        run_dense(seed, scale),
        run_failover(seed, scale),
        run_rt(scale),
    )
}

/// Sum of per-server ack folds.
fn total_acks(row: &TraceRow) -> u64 {
    row.report.trace_acks_by_server.iter().map(|(_, n)| n).sum()
}

/// The promoted standby's id, read off the run timeline.
fn promoted_standby(report: &ClusterReport) -> Option<ServerId> {
    report.timeline.iter().find_map(|(_, ev)| match ev {
        TopologyEvent::Failover { standby, .. } => Some(*standby),
        _ => None,
    })
}

/// Checks one simulated leg's share + round-trip invariants.
fn check_leg(row: &TraceRow) -> Result<(), String> {
    let r = &row.report;
    let label = row.label;
    if r.update_batches_delivered == 0 {
        return Err(format!("{label}: no update batches delivered"));
    }
    if r.traced_deliveries == 0 {
        return Err(format!("{label}: no traced items delivered"));
    }
    // The traced share of delivered items must track the declared
    // sample rate. The window is wide (6× either way) because fan-out
    // per event varies, but it rules out both wholesale tag loss and
    // over-stamping.
    let share = r.traced_deliveries as f64 / r.batched_updates_delivered as f64;
    let declared = 1.0 / TRACE_SAMPLE_RATE as f64;
    if share < declared / 6.0 || share > declared * 6.0 {
        return Err(format!(
            "{label}: traced share {share:.5} is not within 6x of declared 1/{TRACE_SAMPLE_RATE}"
        ));
    }
    // Round trip: every measured delivery was acked and folded.
    let acks = total_acks(row);
    if acks != r.traced_deliveries {
        return Err(format!(
            "{label}: {} traced deliveries but {acks} acks folded — the ack path lost traces",
            r.traced_deliveries
        ));
    }
    Ok(())
}

/// The enforced verdict over all three legs.
pub fn verdict(dense: &TraceRow, failover: &TraceRow, rt: &RtLeg) -> Result<String, String> {
    check_leg(dense)?;
    check_leg(failover)?;
    // Near-ring freshness: p99 staleness within the flush-cadence
    // bound on the dense leg (no caps, so nothing defers ring 0).
    let (_, near_staleness) = &dense.report.trace_freshness[0];
    let p99 = near_staleness
        .p99()
        .ok_or("dense: near ring measured no staleness")?;
    if p99 > dense.bound_us as f64 {
        return Err(format!(
            "dense: near-ring p99 staleness {:.0}us exceeds the {}us flush-cadence bound",
            p99, dense.bound_us
        ));
    }
    // Trace continuity across the promotion: the standby measured
    // latencies for resumed clients after taking over.
    let standby =
        promoted_standby(&failover.report).ok_or("failover: no standby promotion happened")?;
    if failover.report.resumes == 0 {
        return Err("failover: no client resumed on the standby".into());
    }
    let standby_acks = failover
        .report
        .trace_acks_by_server
        .iter()
        .find(|(id, _)| *id == standby)
        .map(|(_, n)| *n)
        .unwrap_or(0);
    if standby_acks == 0 {
        return Err(format!(
            "failover: promoted standby {standby} folded no trace acks — tracing died at the crash"
        ));
    }
    // The runtime leg: traces crossed real TCP both ways, and the SLO
    // plane is visible to an operator.
    if rt.traced_items == 0 {
        return Err("rt: no traced items crossed the TCP wire".into());
    }
    if rt.acks_folded == 0 {
        return Err("rt: nodes folded no trace acks from remote clients".into());
    }
    if !rt.slo_gauges_exposed {
        return Err("rt: slo_* gauges missing from the live stats endpoint".into());
    }
    Ok(format!(
        "trace OK: dense near-ring p99 staleness {:.1}ms <= {}ms bound at 1/{} sampling \
         ({} traced deliveries, every ack folded), continuity through failover \
         ({} acks on promoted standby {standby}), {} traced items over real TCP with \
         live slo_* gauges",
        p99 / 1e3,
        dense.bound_us / 1_000,
        TRACE_SAMPLE_RATE,
        dense.report.traced_deliveries,
        standby_acks,
        rt.traced_items,
    ))
}

/// Renders the per-ring freshness table for one simulated leg.
pub fn table(row: &TraceRow) -> Table {
    let mut t = Table::new(
        format!(
            "E16 — causal trace plane, {} leg (1/{} sampling)",
            row.label, TRACE_SAMPLE_RATE
        ),
        &[
            "ring",
            "traced",
            "lat p50",
            "lat p99",
            "stale p50",
            "stale p99",
        ],
    );
    for (ring, (latency, staleness)) in row.report.trace_freshness.iter().enumerate() {
        if latency.is_empty() && staleness.is_empty() {
            continue;
        }
        let ms = |v: Option<f64>| v.map_or("—".into(), |v| format!("{:.1}ms", v / 1e3));
        t.push_row(&[
            format!("{ring}"),
            format!("{}", latency.count()),
            ms(latency.p50()),
            ms(latency.p99()),
            ms(staleness.p50()),
            ms(staleness.p99()),
        ]);
    }
    t
}

/// Renders the runtime leg's summary table.
pub fn rt_table(rt: &RtLeg) -> Table {
    let mut t = Table::new(
        "E16 — runtime TCP leg (remote clients close the loop)",
        &["traced", "acked", "lat p50", "lat p99", "stale p99", "slo"],
    );
    let ms = |v: Option<f64>| v.map_or("—".into(), |v| format!("{:.1}ms", v / 1e3));
    t.push_row(&[
        format!("{}", rt.traced_items),
        format!("{}", rt.acks_folded),
        ms(rt.latency_us.p50()),
        ms(rt.latency_us.p99()),
        ms(rt.staleness_us.p99()),
        if rt.slo_gauges_exposed {
            "live".into()
        } else {
            "missing".into()
        },
    ]);
    t
}

/// CSV artefact: per-leg, per-ring freshness.
pub fn to_csv(dense: &TraceRow, failover: &TraceRow, rt: &RtLeg) -> String {
    let mut out =
        String::from("leg,ring,traced,latency_p50_us,latency_p99_us,stale_p50_us,stale_p99_us\n");
    for row in [dense, failover] {
        for (ring, (latency, staleness)) in row.report.trace_freshness.iter().enumerate() {
            if latency.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "{},{},{},{:.0},{:.0},{:.0},{:.0}\n",
                row.label,
                ring,
                latency.count(),
                latency.p50().unwrap_or(0.0),
                latency.p99().unwrap_or(0.0),
                staleness.p50().unwrap_or(0.0),
                staleness.p99().unwrap_or(0.0),
            ));
        }
    }
    out.push_str(&format!(
        "rt,0,{},{:.0},{:.0},{:.0},{:.0}\n",
        rt.traced_items,
        rt.latency_us.p50().unwrap_or(0.0),
        rt.latency_us.p99().unwrap_or(0.0),
        rt.staleness_us.p50().unwrap_or(0.0),
        rt.staleness_us.p99().unwrap_or(0.0),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_leg_meets_the_freshness_bound_at_smoke_scale() {
        let row = run_dense(42, Scale::smoke());
        check_leg(&row).expect("share + round-trip invariants");
        let (latency, staleness) = &row.report.trace_freshness[0];
        assert!(latency.count() > 0, "near ring must measure latencies");
        let p99 = staleness.p99().expect("near-ring staleness measured");
        assert!(
            p99 <= row.bound_us as f64,
            "near-ring p99 staleness {p99}us exceeds the {}us bound",
            row.bound_us
        );
    }

    #[test]
    fn failover_leg_keeps_tracing_through_the_promotion() {
        let row = run_failover(42, Scale::smoke());
        check_leg(&row).expect("share + round-trip invariants");
        let standby = promoted_standby(&row.report).expect("a standby was promoted");
        let standby_acks = row
            .report
            .trace_acks_by_server
            .iter()
            .find(|(id, _)| *id == standby)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert!(
            standby_acks > 0,
            "standby {standby} folded no acks: {:?}",
            row.report.trace_acks_by_server
        );
    }
}
