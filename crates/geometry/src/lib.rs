//! Spatial substrate for the Matrix adaptive game middleware.
//!
//! This crate implements every geometric mechanism the Matrix paper
//! (Balan et al., Middleware 2005) relies on:
//!
//! * [`Point`] / [`Rect`] — the game world is a 2-D plane carved into
//!   axis-aligned rectangular partitions.
//! * [`Metric`] — the game-specific distance metric (§3.1 of the paper lets
//!   each game pick its own).
//! * [`PartitionMap`] — the non-overlapping, world-covering assignment of
//!   rectangles to servers, with split and reclaim operations.
//! * [`consistency_set`] — Equation 1 of the paper, computed exactly.
//! * [`OverlapTable`] / [`build_overlap`] — the Matrix Coordinator's overlap
//!   regions: maximal groups of points with identical non-empty consistency
//!   sets, supporting the O(1) lookup used on the packet forwarding path.
//! * [`SplitStrategy`] — "split-to-left" from the paper plus the load-aware
//!   alternatives §5 cites as complementary work.
//!
//! # Example
//!
//! ```
//! use matrix_geometry::{Point, Rect, PartitionMap, ServerId, SplitStrategy, build_overlap, Metric};
//!
//! let world = Rect::new(Point::new(0.0, 0.0), Point::new(1000.0, 1000.0));
//! let mut map = PartitionMap::new(world, ServerId(1));
//! map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[]).unwrap();
//!
//! let overlap = build_overlap(&map, 50.0, Metric::Euclidean);
//! let table = overlap.table_for(ServerId(1)).unwrap();
//! // Points deep inside a partition have an empty consistency set;
//! // points near the boundary must also be routed to the neighbour.
//! assert!(table.lookup(Point::new(900.0, 500.0)).is_empty());
//! assert_eq!(table.lookup(Point::new(510.0, 500.0)), &[ServerId(2)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod consistency;
mod error;
mod index;
mod overlap;
mod partition;
mod point;
mod rect;
mod split;

pub use consistency::{consistency_set, consistency_set_from_rects};
pub use error::GeometryError;
pub use index::PartitionIndex;
pub use overlap::{build_overlap, OverlapMap, OverlapRegion, OverlapTable};
pub use partition::{PartitionMap, SplitOutcome};
pub use point::{Metric, Point};
pub use rect::{Axis, Rect};
pub use split::SplitStrategy;

use serde::{Deserialize, Serialize};

/// Identifier of a Matrix server (and therefore of the partition it owns).
///
/// The spatial substrate identifies partitions by the server that owns them,
/// mirroring the paper's formulation "assigns each partition `Pi` to a
/// distinct server `Si`".
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ServerId(pub u32);

impl std::fmt::Display for ServerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "S{}", self.0)
    }
}
