//! Overlap regions and the O(1) consistency-set lookup tables.
//!
//! §3.1 of the paper: Matrix "efficiently utilises this sparseness by
//! forming groups, called *overlap regions*, of all points that have
//! identical non-empty consistency sets". The Matrix Coordinator computes
//! these regions with axis-aligned bounding-box arithmetic and distributes
//! one table per server; the packet-forwarding path then resolves `C(σ)`
//! with a constant-time table lookup instead of asking anyone.
//!
//! # Construction
//!
//! For server `i` with partition `Pi` and radius `R`, every other server
//! `j` contributes the box `Bij = Pi ∩ expand(Pj, R)`: the part of `Pi`
//! whose points are within `R` of `Pj` (exactly, under the Chebyshev
//! metric; conservatively, under Euclidean/Manhattan — the same AABB
//! approximation the paper's coordinator uses). The boundaries of all `Bij`
//! induce a grid over `Pi` by coordinate compression; each grid cell has a
//! uniform consistency set. Adjacent cells with identical sets are merged
//! into maximal rectangles — the overlap regions.
//!
//! # Lookup guarantee
//!
//! For any point σ in the partition, `lookup(σ)` returns a superset of
//! `{ j : d(σ, Pj) < R }` under every metric, and exactly
//! `{ j : d(σ, Pj) ≤ R }` under [`Metric::Chebyshev`] except on the
//! measure-zero cell boundaries (where the half-open lookup may assign σ
//! to the cell on its upper-right side). Over-approximation only ever
//! sends an update to extra servers — never drops a required recipient —
//! which is the safe direction for consistency.

use crate::{Metric, PartitionMap, Point, Rect, ServerId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A maximal rectangle of points sharing one non-empty consistency set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapRegion {
    /// The region's extent (a sub-rectangle of the owner's partition).
    pub rect: Rect,
    /// The servers that must be informed of any update inside `rect`,
    /// sorted by id. Never empty.
    pub set: Vec<ServerId>,
}

/// Per-server lookup table mapping points of one partition to consistency
/// sets in O(1) (two short binary searches over grid breaks).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapTable {
    server: ServerId,
    rect: Rect,
    /// Grid breaks including both partition edges; `xs.len() == nx + 1`.
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// Row-major `nx * ny` indices into `sets`.
    cells: Vec<u32>,
    /// Interned consistency sets; `sets[0]` is always the empty set.
    sets: Vec<Vec<ServerId>>,
    regions: Vec<OverlapRegion>,
}

impl OverlapTable {
    /// Builds the table for `server` owning `rect`, against the other
    /// partitions in `others`.
    pub fn build(
        server: ServerId,
        rect: Rect,
        others: &[(ServerId, Rect)],
        radius: f64,
        _metric: Metric,
    ) -> OverlapTable {
        // Bij boxes: parts of this partition within R of each peer.
        let mut boxes: Vec<(ServerId, Rect)> = Vec::new();
        for (j, pj) in others {
            if *j == server {
                continue;
            }
            if let Some(b) = rect.intersection(&pj.expand(radius)) {
                boxes.push((*j, b));
            }
        }

        // Coordinate compression over all box edges.
        let mut xs = vec![rect.min().x, rect.max().x];
        let mut ys = vec![rect.min().y, rect.max().y];
        for (_, b) in &boxes {
            xs.push(b.min().x);
            xs.push(b.max().x);
            ys.push(b.min().y);
            ys.push(b.max().y);
        }
        dedup_sorted(&mut xs);
        dedup_sorted(&mut ys);

        let nx = xs.len() - 1;
        let ny = ys.len() - 1;
        let mut sets: Vec<Vec<ServerId>> = vec![Vec::new()];
        let mut interned: BTreeMap<Vec<ServerId>, u32> = BTreeMap::new();
        interned.insert(Vec::new(), 0);
        let mut cells = vec![0u32; nx * ny];

        for cy in 0..ny {
            for cx in 0..nx {
                let center = Point::new((xs[cx] + xs[cx + 1]) / 2.0, (ys[cy] + ys[cy + 1]) / 2.0);
                let mut set: Vec<ServerId> = boxes
                    .iter()
                    .filter(|(_, b)| {
                        b.contains(center) || b.contains_closed(center) && b.is_degenerate()
                    })
                    .map(|(j, _)| *j)
                    .collect();
                set.sort_unstable();
                set.dedup();
                let idx = *interned.entry(set.clone()).or_insert_with(|| {
                    sets.push(set);
                    (sets.len() - 1) as u32
                });
                cells[cy * nx + cx] = idx;
            }
        }

        let regions = merge_regions(&xs, &ys, &cells, &sets, nx, ny);
        OverlapTable {
            server,
            rect,
            xs,
            ys,
            cells,
            sets,
            regions,
        }
    }

    /// The server this table belongs to.
    pub fn server(&self) -> ServerId {
        self.server
    }

    /// The partition the table covers.
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Consistency set for a point of this partition.
    ///
    /// Points outside the partition are clamped onto it first; the game
    /// server is expected to verify packet ranges (§3.2.3) before asking.
    pub fn lookup(&self, p: Point) -> &[ServerId] {
        let p = self.rect.clamp(p);
        let cx = cell_index(&self.xs, p.x);
        let cy = cell_index(&self.ys, p.y);
        let nx = self.xs.len() - 1;
        let idx = self.cells[cy * nx + cx] as usize;
        &self.sets[idx]
    }

    /// The merged overlap regions (non-empty consistency sets only).
    pub fn regions(&self) -> &[OverlapRegion] {
        &self.regions
    }

    /// Total area of the partition covered by overlap regions.
    ///
    /// §4.2: "the amount of traffic sent between Matrix servers corresponded
    /// directly to the size of the overlap regions" — this is the size in
    /// question.
    pub fn overlap_area(&self) -> f64 {
        self.regions.iter().map(|r| r.rect.area()).sum()
    }

    /// Fraction of the partition's area that lies in overlap regions.
    pub fn overlap_fraction(&self) -> f64 {
        let a = self.rect.area();
        if a == 0.0 {
            0.0
        } else {
            self.overlap_area() / a
        }
    }

    /// Number of grid cells backing the table (memory metric).
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Number of distinct consistency sets, including the empty one.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }
}

/// All servers' overlap tables for one partition map — what the Matrix
/// Coordinator recomputes and redistributes after every split/reclaim.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverlapMap {
    radius: f64,
    metric: Metric,
    tables: BTreeMap<ServerId, OverlapTable>,
}

/// Builds overlap tables for every partition in `map` (what the MC does on
/// registration and after each split/reclaim, §3.2.4).
pub fn build_overlap(map: &PartitionMap, radius: f64, metric: Metric) -> OverlapMap {
    let parts: Vec<(ServerId, Rect)> = map.iter().collect();
    let tables = parts
        .iter()
        .map(|(s, r)| (*s, OverlapTable::build(*s, *r, &parts, radius, metric)))
        .collect();
    OverlapMap {
        radius,
        metric,
        tables,
    }
}

impl OverlapMap {
    /// The radius of visibility the tables were built for.
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// The distance metric the tables were built for.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The table for one server.
    pub fn table_for(&self, server: ServerId) -> Option<&OverlapTable> {
        self.tables.get(&server)
    }

    /// Iterates over all `(server, table)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, &OverlapTable)> {
        self.tables.iter().map(|(s, t)| (*s, t))
    }

    /// Number of tables (= number of live servers).
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the map holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of overlap regions across all servers.
    pub fn total_regions(&self) -> usize {
        self.tables.values().map(|t| t.regions().len()).sum()
    }

    /// World-wide area covered by overlap regions.
    pub fn total_overlap_area(&self) -> f64 {
        self.tables.values().map(|t| t.overlap_area()).sum()
    }
}

/// Largest `k` with `breaks[k] <= v`, clamped to a valid cell index.
fn cell_index(breaks: &[f64], v: f64) -> usize {
    debug_assert!(breaks.len() >= 2);
    let n_cells = breaks.len() - 1;
    // Count interior breaks <= v; that is exactly the half-open cell index.
    let k = breaks[1..breaks.len() - 1].partition_point(|&b| b <= v);
    k.min(n_cells - 1)
}

fn dedup_sorted(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("grid breaks must not be NaN"));
    v.dedup();
}

/// Greedy maximal-rectangle merge: horizontal runs per row, then vertical
/// merging of runs with identical x-span and set. Only non-empty sets
/// produce regions.
fn merge_regions(
    xs: &[f64],
    ys: &[f64],
    cells: &[u32],
    sets: &[Vec<ServerId>],
    nx: usize,
    ny: usize,
) -> Vec<OverlapRegion> {
    #[derive(Clone, PartialEq)]
    struct Run {
        cx0: usize,
        cx1: usize, // exclusive
        set: u32,
    }
    // Horizontal runs per row.
    let mut rows: Vec<Vec<Run>> = Vec::with_capacity(ny);
    for cy in 0..ny {
        let mut row = Vec::new();
        let mut cx = 0;
        while cx < nx {
            let set = cells[cy * nx + cx];
            let start = cx;
            while cx < nx && cells[cy * nx + cx] == set {
                cx += 1;
            }
            if set != 0 {
                row.push(Run {
                    cx0: start,
                    cx1: cx,
                    set,
                });
            }
        }
        rows.push(row);
    }
    // Vertical merging.
    let mut regions = Vec::new();
    let mut open: Vec<(Run, usize)> = Vec::new(); // (run, start row)
    for cy in 0..=ny {
        let empty = Vec::new();
        let row = if cy < ny { &rows[cy] } else { &empty };
        let mut next_open: Vec<(Run, usize)> = Vec::new();
        for run in row {
            if let Some(pos) = open.iter().position(|(r, _)| r == run) {
                let (r, y0) = open.remove(pos);
                next_open.push((r, y0));
            } else {
                next_open.push((run.clone(), cy));
            }
        }
        // Anything left open did not continue into this row: emit it.
        for (r, y0) in open.drain(..) {
            regions.push(OverlapRegion {
                rect: Rect::from_coords(xs[r.cx0], ys[y0], xs[r.cx1], ys[cy]),
                set: sets[r.set as usize].clone(),
            });
        }
        open = next_open;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{consistency_set, SplitStrategy};

    fn three_way() -> PartitionMap {
        // S2 | S3 / S1 layout over [0,300]²: S2 left half, S1 right-bottom,
        // S3 right-top.
        let world = Rect::from_coords(0.0, 0.0, 300.0, 300.0);
        let mut map = PartitionMap::new(world, ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        map.split(ServerId(1), ServerId(3), &SplitStrategy::LongestAxis, &[])
            .unwrap();
        map
    }

    #[test]
    fn interior_lookup_is_empty() {
        let map = three_way();
        let overlap = build_overlap(&map, 20.0, Metric::Euclidean);
        let t = overlap.table_for(ServerId(2)).unwrap();
        assert!(t.lookup(Point::new(75.0, 150.0)).is_empty());
    }

    #[test]
    fn boundary_lookup_contains_neighbour() {
        let map = three_way();
        let overlap = build_overlap(&map, 20.0, Metric::Euclidean);
        let t = overlap.table_for(ServerId(2)).unwrap();
        // Near x=150 boundary with S3's bottom-right quadrant.
        let set = t.lookup(Point::new(140.0, 50.0));
        assert!(set.contains(&ServerId(3)), "{set:?}");
    }

    #[test]
    fn corner_lookup_contains_both_neighbours() {
        let map = three_way();
        let overlap = build_overlap(&map, 20.0, Metric::Euclidean);
        let t = overlap.table_for(ServerId(2)).unwrap();
        // Near (150, 150): within 20 of both S1 (bottom) and S3 (top).
        let set = t.lookup(Point::new(140.0, 150.0));
        assert_eq!(set, &[ServerId(1), ServerId(3)]);
    }

    #[test]
    fn single_server_has_no_regions() {
        let world = Rect::from_coords(0.0, 0.0, 100.0, 100.0);
        let map = PartitionMap::new(world, ServerId(7));
        let overlap = build_overlap(&map, 30.0, Metric::Euclidean);
        let t = overlap.table_for(ServerId(7)).unwrap();
        assert!(t.regions().is_empty());
        assert_eq!(t.overlap_area(), 0.0);
        assert!(t.lookup(Point::new(50.0, 50.0)).is_empty());
    }

    #[test]
    fn lookup_superset_of_strict_consistency_set() {
        // The conservativeness guarantee, deterministically probed on a
        // grid (the proptest in tests/ probes random layouts).
        let map = three_way();
        for metric in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            let overlap = build_overlap(&map, 25.0, metric);
            for (server, rect) in map.iter() {
                let t = overlap.table_for(server).unwrap();
                for gx in 0..20 {
                    for gy in 0..20 {
                        let p = Point::new(
                            rect.min().x + rect.width() * (gx as f64 + 0.5) / 20.0,
                            rect.min().y + rect.height() * (gy as f64 + 0.5) / 20.0,
                        );
                        let exact_strict: Vec<ServerId> = map
                            .iter()
                            .filter(|(s, r)| *s != server && r.distance_to(p, metric) < 25.0)
                            .map(|(s, _)| s)
                            .collect();
                        let looked = t.lookup(p);
                        for j in &exact_strict {
                            assert!(looked.contains(j), "{metric:?} {server} {p} missing {j}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn chebyshev_lookup_is_exact_off_boundaries() {
        let map = three_way();
        let overlap = build_overlap(&map, 25.0, Metric::Chebyshev);
        for (server, rect) in map.iter() {
            let t = overlap.table_for(server).unwrap();
            for gx in 0..33 {
                for gy in 0..33 {
                    let p = Point::new(
                        rect.min().x + rect.width() * (gx as f64 + 0.137) / 33.0,
                        rect.min().y + rect.height() * (gy as f64 + 0.411) / 33.0,
                    );
                    let exact = consistency_set(&map, p, server, 25.0, Metric::Chebyshev);
                    assert_eq!(t.lookup(p), exact.as_slice(), "{server} at {p}");
                }
            }
        }
    }

    #[test]
    fn regions_partition_reported_area() {
        let map = three_way();
        let overlap = build_overlap(&map, 25.0, Metric::Chebyshev);
        let t = overlap.table_for(ServerId(2)).unwrap();
        // S2 is [0,150]x[0,300]; its overlap band is x in [125,150]
        // (25 from both quadrants) => area 25 * 300.
        assert!(
            (t.overlap_area() - 25.0 * 300.0).abs() < 1e-6,
            "{}",
            t.overlap_area()
        );
    }

    #[test]
    fn regions_do_not_overlap_each_other() {
        let map = three_way();
        let overlap = build_overlap(&map, 40.0, Metric::Euclidean);
        for (_, t) in overlap.iter() {
            let regs = t.regions();
            for i in 0..regs.len() {
                for j in (i + 1)..regs.len() {
                    assert!(
                        !regs[i].rect.intersects(&regs[j].rect),
                        "regions overlap: {:?} vs {:?}",
                        regs[i],
                        regs[j]
                    );
                }
            }
        }
    }

    #[test]
    fn lookup_agrees_with_region_membership() {
        let map = three_way();
        let overlap = build_overlap(&map, 30.0, Metric::Euclidean);
        for (_, t) in overlap.iter() {
            for reg in t.regions() {
                let c = reg.rect.center();
                assert_eq!(t.lookup(c), reg.set.as_slice());
            }
        }
    }

    #[test]
    fn radius_growth_grows_overlap_area() {
        let map = three_way();
        let small = build_overlap(&map, 10.0, Metric::Euclidean);
        let large = build_overlap(&map, 50.0, Metric::Euclidean);
        assert!(large.total_overlap_area() > small.total_overlap_area());
    }

    #[test]
    fn out_of_partition_lookup_clamps() {
        let map = three_way();
        let overlap = build_overlap(&map, 20.0, Metric::Euclidean);
        let t = overlap.table_for(ServerId(2)).unwrap();
        // Way outside S2 to the right: clamped to the x=150 edge, which is
        // in the overlap band next to S3's bottom-right quadrant.
        let set = t.lookup(Point::new(9999.0, 50.0));
        assert!(set.contains(&ServerId(3)));
    }

    #[test]
    fn huge_radius_covers_whole_partition() {
        let map = three_way();
        let overlap = build_overlap(&map, 1000.0, Metric::Euclidean);
        let t = overlap.table_for(ServerId(1)).unwrap();
        assert!((t.overlap_fraction() - 1.0).abs() < 1e-9);
        let set = t.lookup(t.rect().center());
        assert_eq!(set, &[ServerId(2), ServerId(3)]);
    }

    #[test]
    fn table_counts_are_bounded() {
        let map = three_way();
        let overlap = build_overlap(&map, 20.0, Metric::Euclidean);
        for (_, t) in overlap.iter() {
            assert!(
                t.cell_count() <= 25,
                "tiny layouts stay tiny: {}",
                t.cell_count()
            );
            assert!(t.set_count() <= 5);
        }
    }
}
