//! Map-splitting strategies.
//!
//! The paper uses "a simple 'split-to-left' splitting technique where each
//! map is split into two equal pieces with the left piece handed off to the
//! new server" (§3.2.3), and notes in §5 that smarter partitioning
//! algorithms (inter-server-communication-minimising, locality-preserving)
//! are complementary. This module implements the paper's strategy plus two
//! such alternatives so the ablation experiment (DESIGN.md A1) can compare
//! them.

use crate::{Axis, Point, Rect};
use serde::{Deserialize, Serialize};

/// Policy deciding where an overloaded partition is cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SplitStrategy {
    /// The paper's default: halve the partition and hand the *left* (lower-X)
    /// half to the new server. Vertical cuts only, matching the paper's
    /// one-dimensional "left piece" description.
    #[default]
    SplitToLeft,
    /// Halve along whichever axis is currently longest, keeping partitions
    /// close to square. The lower half goes to the new server.
    LongestAxis,
    /// Cut along the longest axis at the *median* client position, so each
    /// side inherits half the load. Falls back to halving when no client
    /// positions are known. This is the locality/load-aware family cited in
    /// §5 [Chen et al. 2005, Lui & Chan 2002].
    LoadAwareMedian,
}

impl SplitStrategy {
    /// Computes the cut for `rect`, returning `(given, kept)`:
    /// `given` is the piece handed to the new server, `kept` stays with the
    /// overloaded one.
    ///
    /// `clients` are the positions currently managed by the overloaded
    /// server; only [`SplitStrategy::LoadAwareMedian`] uses them.
    ///
    /// Returns `None` when the rectangle cannot be cut (degenerate, or the
    /// median coincides with a boundary and no valid cut exists).
    pub fn split(&self, rect: &Rect, clients: &[Point]) -> Option<(Rect, Rect)> {
        match self {
            SplitStrategy::SplitToLeft => {
                let (low, high) = rect.halve(Axis::X)?;
                Some((low, high))
            }
            SplitStrategy::LongestAxis => {
                let (low, high) = rect.halve(rect.longest_axis())?;
                Some((low, high))
            }
            SplitStrategy::LoadAwareMedian => {
                let axis = rect.longest_axis();
                match median_cut(rect, clients, axis) {
                    Some(cut) => rect.split_at(axis, cut),
                    None => {
                        let (low, high) = rect.halve(axis)?;
                        Some((low, high))
                    }
                }
            }
        }
    }
}

impl std::fmt::Display for SplitStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            SplitStrategy::SplitToLeft => "split-to-left",
            SplitStrategy::LongestAxis => "longest-axis",
            SplitStrategy::LoadAwareMedian => "load-aware-median",
        };
        f.write_str(name)
    }
}

/// Median coordinate of the in-rect clients along `axis`, nudged inside the
/// open interval so the cut is valid. `None` when there are no usable
/// clients or the median collapses onto a boundary.
fn median_cut(rect: &Rect, clients: &[Point], axis: Axis) -> Option<f64> {
    let mut coords: Vec<f64> = clients
        .iter()
        .filter(|p| rect.contains(**p))
        .map(|p| match axis {
            Axis::X => p.x,
            Axis::Y => p.y,
        })
        .collect();
    if coords.is_empty() {
        return None;
    }
    coords.sort_by(|a, b| {
        a.partial_cmp(b)
            .expect("client coordinates must not be NaN")
    });
    let median = coords[coords.len() / 2];
    let (lo, hi) = match axis {
        Axis::X => (rect.min().x, rect.max().x),
        Axis::Y => (rect.min().y, rect.max().y),
    };
    // A cut exactly on the boundary is invalid; so is one so close to it
    // that a partition of near-zero width would result.
    let eps = (hi - lo) * 1e-6;
    if median <= lo + eps || median >= hi - eps {
        None
    } else {
        Some(median)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 100.0, 50.0)
    }

    #[test]
    fn split_to_left_halves_on_x() {
        let (given, kept) = SplitStrategy::SplitToLeft.split(&world(), &[]).unwrap();
        assert_eq!(given, Rect::from_coords(0.0, 0.0, 50.0, 50.0));
        assert_eq!(kept, Rect::from_coords(50.0, 0.0, 100.0, 50.0));
    }

    #[test]
    fn longest_axis_picks_y_for_tall_rects() {
        let tall = Rect::from_coords(0.0, 0.0, 10.0, 100.0);
        let (given, kept) = SplitStrategy::LongestAxis.split(&tall, &[]).unwrap();
        assert_eq!(given, Rect::from_coords(0.0, 0.0, 10.0, 50.0));
        assert_eq!(kept, Rect::from_coords(0.0, 50.0, 10.0, 100.0));
    }

    #[test]
    fn median_splits_load_evenly() {
        let clients: Vec<Point> = (0..10)
            .map(|i| Point::new(if i < 8 { 10.0 + i as f64 } else { 90.0 }, 25.0))
            .collect();
        let (given, kept) = SplitStrategy::LoadAwareMedian
            .split(&world(), &clients)
            .unwrap();
        // The median of {10..17, 90, 90} is 15: most clients land left.
        let left_count = clients.iter().filter(|p| given.contains(**p)).count();
        let right_count = clients.iter().filter(|p| kept.contains(**p)).count();
        assert_eq!(left_count + right_count, clients.len());
        assert!(
            (4..=6).contains(&left_count),
            "median cut should balance: {left_count}"
        );
    }

    #[test]
    fn median_without_clients_falls_back_to_halving() {
        let (given, kept) = SplitStrategy::LoadAwareMedian.split(&world(), &[]).unwrap();
        assert_eq!(given.area(), kept.area());
    }

    #[test]
    fn median_on_boundary_falls_back() {
        // All clients at the left edge: the median would produce an empty
        // partition, so we halve instead.
        let clients = vec![Point::new(0.0, 1.0); 5];
        let (given, kept) = SplitStrategy::LoadAwareMedian
            .split(&world(), &clients)
            .unwrap();
        assert!(!given.is_degenerate());
        assert!(!kept.is_degenerate());
    }

    #[test]
    fn split_pieces_tile_the_original() {
        for strategy in [
            SplitStrategy::SplitToLeft,
            SplitStrategy::LongestAxis,
            SplitStrategy::LoadAwareMedian,
        ] {
            let (given, kept) = strategy.split(&world(), &[]).unwrap();
            assert_eq!(given.merges_with(&kept), Some(world()), "{strategy}");
        }
    }

    #[test]
    fn degenerate_rect_cannot_split() {
        let line = Rect::from_coords(0.0, 0.0, 0.0, 10.0);
        assert!(SplitStrategy::SplitToLeft.split(&line, &[]).is_none());
    }
}
