//! Axis-aligned rectangles: the shape of Matrix map partitions.

use crate::{Metric, Point};
use serde::{Deserialize, Serialize};

/// One of the two world axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Axis {
    /// The horizontal axis.
    X,
    /// The vertical axis.
    Y,
}

impl Axis {
    /// The other axis.
    pub fn perpendicular(self) -> Axis {
        match self {
            Axis::X => Axis::Y,
            Axis::Y => Axis::X,
        }
    }
}

/// An axis-aligned rectangle, `min` inclusive and `max` exclusive on the
/// boundary shared with a neighbouring partition.
///
/// Matrix partitions the world into axis-aligned rectangles because the
/// coordinator can then compute overlap regions "using well known
/// axis-aligned bounding box computation algorithms" (§3.2.4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from two corners.
    ///
    /// # Panics
    ///
    /// Panics if `min` is not component-wise `<= max`; use
    /// [`Rect::try_new`] for fallible construction.
    pub fn new(min: Point, max: Point) -> Rect {
        Rect::try_new(min, max).expect("rect min must be <= max on both axes")
    }

    /// Fallible constructor: returns `None` unless `min <= max` on both axes.
    pub fn try_new(min: Point, max: Point) -> Option<Rect> {
        if min.x <= max.x && min.y <= max.y {
            Some(Rect { min, max })
        } else {
            None
        }
    }

    /// Convenience constructor from raw coordinates.
    pub fn from_coords(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    /// Lower-left corner.
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    pub fn max(&self) -> Point {
        self.max
    }

    /// Width along the X axis.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height along the Y axis.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Extent along the given axis.
    pub fn extent(&self, axis: Axis) -> f64 {
        match axis {
            Axis::X => self.width(),
            Axis::Y => self.height(),
        }
    }

    /// Surface area.
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// The axis along which the rectangle is longest (ties go to X).
    pub fn longest_axis(&self) -> Axis {
        if self.width() >= self.height() {
            Axis::X
        } else {
            Axis::Y
        }
    }

    /// Whether the rectangle has zero area.
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0.0 || self.height() == 0.0
    }

    /// Point containment. `min`-side boundaries are inside, `max`-side
    /// boundaries are outside, so that abutting partitions never both claim
    /// a point.
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x < self.max.x && p.y >= self.min.y && p.y < self.max.y
    }

    /// Closed containment: boundaries on all sides count as inside.
    ///
    /// Used for world-coverage checks where the world's own upper boundary
    /// must be accepted.
    pub fn contains_closed(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Clamps a point into the rectangle (onto the closed boundary).
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.min.x, self.max.x),
            p.y.clamp(self.min.y, self.max.y),
        )
    }

    /// Minimum distance from `p` to the closed rectangle under `metric`.
    ///
    /// Zero if `p` is inside. This is the primitive behind Equation 1: a
    /// partition `Pj` intersects the visibility circle of σ iff
    /// `dist(σ, Pj) <= R`.
    pub fn distance_to(&self, p: Point, metric: Metric) -> f64 {
        self.clamp(p).distance_by(p, metric)
    }

    /// Whether two rectangles overlap with positive area.
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x < other.max.x
            && other.min.x < self.max.x
            && self.min.y < other.max.y
            && other.min.y < self.max.y
    }

    /// The overlapping region of two rectangles, if it has positive area.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        let min = Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y));
        let max = Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y));
        let r = Rect::try_new(min, max)?;
        if r.is_degenerate() {
            None
        } else {
            Some(r)
        }
    }

    /// Expands the rectangle by `r` on every side (an AABB dilation).
    ///
    /// This is the coordinator's bounding-box approximation of "all points
    /// within distance `r` of the rectangle": exact under
    /// [`Metric::Chebyshev`], conservative (a superset) under the other
    /// metrics.
    pub fn expand(&self, r: f64) -> Rect {
        Rect::new(self.min.offset(-r, -r), self.max.offset(r, r))
    }

    /// Splits along `axis` at coordinate `at`, returning `(low, high)`.
    ///
    /// Returns `None` if `at` does not cut strictly inside the rectangle.
    pub fn split_at(&self, axis: Axis, at: f64) -> Option<(Rect, Rect)> {
        match axis {
            Axis::X => {
                if at <= self.min.x || at >= self.max.x {
                    return None;
                }
                Some((
                    Rect::new(self.min, Point::new(at, self.max.y)),
                    Rect::new(Point::new(at, self.min.y), self.max),
                ))
            }
            Axis::Y => {
                if at <= self.min.y || at >= self.max.y {
                    return None;
                }
                Some((
                    Rect::new(self.min, Point::new(self.max.x, at)),
                    Rect::new(Point::new(self.min.x, at), self.max),
                ))
            }
        }
    }

    /// Splits into two equal halves along the given axis.
    pub fn halve(&self, axis: Axis) -> Option<(Rect, Rect)> {
        let mid = match axis {
            Axis::X => (self.min.x + self.max.x) / 2.0,
            Axis::Y => (self.min.y + self.max.y) / 2.0,
        };
        self.split_at(axis, mid)
    }

    /// The smallest rectangle containing both inputs.
    pub fn union(&self, other: &Rect) -> Rect {
        Rect::new(
            Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        )
    }

    /// Whether `other` lies entirely within `self` (closed comparison).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// True when the two rectangles tile exactly into one larger rectangle,
    /// i.e. they share a full edge. This is the precondition for a reclaim
    /// merge.
    pub fn merges_with(&self, other: &Rect) -> Option<Rect> {
        // Share the full vertical edge?
        if self.min.y == other.min.y
            && self.max.y == other.max.y
            && (self.max.x == other.min.x || other.max.x == self.min.x)
        {
            return Some(self.union(other));
        }
        // Share the full horizontal edge?
        if self.min.x == other.min.x
            && self.max.x == other.max.x
            && (self.max.y == other.min.y || other.max.y == self.min.y)
        {
            return Some(self.union(other));
        }
        None
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{} .. {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::from_coords(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn try_new_rejects_inverted() {
        assert!(Rect::try_new(Point::new(1.0, 0.0), Point::new(0.0, 1.0)).is_none());
        assert!(Rect::try_new(Point::new(0.0, 1.0), Point::new(1.0, 0.0)).is_none());
    }

    #[test]
    fn half_open_containment() {
        let r = unit();
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(!r.contains(Point::new(10.0, 5.0)));
        assert!(!r.contains(Point::new(5.0, 10.0)));
        assert!(r.contains_closed(Point::new(10.0, 10.0)));
    }

    #[test]
    fn distance_to_interior_is_zero() {
        let r = unit();
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            assert_eq!(r.distance_to(Point::new(5.0, 5.0), m), 0.0);
        }
    }

    #[test]
    fn distance_to_outside_point() {
        let r = unit();
        let p = Point::new(13.0, 14.0);
        assert_eq!(r.distance_to(p, Metric::Euclidean), 5.0);
        assert_eq!(r.distance_to(p, Metric::Manhattan), 7.0);
        assert_eq!(r.distance_to(p, Metric::Chebyshev), 4.0);
    }

    #[test]
    fn intersection_of_disjoint_is_none() {
        let a = unit();
        let b = Rect::from_coords(20.0, 20.0, 30.0, 30.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn touching_rects_do_not_intersect() {
        let a = unit();
        let b = Rect::from_coords(10.0, 0.0, 20.0, 10.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
    }

    #[test]
    fn intersection_is_commutative() {
        let a = Rect::from_coords(0.0, 0.0, 6.0, 6.0);
        let b = Rect::from_coords(4.0, 2.0, 9.0, 9.0);
        assert_eq!(a.intersection(&b), b.intersection(&a));
        assert_eq!(
            a.intersection(&b).unwrap(),
            Rect::from_coords(4.0, 2.0, 6.0, 6.0)
        );
    }

    #[test]
    fn expand_grows_every_side() {
        let r = unit().expand(2.0);
        assert_eq!(r, Rect::from_coords(-2.0, -2.0, 12.0, 12.0));
    }

    #[test]
    fn split_at_rejects_out_of_range() {
        let r = unit();
        assert!(r.split_at(Axis::X, 0.0).is_none());
        assert!(r.split_at(Axis::X, 10.0).is_none());
        assert!(r.split_at(Axis::X, -1.0).is_none());
    }

    #[test]
    fn halve_produces_equal_area() {
        let r = unit();
        let (lo, hi) = r.halve(Axis::Y).unwrap();
        assert_eq!(lo.area(), hi.area());
        assert_eq!(lo.union(&hi), r);
    }

    #[test]
    fn merges_with_detects_shared_edges() {
        let a = Rect::from_coords(0.0, 0.0, 5.0, 10.0);
        let b = Rect::from_coords(5.0, 0.0, 10.0, 10.0);
        assert_eq!(a.merges_with(&b), Some(unit()));
        assert_eq!(b.merges_with(&a), Some(unit()));
        let c = Rect::from_coords(5.0, 0.0, 10.0, 9.0);
        assert_eq!(a.merges_with(&c), None);
    }

    #[test]
    fn longest_axis_prefers_x_on_tie() {
        assert_eq!(unit().longest_axis(), Axis::X);
        assert_eq!(
            Rect::from_coords(0.0, 0.0, 1.0, 5.0).longest_axis(),
            Axis::Y
        );
    }

    #[test]
    fn clamp_projects_onto_boundary() {
        let r = unit();
        assert_eq!(r.clamp(Point::new(-5.0, 5.0)), Point::new(0.0, 5.0));
        assert_eq!(r.clamp(Point::new(15.0, 25.0)), Point::new(10.0, 10.0));
    }
}
