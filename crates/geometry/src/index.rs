//! Uniform-grid spatial index over a partition map.
//!
//! [`crate::PartitionMap::owner_of`] scans all partitions (O(N)); fine on
//! the forwarding path, which never calls it, but the coordinator's
//! directory and the asymptotic-scale experiments (10k servers) want
//! constant-time point→owner resolution. [`PartitionIndex`] buckets the
//! partitions into a uniform grid: each cell lists the partitions touching
//! it (almost always exactly one), so a lookup is one cell computation
//! plus a couple of containment tests.

use crate::{PartitionMap, Point, Rect, ServerId};

/// Grid-bucketed point→owner index, built from a [`PartitionMap`]
/// snapshot. Rebuild after topology changes (the coordinator already
/// recomputes overlap tables at exactly those moments).
#[derive(Debug, Clone)]
pub struct PartitionIndex {
    world: Rect,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<(ServerId, Rect)>>,
}

impl PartitionIndex {
    /// Builds an index with roughly `resolution²` cells (clamped to at
    /// least one per axis).
    pub fn build(map: &PartitionMap, resolution: usize) -> PartitionIndex {
        let world = map.world();
        let nx = resolution.max(1);
        let ny = resolution.max(1);
        let mut cells = vec![Vec::new(); nx * ny];
        let cw = world.width() / nx as f64;
        let ch = world.height() / ny as f64;
        for (server, rect) in map.iter() {
            // Cells the rect touches (inclusive on the high edge so
            // boundary-sitting partitions land in the right buckets).
            let x0 = (((rect.min().x - world.min().x) / cw).floor() as usize).min(nx - 1);
            let x1 = (((rect.max().x - world.min().x) / cw).ceil() as usize).clamp(1, nx);
            let y0 = (((rect.min().y - world.min().y) / ch).floor() as usize).min(ny - 1);
            let y1 = (((rect.max().y - world.min().y) / ch).ceil() as usize).clamp(1, ny);
            for cy in y0..y1 {
                for cx in x0..x1 {
                    cells[cy * nx + cx].push((server, rect));
                }
            }
        }
        PartitionIndex {
            world,
            nx,
            ny,
            cells,
        }
    }

    /// A sensible default resolution: about one cell per partition.
    pub fn build_auto(map: &PartitionMap) -> PartitionIndex {
        let resolution = (map.len() as f64).sqrt().ceil() as usize;
        PartitionIndex::build(map, resolution.max(4))
    }

    /// The server owning `p`, or `None` outside the world.
    pub fn owner_of(&self, p: Point) -> Option<ServerId> {
        if !self.world.contains_closed(p) {
            return None;
        }
        let cw = self.world.width() / self.nx as f64;
        let ch = self.world.height() / self.ny as f64;
        let cx = (((p.x - self.world.min().x) / cw) as usize).min(self.nx - 1);
        let cy = (((p.y - self.world.min().y) / ch) as usize).min(self.ny - 1);
        let bucket = &self.cells[cy * self.nx + cx];
        bucket
            .iter()
            .find(|(_, r)| r.contains(p))
            .or_else(|| bucket.iter().find(|(_, r)| r.contains_closed(p)))
            .map(|(s, _)| *s)
    }

    /// Number of grid cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Mean candidates per non-empty cell (the lookup's constant factor).
    pub fn mean_bucket_len(&self) -> f64 {
        let non_empty: Vec<usize> = self
            .cells
            .iter()
            .map(|c| c.len())
            .filter(|l| *l > 0)
            .collect();
        if non_empty.is_empty() {
            return 0.0;
        }
        non_empty.iter().sum::<usize>() as f64 / non_empty.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitStrategy;

    fn many_way(n: u32) -> PartitionMap {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let servers: Vec<ServerId> = (1..=n).map(ServerId).collect();
        PartitionMap::static_grid(world, &servers).unwrap()
    }

    #[test]
    fn agrees_with_linear_scan_on_grid() {
        let map = many_way(16);
        let index = PartitionIndex::build_auto(&map);
        for i in 0..50 {
            for j in 0..50 {
                let p = Point::new(20.0 * i as f64 + 0.5, 20.0 * j as f64 + 0.5);
                assert_eq!(index.owner_of(p), map.owner_of(p), "at {p}");
            }
        }
    }

    #[test]
    fn agrees_after_irregular_splits() {
        let world = Rect::from_coords(0.0, 0.0, 1000.0, 1000.0);
        let mut map = PartitionMap::new(world, ServerId(1));
        for i in 2..=9u32 {
            let servers = map.servers();
            let victim = servers[(i as usize * 7) % servers.len()];
            let strategy = if i % 2 == 0 {
                SplitStrategy::SplitToLeft
            } else {
                SplitStrategy::LongestAxis
            };
            map.split(victim, ServerId(i), &strategy, &[]).unwrap();
        }
        let index = PartitionIndex::build(&map, 13); // deliberately odd
        for i in 0..40 {
            for j in 0..40 {
                let p = Point::new(25.0 * i as f64 + 3.3, 25.0 * j as f64 + 7.7);
                assert_eq!(index.owner_of(p), map.owner_of(p), "at {p}");
            }
        }
    }

    #[test]
    fn world_boundary_points_resolve() {
        let map = many_way(4);
        let index = PartitionIndex::build_auto(&map);
        assert!(index.owner_of(Point::new(1000.0, 1000.0)).is_some());
        assert!(index.owner_of(Point::new(0.0, 0.0)).is_some());
        assert!(index.owner_of(Point::new(1000.0, 0.0)).is_some());
    }

    #[test]
    fn outside_world_is_none() {
        let map = many_way(4);
        let index = PartitionIndex::build_auto(&map);
        assert_eq!(index.owner_of(Point::new(-1.0, 500.0)), None);
        assert_eq!(index.owner_of(Point::new(500.0, 1001.0)), None);
    }

    #[test]
    fn buckets_stay_small() {
        let map = many_way(64);
        let index = PartitionIndex::build_auto(&map);
        assert!(
            index.mean_bucket_len() <= 4.0,
            "buckets should hold few candidates: {}",
            index.mean_bucket_len()
        );
    }

    #[test]
    fn single_partition_world() {
        let world = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
        let map = PartitionMap::new(world, ServerId(7));
        let index = PartitionIndex::build(&map, 1);
        assert_eq!(index.owner_of(Point::new(5.0, 5.0)), Some(ServerId(7)));
        assert_eq!(index.cell_count(), 1);
    }
}
