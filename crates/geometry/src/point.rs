//! Points in the 2-D game world and game-specific distance metrics.

use serde::{Deserialize, Serialize};

/// A position in the game world's 2-D coordinate space.
///
/// The paper observes that "all games have some notion of geometric space
/// that allows distances between game objects to be computed" (§3.1). Matrix
/// only ever sees these coordinates as spatial tags on game packets.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point from its coordinates.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Component-wise addition.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point::new(self.x + dx, self.y + dy)
    }

    /// Linear interpolation from `self` towards `other`.
    ///
    /// `t = 0` returns `self`, `t = 1` returns `other`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// Euclidean distance to `other`.
    pub fn distance(self, other: Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }

    /// Distance to `other` under the given metric.
    pub fn distance_by(self, other: Point, metric: Metric) -> f64 {
        let dx = (self.x - other.x).abs();
        let dy = (self.y - other.y).abs();
        match metric {
            Metric::Euclidean => (dx * dx + dy * dy).sqrt(),
            Metric::Manhattan => dx + dy,
            Metric::Chebyshev => dx.max(dy),
        }
    }

    /// Moves `self` a given distance towards `target` (Euclidean).
    ///
    /// If `target` is closer than `step`, returns `target` — useful for
    /// waypoint movement models that must not overshoot.
    pub fn step_towards(self, target: Point, step: f64) -> Point {
        let d = self.distance(target);
        if d <= step || d == 0.0 {
            target
        } else {
            self.lerp(target, step / d)
        }
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

/// Game-specific distance metric used for visibility computations.
///
/// Matrix lets each game define its own notion of distance (§3.1). The
/// choice affects which peers fall inside a point's radius of visibility
/// and therefore the shape of the overlap regions:
///
/// * [`Metric::Euclidean`] — circular visibility. Overlap regions built from
///   axis-aligned bounding boxes *over-approximate* the true consistency
///   set, exactly like the paper's coordinator which uses "well known
///   axis-aligned bounding box computation algorithms". Over-approximation
///   is safe (a few extra deliveries), never lossy.
/// * [`Metric::Chebyshev`] — square visibility (common for tile-based
///   games). AABB overlap regions are *exact*.
/// * [`Metric::Manhattan`] — diamond visibility; AABB regions again
///   over-approximate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Metric {
    /// Straight-line (L2) distance; circular zone of visibility.
    #[default]
    Euclidean,
    /// Taxicab (L1) distance; diamond zone of visibility.
    Manhattan,
    /// Chessboard (L∞) distance; square zone of visibility.
    Chebyshev,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_by(b, Metric::Euclidean), 5.0);
    }

    #[test]
    fn distance_manhattan_and_chebyshev() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, -2.0);
        assert_eq!(a.distance_by(b, Metric::Manhattan), 7.0);
        assert_eq!(a.distance_by(b, Metric::Chebyshev), 4.0);
    }

    #[test]
    fn metrics_agree_on_axis_aligned_segments() {
        let a = Point::new(2.0, 5.0);
        let b = Point::new(9.0, 5.0);
        for m in [Metric::Euclidean, Metric::Manhattan, Metric::Chebyshev] {
            assert_eq!(a.distance_by(b, m), 7.0);
        }
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn step_towards_does_not_overshoot() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        let moved = a.step_towards(b, 10.0);
        assert_eq!(moved, b);
        let part = a.step_towards(b, 2.5);
        assert!((part.distance(a) - 2.5).abs() < 1e-9);
    }

    #[test]
    fn step_towards_zero_distance_is_stable() {
        let a = Point::new(1.0, 1.0);
        assert_eq!(a.step_towards(a, 5.0), a);
    }

    #[test]
    fn display_formats_compactly() {
        assert_eq!(Point::new(1.25, 3.0).to_string(), "(1.2, 3.0)");
    }
}
