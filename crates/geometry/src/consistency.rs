//! Equation 1 of the paper: exact consistency sets.
//!
//! > `C(σ ∈ Pi) = { Sj | j ≠ i ∧ ∃σ' ∈ Pj s.t. d(σ, σ') ≤ R }`
//!
//! The consistency set of a point σ is every *other* server whose partition
//! comes within the radius of visibility `R` of σ. An update at σ must be
//! applied at σ's owner and at every member of `C(σ)`.
//!
//! The functions here are the brute-force ground truth (`O(N)` in the number
//! of servers). The forwarding path never calls them — it uses the
//! precomputed [`crate::OverlapTable`] — but tests verify the table against
//! this definition, and the Matrix Coordinator falls back to it for
//! non-proximal interactions.

use crate::{Metric, PartitionMap, Point, Rect, ServerId};

/// Computes `C(σ)` exactly from a partition map.
///
/// `owner` is σ's own server `Si`, excluded from the set by definition. The
/// result is sorted by server id so callers get deterministic output.
///
/// A partition `Pj` contains a point within distance `R` of σ iff the
/// minimum distance from σ to the (closed) rectangle is `<= R`, so the
/// existential in Equation 1 reduces to one distance test per partition.
pub fn consistency_set(
    map: &PartitionMap,
    origin: Point,
    owner: ServerId,
    radius: f64,
    metric: Metric,
) -> Vec<ServerId> {
    map.iter()
        .filter(|(s, r)| *s != owner && r.distance_to(origin, metric) <= radius)
        .map(|(s, _)| s)
        .collect()
}

/// Like [`consistency_set`] but over a raw `(server, rect)` slice, for
/// callers (the coordinator) that keep their own registry representation.
pub fn consistency_set_from_rects(
    parts: &[(ServerId, Rect)],
    origin: Point,
    owner: ServerId,
    radius: f64,
    metric: Metric,
) -> Vec<ServerId> {
    let mut out: Vec<ServerId> = parts
        .iter()
        .filter(|(s, r)| *s != owner && r.distance_to(origin, metric) <= radius)
        .map(|(s, _)| *s)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SplitStrategy;

    /// World [0,400]², S1 right half [200..400], S2 left half [0..200].
    fn two_way() -> PartitionMap {
        let world = Rect::from_coords(0.0, 0.0, 400.0, 400.0);
        let mut map = PartitionMap::new(world, ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        map
    }

    #[test]
    fn interior_point_has_empty_set() {
        let map = two_way();
        let c = consistency_set(
            &map,
            Point::new(390.0, 200.0),
            ServerId(1),
            50.0,
            Metric::Euclidean,
        );
        assert!(c.is_empty());
    }

    #[test]
    fn periphery_point_sees_neighbour() {
        let map = two_way();
        let c = consistency_set(
            &map,
            Point::new(210.0, 200.0),
            ServerId(1),
            50.0,
            Metric::Euclidean,
        );
        assert_eq!(c, vec![ServerId(2)]);
    }

    #[test]
    fn point_exactly_at_radius_is_included() {
        let map = two_way();
        // S2's rectangle ends at x=200; σ at x=250 with R=50 touches it.
        let c = consistency_set(
            &map,
            Point::new(250.0, 200.0),
            ServerId(1),
            50.0,
            Metric::Euclidean,
        );
        assert_eq!(c, vec![ServerId(2)]);
    }

    #[test]
    fn infinite_radius_reaches_everyone() {
        // §3.1: "if R is infinite, all updates must be globally propagated".
        let mut map = two_way();
        map.split(ServerId(1), ServerId(3), &SplitStrategy::LongestAxis, &[])
            .unwrap();
        let c = consistency_set(
            &map,
            Point::new(390.0, 390.0),
            ServerId(1),
            f64::INFINITY,
            Metric::Euclidean,
        );
        assert_eq!(c, vec![ServerId(2), ServerId(3)]);
    }

    #[test]
    fn zero_radius_only_for_boundary_points() {
        let map = two_way();
        // On the shared edge the distance to the neighbour's closed rect is 0.
        let c = consistency_set(
            &map,
            Point::new(200.0, 10.0),
            ServerId(1),
            0.0,
            Metric::Euclidean,
        );
        assert_eq!(c, vec![ServerId(2)]);
        let c = consistency_set(
            &map,
            Point::new(201.0, 10.0),
            ServerId(1),
            0.0,
            Metric::Euclidean,
        );
        assert!(c.is_empty());
    }

    #[test]
    fn corner_point_sees_diagonal_neighbour_only_within_euclidean_radius() {
        // Four quadrants: S1 owns [200..400]x[0..200] after two splits.
        let world = Rect::from_coords(0.0, 0.0, 400.0, 400.0);
        let mut map = PartitionMap::new(world, ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        // S1 now has right half; split it horizontally.
        map.split(ServerId(1), ServerId(3), &SplitStrategy::LongestAxis, &[])
            .unwrap();
        // And the left half too.
        map.split(ServerId(2), ServerId(4), &SplitStrategy::LongestAxis, &[])
            .unwrap();
        map.validate().unwrap();

        let owner = map.owner_of(Point::new(210.0, 210.0)).unwrap();
        // Point near the four-corner: under Euclidean, the diagonal
        // quadrant is sqrt(10²+10²) ≈ 14.1 away.
        let c = consistency_set(
            &map,
            Point::new(210.0, 210.0),
            owner,
            14.0,
            Metric::Euclidean,
        );
        assert_eq!(c.len(), 2, "diagonal neighbour out of range: {c:?}");
        let c = consistency_set(
            &map,
            Point::new(210.0, 210.0),
            owner,
            15.0,
            Metric::Euclidean,
        );
        assert_eq!(c.len(), 3, "all three quadrants within 15: {c:?}");
    }

    #[test]
    fn chebyshev_reaches_diagonal_at_box_distance() {
        let world = Rect::from_coords(0.0, 0.0, 400.0, 400.0);
        let mut map = PartitionMap::new(world, ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        map.split(ServerId(1), ServerId(3), &SplitStrategy::LongestAxis, &[])
            .unwrap();
        map.split(ServerId(2), ServerId(4), &SplitStrategy::LongestAxis, &[])
            .unwrap();
        let owner = map.owner_of(Point::new(210.0, 210.0)).unwrap();
        let c = consistency_set(
            &map,
            Point::new(210.0, 210.0),
            owner,
            10.0,
            Metric::Chebyshev,
        );
        assert_eq!(c.len(), 3, "L∞ ball of 10 touches all quadrants: {c:?}");
    }

    #[test]
    fn from_rects_matches_map_variant() {
        let map = two_way();
        let rects: Vec<(ServerId, Rect)> = map.iter().collect();
        for x in [10.0, 150.0, 199.0, 201.0, 390.0] {
            let p = Point::new(x, 77.0);
            let owner = map.owner_of(p).unwrap();
            assert_eq!(
                consistency_set(&map, p, owner, 25.0, Metric::Euclidean),
                consistency_set_from_rects(&rects, p, owner, 25.0, Metric::Euclidean),
            );
        }
    }
}
