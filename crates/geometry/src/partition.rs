//! The world partition map: `Z = P1 ∪ ... ∪ PN`, pairwise disjoint.
//!
//! Matrix "partitions the overall space Z of an MMOG into N non-overlapping
//! partitions {P1..PN} and assigns each partition Pi to a distinct server
//! Si" (§3.1). The number of servers and each server's range change
//! dynamically through splits and reclamations; this module maintains that
//! assignment and its invariants.

use crate::{GeometryError, Point, Rect, ServerId, SplitStrategy};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Result of a successful split: which rectangle was handed off and which
/// was kept.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitOutcome {
    /// Rectangle transferred to the new server.
    pub given: Rect,
    /// Rectangle retained by the splitting server.
    pub kept: Rect,
}

/// Assignment of world rectangles to servers.
///
/// Invariants (checked by [`PartitionMap::validate`] and enforced by
/// construction):
///
/// * partitions have pairwise-disjoint interiors;
/// * their union is exactly the world rectangle;
/// * every live server owns exactly one partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionMap {
    world: Rect,
    parts: BTreeMap<ServerId, Rect>,
}

impl PartitionMap {
    /// Creates a map in which `initial` owns the whole world.
    pub fn new(world: Rect, initial: ServerId) -> PartitionMap {
        let mut parts = BTreeMap::new();
        parts.insert(initial, world);
        PartitionMap { world, parts }
    }

    /// Reconstructs a map from explicit `(server, rect)` assignments,
    /// validating the partition invariants.
    ///
    /// Used by the coordinator to mirror splits that peers performed
    /// locally. Returns `None` when the parts overlap, escape the world, or
    /// fail to cover it.
    pub fn from_parts(
        world: Rect,
        parts: impl IntoIterator<Item = (ServerId, Rect)>,
    ) -> Option<PartitionMap> {
        let parts: BTreeMap<ServerId, Rect> = parts.into_iter().collect();
        if parts.is_empty() {
            return None;
        }
        let map = PartitionMap { world, parts };
        map.validate().ok()?;
        Some(map)
    }

    /// The world rectangle `Z`.
    pub fn world(&self) -> Rect {
        self.world
    }

    /// Number of live partitions `N`.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Whether the map has no partitions (never true for a constructed map).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// The partition owned by `server`, if any.
    pub fn range_of(&self, server: ServerId) -> Option<Rect> {
        self.parts.get(&server).copied()
    }

    /// Whether `server` currently owns a partition.
    pub fn contains_server(&self, server: ServerId) -> bool {
        self.parts.contains_key(&server)
    }

    /// Iterates over `(server, rect)` pairs in server-id order.
    pub fn iter(&self) -> impl Iterator<Item = (ServerId, Rect)> + '_ {
        self.parts.iter().map(|(s, r)| (*s, *r))
    }

    /// All live server ids in ascending order.
    pub fn servers(&self) -> Vec<ServerId> {
        self.parts.keys().copied().collect()
    }

    /// The server whose partition contains `p`.
    ///
    /// Containment is half-open, so every interior point has exactly one
    /// owner; points on the world's upper boundary are attributed to the
    /// partition whose closed boundary they lie on.
    pub fn owner_of(&self, p: Point) -> Option<ServerId> {
        self.parts
            .iter()
            .find(|(_, r)| r.contains(p))
            .or_else(|| {
                // Upper world boundary: fall back to closed containment so
                // players standing on the far edge still have an owner.
                self.parts.iter().find(|(_, r)| r.contains_closed(p))
            })
            .map(|(s, _)| *s)
    }

    /// Splits the partition of `owner`, handing one piece to `new_server`.
    ///
    /// `clients` are the positions currently on `owner` (used only by
    /// load-aware strategies).
    ///
    /// # Errors
    ///
    /// * [`GeometryError::UnknownServer`] if `owner` has no partition;
    /// * [`GeometryError::ServerExists`] if `new_server` already owns one;
    /// * [`GeometryError::Unsplittable`] if the rectangle cannot be cut.
    pub fn split(
        &mut self,
        owner: ServerId,
        new_server: ServerId,
        strategy: &SplitStrategy,
        clients: &[Point],
    ) -> Result<SplitOutcome, GeometryError> {
        let rect = self
            .parts
            .get(&owner)
            .copied()
            .ok_or(GeometryError::UnknownServer(owner))?;
        if self.parts.contains_key(&new_server) {
            return Err(GeometryError::ServerExists(new_server));
        }
        let (given, kept) = strategy
            .split(&rect, clients)
            .ok_or(GeometryError::Unsplittable(owner))?;
        self.parts.insert(owner, kept);
        self.parts.insert(new_server, given);
        Ok(SplitOutcome { given, kept })
    }

    /// Merges `child`'s partition back into `parent` (a reclamation).
    ///
    /// # Errors
    ///
    /// * [`GeometryError::UnknownServer`] if either id has no partition;
    /// * [`GeometryError::NotMergeable`] if the two rectangles do not share
    ///   a full edge (their union would not be a rectangle).
    pub fn reclaim(&mut self, parent: ServerId, child: ServerId) -> Result<Rect, GeometryError> {
        let pr = self
            .parts
            .get(&parent)
            .copied()
            .ok_or(GeometryError::UnknownServer(parent))?;
        let cr = self
            .parts
            .get(&child)
            .copied()
            .ok_or(GeometryError::UnknownServer(child))?;
        let merged = pr
            .merges_with(&cr)
            .ok_or(GeometryError::NotMergeable(parent, child))?;
        self.parts.remove(&child);
        self.parts.insert(parent, merged);
        Ok(merged)
    }

    /// Transfers `victim`'s entire partition to `heir` by merging, used for
    /// crash recovery when the failed server's neighbour absorbs its range.
    ///
    /// # Errors
    ///
    /// Same conditions as [`PartitionMap::reclaim`].
    pub fn absorb(&mut self, heir: ServerId, victim: ServerId) -> Result<Rect, GeometryError> {
        self.reclaim(heir, victim)
    }

    /// Servers whose partitions would merge cleanly with `server`'s.
    pub fn mergeable_neighbours(&self, server: ServerId) -> Vec<ServerId> {
        let Some(rect) = self.range_of(server) else {
            return Vec::new();
        };
        self.parts
            .iter()
            .filter(|(s, r)| **s != server && rect.merges_with(r).is_some())
            .map(|(s, _)| *s)
            .collect()
    }

    /// Builds a static K-way partition of `world` by repeated halving of the
    /// widest partition — the paper's *static partitioning* baseline with
    /// equal-area shards assigned up front.
    pub fn static_grid(world: Rect, servers: &[ServerId]) -> Option<PartitionMap> {
        let (&first, rest) = servers.split_first()?;
        let mut map = PartitionMap::new(world, first);
        for &s in rest {
            // Split the currently largest partition for an even spread.
            let (widest, _) = map
                .parts
                .iter()
                .max_by(|a, b| {
                    a.1.area()
                        .partial_cmp(&b.1.area())
                        .expect("partition areas are finite")
                })
                .map(|(s, r)| (*s, *r))?;
            map.split(widest, s, &SplitStrategy::LongestAxis, &[])
                .ok()?;
        }
        Some(map)
    }

    /// Checks all structural invariants, returning a description of the
    /// first violation.
    ///
    /// Intended for tests and debug assertions; operations on this type keep
    /// the invariants by construction.
    pub fn validate(&self) -> Result<(), String> {
        let parts: Vec<(ServerId, Rect)> = self.iter().collect();
        let mut area = 0.0;
        for (i, (si, ri)) in parts.iter().enumerate() {
            if !self.world.contains_rect(ri) {
                return Err(format!("partition of {si} escapes the world"));
            }
            if ri.is_degenerate() {
                return Err(format!("partition of {si} is degenerate"));
            }
            area += ri.area();
            for (sj, rj) in parts.iter().skip(i + 1) {
                if ri.intersects(rj) {
                    return Err(format!("partitions of {si} and {sj} overlap"));
                }
            }
        }
        let world_area = self.world.area();
        if (area - world_area).abs() > world_area * 1e-9 {
            return Err(format!("partitions cover {area}, world has {world_area}"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::from_coords(0.0, 0.0, 400.0, 400.0)
    }

    #[test]
    fn new_map_assigns_whole_world() {
        let map = PartitionMap::new(world(), ServerId(1));
        assert_eq!(map.len(), 1);
        assert_eq!(map.range_of(ServerId(1)), Some(world()));
        map.validate().unwrap();
    }

    #[test]
    fn split_to_left_hands_off_left_half() {
        let mut map = PartitionMap::new(world(), ServerId(1));
        let out = map
            .split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        assert_eq!(out.given, Rect::from_coords(0.0, 0.0, 200.0, 400.0));
        assert_eq!(out.kept, Rect::from_coords(200.0, 0.0, 400.0, 400.0));
        assert_eq!(map.range_of(ServerId(2)), Some(out.given));
        map.validate().unwrap();
    }

    #[test]
    fn split_unknown_server_errors() {
        let mut map = PartitionMap::new(world(), ServerId(1));
        let err = map
            .split(ServerId(9), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap_err();
        assert_eq!(err, GeometryError::UnknownServer(ServerId(9)));
    }

    #[test]
    fn split_into_existing_server_errors() {
        let mut map = PartitionMap::new(world(), ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        let err = map
            .split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap_err();
        assert_eq!(err, GeometryError::ServerExists(ServerId(2)));
    }

    #[test]
    fn reclaim_restores_pre_split_range() {
        let mut map = PartitionMap::new(world(), ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        let merged = map.reclaim(ServerId(1), ServerId(2)).unwrap();
        assert_eq!(merged, world());
        assert_eq!(map.len(), 1);
        assert!(!map.contains_server(ServerId(2)));
        map.validate().unwrap();
    }

    #[test]
    fn reclaim_non_adjacent_errors() {
        let mut map = PartitionMap::new(world(), ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        map.split(ServerId(1), ServerId(3), &SplitStrategy::LongestAxis, &[])
            .unwrap();
        // S2 has the left half; S3 has a quarter not sharing a full edge
        // with S2's half.
        let err = map.reclaim(ServerId(2), ServerId(3)).unwrap_err();
        assert_eq!(err, GeometryError::NotMergeable(ServerId(2), ServerId(3)));
    }

    #[test]
    fn owner_of_is_unique_for_interior_points() {
        let mut map = PartitionMap::new(world(), ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        map.split(ServerId(1), ServerId(3), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        let p = Point::new(250.0, 100.0);
        let owner = map.owner_of(p).unwrap();
        let holders: Vec<ServerId> = map
            .iter()
            .filter(|(_, r)| r.contains(p))
            .map(|(s, _)| s)
            .collect();
        assert_eq!(holders, vec![owner]);
    }

    #[test]
    fn owner_of_upper_world_boundary() {
        let map = PartitionMap::new(world(), ServerId(1));
        assert_eq!(map.owner_of(Point::new(400.0, 400.0)), Some(ServerId(1)));
    }

    #[test]
    fn owner_of_outside_world_is_none() {
        let map = PartitionMap::new(world(), ServerId(1));
        assert_eq!(map.owner_of(Point::new(500.0, 10.0)), None);
    }

    #[test]
    fn static_grid_covers_world() {
        let servers: Vec<ServerId> = (1..=7).map(ServerId).collect();
        let map = PartitionMap::static_grid(world(), &servers).unwrap();
        assert_eq!(map.len(), 7);
        map.validate().unwrap();
    }

    #[test]
    fn static_grid_empty_server_list() {
        assert!(PartitionMap::static_grid(world(), &[]).is_none());
    }

    #[test]
    fn mergeable_neighbours_after_splits() {
        let mut map = PartitionMap::new(world(), ServerId(1));
        map.split(ServerId(1), ServerId(2), &SplitStrategy::SplitToLeft, &[])
            .unwrap();
        let n1 = map.mergeable_neighbours(ServerId(1));
        assert_eq!(n1, vec![ServerId(2)]);
    }

    #[test]
    fn repeated_splits_keep_invariants() {
        let mut map = PartitionMap::new(world(), ServerId(1));
        for i in 2..=16 {
            // Split the largest partition each round.
            let (largest, _) = map
                .iter()
                .max_by(|a, b| a.1.area().partial_cmp(&b.1.area()).unwrap())
                .unwrap();
            map.split(largest, ServerId(i), &SplitStrategy::LongestAxis, &[])
                .unwrap();
            map.validate().unwrap();
        }
        assert_eq!(map.len(), 16);
    }
}
