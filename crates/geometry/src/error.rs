//! Error type for partition-map operations.

use crate::ServerId;

/// Errors returned by [`crate::PartitionMap`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// The named server owns no partition in the map.
    UnknownServer(ServerId),
    /// The target id for a split already owns a partition.
    ServerExists(ServerId),
    /// The partition is too small (or degenerate) to split.
    Unsplittable(ServerId),
    /// The two partitions do not share a full edge and cannot be merged.
    NotMergeable(ServerId, ServerId),
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::UnknownServer(s) => write!(f, "server {s} owns no partition"),
            GeometryError::ServerExists(s) => write!(f, "server {s} already owns a partition"),
            GeometryError::Unsplittable(s) => {
                write!(f, "partition owned by {s} is too small to split")
            }
            GeometryError::NotMergeable(a, b) => {
                write!(f, "partitions of {a} and {b} do not tile a rectangle")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = GeometryError::UnknownServer(ServerId(3));
        assert!(e.to_string().contains("S3"));
        let e = GeometryError::NotMergeable(ServerId(1), ServerId(2));
        assert!(e.to_string().contains("S1"));
        assert!(e.to_string().contains("S2"));
    }
}
