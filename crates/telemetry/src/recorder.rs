//! The flight recorder: a fixed-capacity ring of structured events.

use crate::span::STAGE_COUNT;
use matrix_geometry::ServerId;
use matrix_sim::SimTime;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// What happened. Client ids travel as raw `u64`s (the typed `ClientId`
/// lives above this crate in the dependency DAG).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A client joined a game server.
    Join {
        /// The joining client.
        client: u64,
        /// The server it joined.
        server: ServerId,
    },
    /// A client was handed over to another server.
    Handover {
        /// The moving client.
        client: u64,
        /// The server it left.
        from: ServerId,
        /// The server it was sent to.
        to: ServerId,
    },
    /// A region split: `parent` shed half its range to `child`.
    Split {
        /// The overloaded parent.
        parent: ServerId,
        /// The new child server.
        child: ServerId,
    },
    /// A reclaim: `parent` absorbed `child`'s range back.
    Reclaim {
        /// The absorbing parent.
        parent: ServerId,
        /// The retired child.
        child: ServerId,
    },
    /// A retired child's range was orphaned and reassigned.
    Orphan {
        /// The child whose range went ownerless.
        child: ServerId,
    },
    /// A primary paired with a warm standby.
    StandbyAssign {
        /// The protected primary.
        primary: ServerId,
        /// Its standby.
        standby: ServerId,
    },
    /// A standby died (alone, or together with its primary).
    StandbyLost {
        /// The primary that lost its cover.
        primary: ServerId,
        /// The dead standby.
        standby: ServerId,
    },
    /// A dead server without usable standby was declared failed; a
    /// neighbour absorbs its range (sessions lost).
    FailureDeclared {
        /// The dead server.
        failed: ServerId,
        /// The neighbour absorbing its range.
        heir: ServerId,
    },
    /// Fast failover: a dead primary's standby takes over its range.
    Failover {
        /// The dead primary.
        failed: ServerId,
        /// The standby being promoted.
        standby: ServerId,
    },
    /// A standby finished promoting itself to active primary.
    Promotion {
        /// The newly active server.
        server: ServerId,
    },
    /// The density auto-tuner rebuilt a node's interest grid.
    Retune {
        /// The retuning server.
        server: ServerId,
        /// The new grid resolution (cells per axis).
        cells: u32,
    },
    /// The coordinator tolerated a directory divergence.
    Divergence,
    /// A ring's freshness SLO started burning its error budget faster
    /// than it accrues (burn rate ≥ 1.0). Edge-triggered: recorded on
    /// the transition into breach, not on every burning heartbeat.
    SloBreach {
        /// The breaching vision ring.
        ring: u8,
        /// Burn rate in basis points (10 000 = 1.0).
        burn_bp: u64,
    },
    /// A flush exceeded the node's `slow_flush_threshold_us`: one event
    /// per shard, carrying that flush's per-stage span breakdown (µs;
    /// stages 1–3 are pipeline-wide, 4–5 are this shard's own).
    SlowFlush {
        /// The flushing server.
        server: ServerId,
        /// Shard index within the flush (0 when unsharded).
        shard: u32,
        /// Whole-flush duration (µs) that tripped the threshold.
        total_us: u64,
        /// Per-stage time of this flush, [`STAGE_COUNT`] slots in
        /// pipeline order (query, tier, predict, policy, delta).
        stages: [u64; STAGE_COUNT],
    },
}

impl std::fmt::Display for EventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventKind::Join { client, server } => write!(f, "join c{client} -> {server}"),
            EventKind::Handover { client, from, to } => {
                write!(f, "handover c{client} {from} -> {to}")
            }
            EventKind::Split { parent, child } => write!(f, "split {parent} -> {child}"),
            EventKind::Reclaim { parent, child } => write!(f, "reclaim {parent} <- {child}"),
            EventKind::Orphan { child } => write!(f, "orphan {child}"),
            EventKind::StandbyAssign { primary, standby } => {
                write!(f, "standby-assign {primary} ~ {standby}")
            }
            EventKind::StandbyLost { primary, standby } => {
                write!(f, "standby-lost {primary} ~ {standby}")
            }
            EventKind::FailureDeclared { failed, heir } => {
                write!(f, "failure {failed} heir {heir}")
            }
            EventKind::Failover { failed, standby } => {
                write!(f, "failover {failed} -> {standby}")
            }
            EventKind::Promotion { server } => write!(f, "promotion {server}"),
            EventKind::Retune { server, cells } => write!(f, "retune {server} cells {cells}"),
            EventKind::Divergence => write!(f, "divergence"),
            EventKind::SloBreach { ring, burn_bp } => {
                write!(f, "slo-breach r{ring} burn {burn_bp}bp")
            }
            EventKind::SlowFlush {
                server,
                shard,
                total_us,
                stages,
            } => {
                write!(
                    f,
                    "slow-flush {server} shard {shard} total {total_us}us \
                     stages {}/{}/{}/{}/{}us",
                    stages[0], stages[1], stages[2], stages[3], stages[4]
                )
            }
        }
    }
}

/// One recorded event: a monotone sequence number, when, and what.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TelemetryEvent {
    /// Monotone per-recorder sequence number (never reused, so a reader
    /// polling snapshots can detect how much it missed).
    pub seq: u64,
    /// Simulated (or driver) time of the event.
    pub at: SimTime,
    /// The event itself.
    pub kind: EventKind,
}

/// A fixed-capacity ring buffer of [`TelemetryEvent`]s. When full, the
/// oldest event is evicted and counted in
/// [`dropped`](FlightRecorder::dropped) — recording never blocks and
/// never allocates past the capacity. Capacity `0` disables the
/// recorder entirely (every record is a no-op).
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    cap: usize,
    events: VecDeque<TelemetryEvent>,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Creates a recorder holding at most `cap` events (`0` = disabled).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap,
            events: VecDeque::with_capacity(cap.min(1024)),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn record(&mut self, at: SimTime, kind: EventKind) {
        if self.cap == 0 {
            return;
        }
        if self.events.len() == self.cap {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TelemetryEvent {
            seq: self.next_seq,
            at,
            kind,
        });
        self.next_seq += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TelemetryEvent> {
        self.events.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted to make room (the ring wrapped this many times).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Configured ring capacity in events (`0` = disabled).
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Sequence number the *next* event will get (= total ever recorded).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Drops every retained event (sequence numbers keep advancing).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            r.record(
                SimTime::from_secs(i),
                EventKind::Promotion {
                    server: ServerId(i as u32),
                },
            );
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.next_seq(), 5);
        let seqs: Vec<u64> = r.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest evicted, order kept");
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let mut r = FlightRecorder::new(0);
        r.record(SimTime::ZERO, EventKind::Divergence);
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 0);
        assert_eq!(r.next_seq(), 0);
    }
}
