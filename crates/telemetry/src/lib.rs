//! The runtime telemetry plane: what a *running* Matrix cluster looks
//! like from the inside.
//!
//! The paper evaluates Matrix offline, and so did this repo until now —
//! counter structs summed after the run, diagnostics as bare strings.
//! This crate adds the live instrumentation layer everything else plugs
//! into:
//!
//! * [`StageSpans`] — a lap-timer over the dissemination pipeline's five
//!   stages ([`Stage`]), accumulating per-flush stage latencies into
//!   log-bucketed [`Histogram`]s. Disabled spans cost one branch and
//!   **zero** clock reads, which is what keeps the telemetry-off build a
//!   true no-op (enforced by `benches/telemetry.rs`: on vs off ≤ 2%
//!   flush CPU).
//! * [`FlightRecorder`] — a fixed-capacity ring buffer of structured
//!   [`TelemetryEvent`]s (joins, handovers, splits, standby churn,
//!   failovers, promotions, retunes). The coordinator keeps one always
//!   on; failover timelines are read out of it instead of being
//!   hand-rolled by harness probes.
//! * [`TelemetrySnapshot`] — the wire-friendly aggregate (named counters
//!   plus sparse-bucket [`HistSnapshot`]s) that rides load reports and
//!   heartbeats to the coordinator and answers the `matrix-rt` stats
//!   query. Snapshots [`merge`](TelemetrySnapshot::merge) by name, so
//!   per-node histograms aggregate into cluster-wide distributions.
//! * [`TraceTag`] — the causal trace plane: a compact tag stamped on a
//!   sampled subset of ingested events (`trace_sample_rate`), carried
//!   through every pipeline stage, the sharded flush and the wire, and
//!   read back on the client to compute end-to-end delivery latency and
//!   staleness-at-apply — including the charged age of suppressed or
//!   policy-dropped predecessors.
//! * [`SloTracker`] — per-ring freshness SLOs over the trace plane's
//!   staleness histograms: targets, a rolling error budget and its burn
//!   rate, breaching into an [`EventKind::SloBreach`] recorder event.
//! * [`render_prometheus`] — Prometheus-style text exposition of a set
//!   of node snapshots, and [`diag_line`]/[`emit_diag`] — the structured
//!   `key=value` stderr log line that replaces ad-hoc `eprintln!`
//!   diagnostics.
//!
//! The crate sits *below* `matrix-core` in the dependency DAG (it knows
//! geometry ids, histograms and simulated time, nothing else), so every
//! layer from the interest pipeline to the async runtime can record into
//! it without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod recorder;
mod slo;
mod snapshot;
mod span;
mod trace;

pub use expose::{diag_line, emit_diag, render_prometheus};
pub use matrix_metrics::Histogram;
pub use recorder::{EventKind, FlightRecorder, TelemetryEvent};
pub use slo::{SloTargets, SloTracker, BURN_ONE_BP, SLO_RINGS};
pub use snapshot::{HistSnapshot, TelemetrySnapshot};
pub use span::{Stage, StageSpans, STAGE_COUNT};
pub use trace::TraceTag;
