//! Exposition: Prometheus-style text rendering and structured stderr
//! diagnostics.

use crate::snapshot::TelemetrySnapshot;
use matrix_geometry::ServerId;

/// Metric kind by name: point-in-time metrics (recorder occupancy, SLO
/// burn state, shard imbalance) are gauges, everything else counted by
/// the nodes is a monotone counter.
fn metric_kind(name: &str) -> &'static str {
    if name.starts_with("slo_")
        || name.starts_with("recorder_")
        || name == "flush_shard_imbalance_bp"
    {
        "gauge"
    } else {
        "counter"
    }
}

/// One-line `# HELP` text per metric name (a stable generic line for
/// names without a curated description — Prometheus requires the line,
/// not prose quality).
fn metric_help(name: &str) -> &'static str {
    match name {
        "recorder_capacity" => "Flight-recorder ring capacity in events (0 = disabled)",
        "recorder_dropped" => "Flight-recorder events evicted before being read",
        "events_seen" => "Flight-recorder events ever recorded",
        "events_dropped" => "Flight-recorder events evicted before being read",
        "flush_shard_imbalance_bp" => {
            "Max/mean per-shard stage-5 (delta) flush time, basis points (10000 = balanced)"
        }
        n if n.starts_with("slo_burn_bp_") => {
            "Freshness SLO error-budget burn rate, basis points (10000 = 1.0)"
        }
        n if n.starts_with("slo_target_us_") => "Freshness SLO staleness target (us)",
        n if n.starts_with("slo_samples_") => "Traced samples in the SLO window",
        n if n.starts_with("slo_over_") => "Traced samples over target in the SLO window",
        n if n.starts_with("slo_breached_") => "Whether the ring is currently in breach (0/1)",
        n if n.starts_with("delivery_latency_") => {
            "End-to-end delivery latency of traced items (us)"
        }
        n if n.starts_with("staleness_") => "Staleness-at-apply of traced items (us)",
        _ => "Matrix telemetry metric",
    }
}

/// Renders a set of per-node snapshots as Prometheus-style text
/// exposition: counters as `matrix_<name>{server="N"}`, histograms as
/// summaries (`_count`, `_sum` and `quantile`-labelled samples), each
/// metric preceded (once) by its `# HELP` and `# TYPE` lines.
/// Deterministic: output order follows the input order, quantiles
/// ascend.
pub fn render_prometheus(nodes: &[(ServerId, TelemetrySnapshot)]) -> String {
    use std::fmt::Write as _;
    fn note_type(typed: &mut Vec<String>, out: &mut String, name: &str, kind: &str) {
        use std::fmt::Write as _;
        if !typed.iter().any(|n| n == name) {
            typed.push(name.to_string());
            let _ = writeln!(out, "# HELP matrix_{name} {}", metric_help(name));
            let _ = writeln!(out, "# TYPE matrix_{name} {kind}");
        }
    }
    let mut out = String::new();
    let mut typed: Vec<String> = Vec::new();
    for (server, snap) in nodes {
        let sid = server.0;
        for (name, value) in &snap.counters {
            note_type(&mut typed, &mut out, name, metric_kind(name));
            let _ = writeln!(out, "matrix_{name}{{server=\"{sid}\"}} {value}");
        }
        for hist in &snap.hists {
            note_type(&mut typed, &mut out, &hist.name, "summary");
            let name = &hist.name;
            let h = hist.to_histogram();
            for (label, q) in [
                ("0.5", 0.5),
                ("0.95", 0.95),
                ("0.99", 0.99),
                ("0.999", 0.999),
            ] {
                if let Some(v) = h.quantile(q) {
                    let _ = writeln!(
                        out,
                        "matrix_{name}{{server=\"{sid}\",quantile=\"{label}\"}} {v}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "matrix_{name}_count{{server=\"{sid}\"}} {}",
                hist.count
            );
            let _ = writeln!(out, "matrix_{name}_sum{{server=\"{sid}\"}} {}", hist.sum);
        }
        note_type(&mut typed, &mut out, "events_seen", "counter");
        let _ = writeln!(
            out,
            "matrix_events_seen{{server=\"{sid}\"}} {}",
            snap.events_seen
        );
        note_type(&mut typed, &mut out, "events_dropped", "counter");
        let _ = writeln!(
            out,
            "matrix_events_dropped{{server=\"{sid}\"}} {}",
            snap.events_dropped
        );
        // The recorder's health as point-in-time gauges: how many events
        // the ring has evicted unread (its capacity gauge rides the
        // name-keyed counters when the node reports one).
        note_type(&mut typed, &mut out, "recorder_dropped", "gauge");
        let _ = writeln!(
            out,
            "matrix_recorder_dropped{{server=\"{sid}\"}} {}",
            snap.events_dropped
        );
    }
    out
}

/// Formats one structured diagnostic line: `component=<c> event=<e>`
/// followed by the fields, values quoted when they contain whitespace,
/// quotes or `=`. One line, no trailing newline.
pub fn diag_line(component: &str, event: &str, fields: &[(&str, &str)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "component={component} event={event}");
    for (key, value) in fields {
        let needs_quotes = value.is_empty()
            || value
                .chars()
                .any(|c| c.is_whitespace() || c == '"' || c == '=');
        if needs_quotes {
            let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = write!(out, " {key}=\"{escaped}\"");
        } else {
            let _ = write!(out, " {key}={value}");
        }
    }
    out
}

/// Writes one structured diagnostic line to stderr.
pub fn emit_diag(component: &str, event: &str, fields: &[(&str, &str)]) {
    eprintln!("{}", diag_line(component, event, fields));
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix_metrics::Histogram;

    #[test]
    fn prometheus_text_carries_counters_and_quantiles() {
        let mut snap = TelemetrySnapshot::new();
        snap.counter("joins", 12);
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        snap.hist("flush_us", &h);
        let text = render_prometheus(&[(ServerId(3), snap)]);
        assert!(text.contains("# TYPE matrix_joins counter"));
        assert!(text.contains("# HELP matrix_joins Matrix telemetry metric"));
        assert!(text.contains("matrix_joins{server=\"3\"} 12"));
        assert!(text.contains("# TYPE matrix_flush_us summary"));
        assert!(text.contains("matrix_flush_us_count{server=\"3\"} 1000"));
        assert!(text.contains("quantile=\"0.999\""));
    }

    #[test]
    fn recorder_state_and_slo_metrics_render_as_gauges() {
        let mut snap = TelemetrySnapshot::new();
        snap.counter("recorder_capacity", 256);
        snap.counter("slo_burn_bp_r0", 5_000);
        snap.events_dropped = 7;
        let text = render_prometheus(&[(ServerId(1), snap)]);
        assert!(text.contains("# TYPE matrix_recorder_capacity gauge"));
        assert!(text.contains(
            "# HELP matrix_recorder_capacity Flight-recorder ring capacity in events (0 = disabled)"
        ));
        assert!(text.contains("matrix_recorder_capacity{server=\"1\"} 256"));
        assert!(text.contains("# TYPE matrix_slo_burn_bp_r0 gauge"));
        assert!(text.contains("matrix_slo_burn_bp_r0{server=\"1\"} 5000"));
        assert!(text.contains("# TYPE matrix_recorder_dropped gauge"));
        assert!(text.contains("matrix_recorder_dropped{server=\"1\"} 7"));
        // The legacy counter stays for dashboards that already scrape it.
        assert!(text.contains("matrix_events_dropped{server=\"1\"} 7"));
    }

    #[test]
    fn diag_lines_quote_awkward_values() {
        let line = diag_line(
            "experiments",
            "save_failed",
            &[("path", "out/fig 2.txt"), ("err", "disk \"full\"")],
        );
        assert_eq!(
            line,
            "component=experiments event=save_failed path=\"out/fig 2.txt\" \
             err=\"disk \\\"full\\\"\""
        );
    }
}
