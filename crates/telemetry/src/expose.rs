//! Exposition: Prometheus-style text rendering and structured stderr
//! diagnostics.

use crate::snapshot::TelemetrySnapshot;
use matrix_geometry::ServerId;

/// Renders a set of per-node snapshots as Prometheus-style text
/// exposition: counters as `matrix_<name>{server="N"}`, histograms as
/// summaries (`_count`, `_sum` and `quantile`-labelled samples).
/// Deterministic: output order follows the input order, quantiles
/// ascend.
pub fn render_prometheus(nodes: &[(ServerId, TelemetrySnapshot)]) -> String {
    use std::fmt::Write as _;
    fn note_type(typed: &mut Vec<String>, out: &mut String, name: &str, kind: &str) {
        use std::fmt::Write as _;
        if !typed.iter().any(|n| n == name) {
            typed.push(name.to_string());
            let _ = writeln!(out, "# TYPE matrix_{name} {kind}");
        }
    }
    let mut out = String::new();
    let mut typed: Vec<String> = Vec::new();
    for (server, snap) in nodes {
        let sid = server.0;
        for (name, value) in &snap.counters {
            note_type(&mut typed, &mut out, name, "counter");
            let _ = writeln!(out, "matrix_{name}{{server=\"{sid}\"}} {value}");
        }
        for hist in &snap.hists {
            note_type(&mut typed, &mut out, &hist.name, "summary");
            let name = &hist.name;
            let h = hist.to_histogram();
            for (label, q) in [
                ("0.5", 0.5),
                ("0.95", 0.95),
                ("0.99", 0.99),
                ("0.999", 0.999),
            ] {
                if let Some(v) = h.quantile(q) {
                    let _ = writeln!(
                        out,
                        "matrix_{name}{{server=\"{sid}\",quantile=\"{label}\"}} {v}"
                    );
                }
            }
            let _ = writeln!(
                out,
                "matrix_{name}_count{{server=\"{sid}\"}} {}",
                hist.count
            );
            let _ = writeln!(out, "matrix_{name}_sum{{server=\"{sid}\"}} {}", hist.sum);
        }
        note_type(&mut typed, &mut out, "events_seen", "counter");
        let _ = writeln!(
            out,
            "matrix_events_seen{{server=\"{sid}\"}} {}",
            snap.events_seen
        );
        note_type(&mut typed, &mut out, "events_dropped", "counter");
        let _ = writeln!(
            out,
            "matrix_events_dropped{{server=\"{sid}\"}} {}",
            snap.events_dropped
        );
    }
    out
}

/// Formats one structured diagnostic line: `component=<c> event=<e>`
/// followed by the fields, values quoted when they contain whitespace,
/// quotes or `=`. One line, no trailing newline.
pub fn diag_line(component: &str, event: &str, fields: &[(&str, &str)]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(out, "component={component} event={event}");
    for (key, value) in fields {
        let needs_quotes = value.is_empty()
            || value
                .chars()
                .any(|c| c.is_whitespace() || c == '"' || c == '=');
        if needs_quotes {
            let escaped = value.replace('\\', "\\\\").replace('"', "\\\"");
            let _ = write!(out, " {key}=\"{escaped}\"");
        } else {
            let _ = write!(out, " {key}={value}");
        }
    }
    out
}

/// Writes one structured diagnostic line to stderr.
pub fn emit_diag(component: &str, event: &str, fields: &[(&str, &str)]) {
    eprintln!("{}", diag_line(component, event, fields));
}

#[cfg(test)]
mod tests {
    use super::*;
    use matrix_metrics::Histogram;

    #[test]
    fn prometheus_text_carries_counters_and_quantiles() {
        let mut snap = TelemetrySnapshot::new();
        snap.counter("joins", 12);
        let mut h = Histogram::new();
        for v in 1..=1000 {
            h.record(v as f64);
        }
        snap.hist("flush_us", &h);
        let text = render_prometheus(&[(ServerId(3), snap)]);
        assert!(text.contains("# TYPE matrix_joins counter"));
        assert!(text.contains("matrix_joins{server=\"3\"} 12"));
        assert!(text.contains("# TYPE matrix_flush_us summary"));
        assert!(text.contains("matrix_flush_us_count{server=\"3\"} 1000"));
        assert!(text.contains("quantile=\"0.999\""));
    }

    #[test]
    fn diag_lines_quote_awkward_values() {
        let line = diag_line(
            "experiments",
            "save_failed",
            &[("path", "out/fig 2.txt"), ("err", "disk \"full\"")],
        );
        assert_eq!(
            line,
            "component=experiments event=save_failed path=\"out/fig 2.txt\" \
             err=\"disk \\\"full\\\"\""
        );
    }
}
