//! Wire-friendly telemetry aggregates.

use matrix_metrics::Histogram;
use serde::{Deserialize, Serialize};

/// A histogram in transportable form: exact moments plus the occupied
/// log buckets as sparse `(index, count)` pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistSnapshot {
    /// Metric name (e.g. `stage_query_us`, `flush_us`).
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: f64,
    /// Exact smallest recorded value (0 when empty).
    pub min: f64,
    /// Exact largest recorded value (0 when empty).
    pub max: f64,
    /// Occupied buckets, index-ascending.
    pub buckets: Vec<(u32, u64)>,
}

impl HistSnapshot {
    /// Snapshots a histogram under `name`.
    pub fn of(name: impl Into<String>, h: &Histogram) -> HistSnapshot {
        HistSnapshot {
            name: name.into(),
            count: h.count(),
            sum: h.sum(),
            min: h.min().unwrap_or(0.0),
            max: h.max().unwrap_or(0.0),
            buckets: h.nonzero_buckets(),
        }
    }

    /// Reconstructs the full histogram (bucket precision; exact moments).
    pub fn to_histogram(&self) -> Histogram {
        Histogram::from_sparse(&self.buckets, self.sum, self.min, self.max)
    }

    /// Folds another snapshot of the *same* metric into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        if other.count == 0 {
            return;
        }
        let mut h = self.to_histogram();
        h.merge(&other.to_histogram());
        self.count = h.count();
        self.sum = h.sum();
        self.min = h.min().unwrap_or(0.0);
        self.max = h.max().unwrap_or(0.0);
        self.buckets = h.nonzero_buckets();
    }
}

/// One node's telemetry at a point in time: named counters, histogram
/// snapshots and flight-recorder occupancy. Rides load reports and
/// heartbeats to the coordinator; crosses the real wire in the
/// `matrix-rt` stats reply (`matrix_core::codec`).
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Monotone counters, name-ascending once assembled.
    pub counters: Vec<(String, u64)>,
    /// Latency histograms in sparse form.
    pub hists: Vec<HistSnapshot>,
    /// Flight-recorder events evicted before anyone read them.
    pub events_dropped: u64,
    /// Flight-recorder sequence high-water mark (= events ever recorded).
    pub events_seen: u64,
}

impl TelemetrySnapshot {
    /// An empty snapshot.
    pub fn new() -> TelemetrySnapshot {
        TelemetrySnapshot::default()
    }

    /// Adds (or bumps) a named counter.
    pub fn counter(&mut self, name: impl Into<String>, value: u64) {
        let name = name.into();
        match self.counters.iter_mut().find(|(n, _)| *n == name) {
            Some((_, v)) => *v += value,
            None => self.counters.push((name, value)),
        }
    }

    /// Adds a histogram under `name` (empty histograms are skipped — a
    /// merge treats absence as zero).
    pub fn hist(&mut self, name: impl Into<String>, h: &Histogram) {
        if h.is_empty() {
            return;
        }
        self.hists.push(HistSnapshot::of(name, h));
    }

    /// Looks up a counter by name.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a histogram snapshot by name.
    pub fn get_hist(&self, name: &str) -> Option<&HistSnapshot> {
        self.hists.iter().find(|h| h.name == name)
    }

    /// Folds another node's snapshot into this one: counters sum by
    /// name, histograms merge by name, recorder tallies add up.
    pub fn merge(&mut self, other: &TelemetrySnapshot) {
        for (name, v) in &other.counters {
            self.counter(name.clone(), *v);
        }
        for h in &other.hists {
            match self.hists.iter_mut().find(|mine| mine.name == h.name) {
                Some(mine) => mine.merge(h),
                None => self.hists.push(h.clone()),
            }
        }
        self.events_dropped += other.events_dropped;
        self.events_seen += other.events_seen;
    }

    /// Whether the snapshot carries no data at all.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.hists.is_empty()
            && self.events_dropped == 0
            && self.events_seen == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(lo: u64, hi: u64) -> Histogram {
        let mut h = Histogram::new();
        for v in lo..=hi {
            h.record(v as f64);
        }
        h
    }

    #[test]
    fn hist_snapshot_round_trips_exactly() {
        let h = ramp(1, 5_000);
        let snap = HistSnapshot::of("lat_us", &h);
        assert_eq!(snap.to_histogram(), h);
    }

    #[test]
    fn merge_equals_merging_the_histograms() {
        let (a, b) = (ramp(1, 100), ramp(1_000, 9_000));
        let mut snap = HistSnapshot::of("lat_us", &a);
        snap.merge(&HistSnapshot::of("lat_us", &b));
        let mut direct = a.clone();
        direct.merge(&b);
        assert_eq!(snap.to_histogram(), direct);
    }

    #[test]
    fn snapshots_merge_by_name() {
        let mut a = TelemetrySnapshot::new();
        a.counter("joins", 3);
        a.hist("flush_us", &ramp(1, 10));
        a.events_seen = 7;
        let mut b = TelemetrySnapshot::new();
        b.counter("joins", 2);
        b.counter("moves", 40);
        b.hist("flush_us", &ramp(100, 200));
        b.hist("tick_us", &ramp(1, 3));
        b.events_dropped = 1;
        a.merge(&b);
        assert_eq!(a.get_counter("joins"), Some(5));
        assert_eq!(a.get_counter("moves"), Some(40));
        assert_eq!(a.get_hist("flush_us").unwrap().count, 10 + 101);
        assert_eq!(a.get_hist("tick_us").unwrap().count, 3);
        assert_eq!(a.events_dropped, 1);
        assert_eq!(a.events_seen, 7);
    }

    #[test]
    fn merge_treats_missing_and_zero_filled_shard_hists_as_zero() {
        // A 4-shard node where only shard 1 saw traffic: `hist()` skips
        // the empty shards, so the snapshot carries one per-shard
        // histogram, not four zero-filled ones.
        let mut busy = TelemetrySnapshot::new();
        for shard in 0..4 {
            let h = if shard == 1 {
                ramp(10, 20)
            } else {
                Histogram::new()
            };
            busy.hist(format!("flush_shard{shard}_us"), &h);
        }
        assert_eq!(busy.hists.len(), 1, "empty shard hists are skipped");

        // A peer that saw no flushes at all contributes nothing…
        let idle = TelemetrySnapshot::new();
        let mut merged = busy.clone();
        merged.merge(&idle);
        assert_eq!(merged, busy, "merging an idle node is a no-op");

        // …and an explicitly zero-filled snapshot (count 0, as a
        // foreign encoder might ship instead of omitting the metric)
        // must not disturb the moments of the receiving side.
        let zero = HistSnapshot {
            name: "flush_shard1_us".into(),
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: Vec::new(),
        };
        let mut zeroed = TelemetrySnapshot::new();
        zeroed.hists.push(zero);
        merged.merge(&zeroed);
        let shard1 = merged.get_hist("flush_shard1_us").unwrap();
        assert_eq!(shard1.count, 11);
        assert_eq!(shard1.min, 10.0, "zero-filled merge must not drag min to 0");
        assert_eq!(shard1.max, 20.0);

        // Symmetric direction: merging real data *into* the zero-filled
        // snapshot adopts the real moments.
        let mut from_zero = TelemetrySnapshot::new();
        from_zero.hists.push(HistSnapshot {
            name: "flush_shard1_us".into(),
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
            buckets: Vec::new(),
        });
        from_zero.merge(&busy);
        let shard1 = from_zero.get_hist("flush_shard1_us").unwrap();
        assert_eq!(shard1.count, 11);
        assert_eq!(shard1.min, 10.0);
        assert_eq!(shard1.max, 20.0);
    }
}
