//! Causal trace tags: the end-to-end freshness probe.
//!
//! A [`TraceTag`] is stamped on a *sampled* subset of ingested events at
//! the game server (`trace_sample_rate`), rides the event through every
//! pipeline stage, the sharded flush and the wire, and is read back on
//! the receiving client, which computes two numbers per traced item:
//!
//! * **delivery latency** — apply time minus ingest time: how long the
//!   pipeline + wire hop took for the event itself;
//! * **staleness at apply** — delivery latency *plus* the charged age of
//!   any suppressed or policy-dropped predecessor
//!   ([`TraceTag::stale_us`]): how out-of-date the entity's on-screen
//!   state really was when this rebase landed. A dead-reckoning
//!   suppression is invisible to latency but not to staleness — that
//!   difference is the whole point of carrying the charge.
//!
//! Everything is expressed in simulated/driver microseconds
//! ([`matrix_sim::SimTime`]), never wall clock, so traces are exactly
//! reproducible in the discrete-event harness and remain meaningful on
//! the real runtime (whose router clock is monotone micros too).

use serde::{Deserialize, Serialize};

/// A compact causal trace tag carried by a sampled update from ingest
/// to apply. `Copy` and fixed-size on purpose: it travels inside batch
/// items and replication snapshots without allocating.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceTag {
    /// Raw id of the node that ingested the event (`ServerId.0`; the
    /// typed id lives above this crate in the dependency DAG).
    pub origin: u32,
    /// The origin node's event sequence number at ingest — together
    /// with `origin` this names the causal event uniquely.
    pub seq: u32,
    /// Ingest time in simulated/driver microseconds.
    pub ingest_us: u64,
    /// Charged age of the oldest *undelivered* predecessor at ingest
    /// (µs): a suppressed or policy-dropped update's latency is charged
    /// to the next delivered rebase of the same entity, so staleness
    /// never silently disappears with the event that was dropped.
    pub stale_us: u64,
}

impl TraceTag {
    /// Creates a fresh (uncharged) tag.
    pub fn new(origin: u32, seq: u32, ingest_us: u64) -> TraceTag {
        TraceTag {
            origin,
            seq,
            ingest_us,
            stale_us: 0,
        }
    }

    /// Deterministic sampling decision: event `seq` is traced when the
    /// rate is non-zero and `seq` is a multiple of it (`rate = 1` traces
    /// everything, `0` disables tracing). No RNG, so the sim harness and
    /// the real runtime sample the identical subset.
    pub fn sampled(seq: u64, rate: u32) -> bool {
        rate != 0 && seq.is_multiple_of(rate as u64)
    }

    /// Delivery latency at apply time (µs, saturating — a clock running
    /// behind the sender yields 0, never a wrap).
    pub fn latency_us(&self, apply_us: u64) -> u64 {
        apply_us.saturating_sub(self.ingest_us)
    }

    /// Staleness at apply: delivery latency plus the charged predecessor
    /// age. This is "how old was the freshest state the client could
    /// have rendered for this entity".
    pub fn staleness_us(&self, apply_us: u64) -> u64 {
        self.latency_us(apply_us).saturating_add(self.stale_us)
    }

    /// Charges the age of an undelivered predecessor (µs before this
    /// tag's ingest). Charges accumulate by `max`: the *oldest*
    /// uncovered event defines how stale the entity was.
    pub fn charge(&mut self, age_us: u64) {
        self.stale_us = self.stale_us.max(age_us);
    }

    /// The earliest event time this tag vouches for: its own ingest
    /// minus any charged predecessor age. A later drop of this item
    /// re-charges from here so chained drops keep the full age.
    pub fn charge_origin_us(&self) -> u64 {
        self.ingest_us.saturating_sub(self.stale_us)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_rate_zero_is_off() {
        assert!(!TraceTag::sampled(0, 0), "rate 0 disables tracing");
        assert!(TraceTag::sampled(0, 64));
        assert!(!TraceTag::sampled(1, 64));
        assert!(TraceTag::sampled(128, 64));
        let hits = (0..6_400).filter(|&s| TraceTag::sampled(s, 64)).count();
        assert_eq!(hits, 100, "exactly 1-in-64");
        assert!(TraceTag::sampled(7, 1), "rate 1 traces everything");
    }

    #[test]
    fn latency_and_staleness_compose() {
        let mut tag = TraceTag::new(3, 42, 1_000);
        assert_eq!(tag.latency_us(1_250), 250);
        assert_eq!(tag.staleness_us(1_250), 250);
        tag.charge(400);
        tag.charge(100); // older charge wins, newer never shrinks it
        assert_eq!(tag.stale_us, 400);
        assert_eq!(tag.latency_us(1_250), 250, "latency ignores charges");
        assert_eq!(tag.staleness_us(1_250), 650);
        assert_eq!(tag.charge_origin_us(), 600);
    }

    #[test]
    fn clock_skew_saturates_instead_of_wrapping() {
        let tag = TraceTag::new(1, 0, 5_000);
        assert_eq!(tag.latency_us(4_000), 0);
        assert_eq!(tag.staleness_us(4_000), 0);
    }
}
