//! Per-ring freshness SLOs: targets, rolling error budgets, burn rate.
//!
//! The trace plane ([`crate::TraceTag`]) yields per-ring staleness
//! histograms at every node. The coordinator folds those into one
//! [`SloTracker`]: each ring gets a staleness target (µs) and the
//! cluster an error budget — the fraction of traced samples allowed to
//! exceed their ring's target. The tracker keeps a rolling window of
//! observations and reports the **burn rate**: observed violating
//! fraction divided by the budget. Burn 1.0 means the budget is being
//! consumed exactly as fast as it accrues; sustained burn above 1.0
//! means the SLO will be missed — the tracker flags that as a breach
//! (surfaced as a [`crate::EventKind::SloBreach`] flight-recorder event
//! and `slo_*` gauges on the stats endpoint).
//!
//! Fixed-point throughout (basis points, 1 bp = 0.01%): the tracker
//! rides `Copy` configs and wire counters, so no floats leak into
//! frames.

use crate::snapshot::TelemetrySnapshot;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Number of rings the SLO plane tracks. Mirrors
/// `matrix_interest::MAX_RINGS` (this crate sits below `matrix-interest`
/// in the dependency DAG, so the constant is duplicated, not imported).
pub const SLO_RINGS: usize = 4;

/// Burn-rate fixed-point scale: 10 000 bp = a burn rate of exactly 1.0.
pub const BURN_ONE_BP: u64 = 10_000;

/// Per-ring freshness SLO configuration. `Copy` so it can ride
/// `CoordinatorConfig` unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SloTargets {
    /// Per-ring staleness-at-apply target in µs; `0` disables the SLO
    /// for that ring (and all zeros disables the tracker entirely).
    pub staleness_us: [u64; SLO_RINGS],
    /// Error budget in basis points: the fraction of traced samples
    /// allowed over target (100 bp = 1%). Clamped to ≥ 1 in use.
    pub budget_bp: u32,
    /// Rolling window length in observations (heartbeat deltas); `0`
    /// means cumulative-forever. Old observations age out, so a burst
    /// of violations stops burning once it leaves the window.
    pub window: u32,
}

impl Default for SloTargets {
    fn default() -> Self {
        SloTargets {
            staleness_us: [0; SLO_RINGS],
            budget_bp: 100,
            window: 64,
        }
    }
}

impl SloTargets {
    /// Whether any ring carries a target.
    pub fn enabled(&self) -> bool {
        self.staleness_us.iter().any(|&t| t > 0)
    }
}

/// Rolling per-ring accounting.
#[derive(Debug, Clone, Default)]
struct RingState {
    /// Window of `(samples, violations)` observation deltas.
    window: VecDeque<(u64, u64)>,
    /// Sum of samples across the window.
    samples: u64,
    /// Sum of violations across the window.
    over: u64,
    /// Whether the ring is currently in breach (edge-detection state).
    breached: bool,
}

/// The cluster-wide freshness SLO tracker.
#[derive(Debug, Clone)]
pub struct SloTracker {
    targets: SloTargets,
    rings: [RingState; SLO_RINGS],
}

impl SloTracker {
    /// Creates a tracker over `targets`.
    pub fn new(targets: SloTargets) -> SloTracker {
        SloTracker {
            targets,
            rings: Default::default(),
        }
    }

    /// The configured targets.
    pub fn targets(&self) -> SloTargets {
        self.targets
    }

    /// Whether the tracker does anything at all.
    pub fn enabled(&self) -> bool {
        self.targets.enabled()
    }

    /// The staleness target of `ring` (0 = untracked).
    pub fn target_us(&self, ring: u8) -> u64 {
        self.targets
            .staleness_us
            .get(ring as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Feeds one observation delta for `ring`: `samples` traced items
    /// applied since the last observation, `over` of them beyond the
    /// ring's target. Returns `Some(burn_bp)` exactly when this
    /// observation *newly* pushed the ring into breach (burn ≥ 1.0) —
    /// the edge the caller turns into a flight-recorder event.
    pub fn observe(&mut self, ring: u8, samples: u64, over: u64) -> Option<u64> {
        if self.target_us(ring) == 0 || ring as usize >= SLO_RINGS {
            return None;
        }
        let window = self.targets.window;
        let state = &mut self.rings[ring as usize];
        state.window.push_back((samples, over.min(samples)));
        state.samples += samples;
        state.over += over.min(samples);
        if window > 0 {
            while state.window.len() > window as usize {
                let (s, o) = state.window.pop_front().expect("non-empty window");
                state.samples -= s;
                state.over -= o;
            }
        }
        let burn = self.burn_bp(ring).unwrap_or(0);
        let state = &mut self.rings[ring as usize];
        let newly = burn >= BURN_ONE_BP && !state.breached;
        state.breached = burn >= BURN_ONE_BP;
        newly.then_some(burn)
    }

    /// The ring's burn rate in basis points ([`BURN_ONE_BP`] = 1.0), or
    /// `None` when the ring is untracked or has no samples in window.
    pub fn burn_bp(&self, ring: u8) -> Option<u64> {
        if self.target_us(ring) == 0 {
            return None;
        }
        let state = &self.rings[ring as usize];
        if state.samples == 0 {
            return None;
        }
        let budget = self.targets.budget_bp.max(1) as u128;
        let burn =
            (state.over as u128 * 10_000 * BURN_ONE_BP as u128) / (state.samples as u128 * budget);
        Some(burn.min(u64::MAX as u128) as u64)
    }

    /// Whether the ring is currently in breach.
    pub fn breached(&self, ring: u8) -> bool {
        (ring as usize) < SLO_RINGS && self.rings[ring as usize].breached
    }

    /// Traced samples currently in the ring's window.
    pub fn samples(&self, ring: u8) -> u64 {
        self.rings
            .get(ring as usize)
            .map(|s| s.samples)
            .unwrap_or(0)
    }

    /// Violations currently in the ring's window.
    pub fn violations(&self, ring: u8) -> u64 {
        self.rings.get(ring as usize).map(|s| s.over).unwrap_or(0)
    }

    /// The tracker's state as named counters (`slo_*`, rendered as
    /// gauges by [`crate::render_prometheus`]), one set per tracked
    /// ring — the stats-endpoint face of the SLO plane.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let mut snap = TelemetrySnapshot::new();
        for ring in 0..SLO_RINGS as u8 {
            let target = self.target_us(ring);
            if target == 0 {
                continue;
            }
            snap.counter(format!("slo_target_us_r{ring}"), target);
            snap.counter(format!("slo_samples_r{ring}"), self.samples(ring));
            snap.counter(format!("slo_over_r{ring}"), self.violations(ring));
            snap.counter(
                format!("slo_burn_bp_r{ring}"),
                self.burn_bp(ring).unwrap_or(0),
            );
            snap.counter(
                format!("slo_breached_r{ring}"),
                u64::from(self.breached(ring)),
            );
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn targets(near_us: u64) -> SloTargets {
        SloTargets {
            staleness_us: [near_us, 0, 0, 0],
            budget_bp: 100, // 1%
            window: 4,
        }
    }

    #[test]
    fn untracked_rings_observe_nothing() {
        let mut t = SloTracker::new(SloTargets::default());
        assert!(!t.enabled());
        assert_eq!(t.observe(0, 100, 100), None);
        assert_eq!(t.burn_bp(0), None);
        assert!(!t.breached(0));
    }

    #[test]
    fn burn_rate_is_violating_fraction_over_budget() {
        let mut t = SloTracker::new(targets(50_000));
        // 1% budget, 0.5% observed -> burn 0.5.
        assert_eq!(t.observe(0, 1_000, 5), None);
        assert_eq!(t.burn_bp(0), Some(BURN_ONE_BP / 2));
        assert!(!t.breached(0));
        // Another 1.5% slab tips the window to 1% observed -> burn 1.0,
        // reported exactly once as a fresh breach.
        let burn = t.observe(0, 1_000, 15).expect("newly breached");
        assert_eq!(burn, BURN_ONE_BP);
        assert!(t.breached(0));
        assert_eq!(t.observe(0, 1_000, 30), None, "already breached: no edge");
    }

    #[test]
    fn violations_age_out_of_the_window_and_rearm_the_edge() {
        let mut t = SloTracker::new(targets(50_000));
        assert!(t.observe(0, 100, 100).is_some(), "instant breach");
        // Four clean observations push the violating one out (window 4).
        for _ in 0..4 {
            t.observe(0, 100, 0);
        }
        assert_eq!(t.burn_bp(0), Some(0));
        assert!(!t.breached(0), "clean window clears the breach");
        assert!(t.observe(0, 100, 100).is_some(), "edge re-arms");
        // Window 4: three clean observations survive plus the new one.
        assert_eq!(t.samples(0), 400);
        assert_eq!(t.violations(0), 100);
    }

    #[test]
    fn snapshot_exposes_tracked_rings_only() {
        let mut t = SloTracker::new(targets(50_000));
        t.observe(0, 200, 1);
        let snap = t.snapshot();
        assert_eq!(snap.get_counter("slo_target_us_r0"), Some(50_000));
        assert_eq!(snap.get_counter("slo_samples_r0"), Some(200));
        assert_eq!(snap.get_counter("slo_over_r0"), Some(1));
        assert_eq!(snap.get_counter("slo_burn_bp_r0"), Some(5_000));
        assert_eq!(snap.get_counter("slo_breached_r0"), Some(0));
        assert_eq!(snap.get_counter("slo_target_us_r1"), None);
    }

    #[test]
    fn overcounted_violations_clamp_to_samples() {
        let mut t = SloTracker::new(targets(1));
        t.observe(0, 10, 99);
        assert_eq!(t.violations(0), 10);
    }
}
