//! Per-stage span timers for the dissemination hot path.

use matrix_metrics::Histogram;
use std::time::Instant;

/// Number of instrumented pipeline stages.
pub const STAGE_COUNT: usize = 5;

/// One stage of the dissemination pipeline, in hot-path order. The
/// indices are stable: they name histogram slots in snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Stage 1 — interest-grid query (who can see this point).
    Query = 0,
    /// Stage 2 — ring grading + deterministic periphery sampling.
    Tier = 1,
    /// Stage 3 — dead-reckoning admission, payload stripping, queueing.
    Predict = 2,
    /// Stage 4 — per-receiver relevance ranking and delivery budgets.
    Policy = 3,
    /// Stage 5 — delta encoding of surviving origins.
    Delta = 4,
}

impl Stage {
    /// Every stage, in index order.
    pub const ALL: [Stage; STAGE_COUNT] = [
        Stage::Query,
        Stage::Tier,
        Stage::Predict,
        Stage::Policy,
        Stage::Delta,
    ];

    /// Stable snake_case name (used as the histogram/metric suffix).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Query => "query",
            Stage::Tier => "tier",
            Stage::Predict => "predict",
            Stage::Policy => "policy",
            Stage::Delta => "delta",
        }
    }
}

/// A lap timer over the pipeline stages.
///
/// The pipeline calls [`begin`](StageSpans::begin) when it starts a
/// timed section and [`lap`](StageSpans::lap) as each stage's work
/// completes; laps *accumulate* (one flush cycle spans many
/// disseminations), and [`end_flush`](StageSpans::end_flush) folds the
/// accumulated per-stage time into one histogram sample per stage —
/// the "per-flush span" of that stage.
///
/// Disabled (the default), every call is a single predictable branch
/// with no `Instant::now()`: the off configuration measures nothing
/// and costs nothing.
#[derive(Debug, Clone)]
pub struct StageSpans {
    enabled: bool,
    t_last: Option<Instant>,
    acc_us: [f64; STAGE_COUNT],
    /// The most recent *completed* flush's per-stage times, retained so
    /// a slow-flush capture can dump the breakdown of the flush that
    /// tripped the threshold (the histograms only keep aggregates).
    last_us: [f64; STAGE_COUNT],
    hists: Box<[Histogram; STAGE_COUNT]>,
}

impl StageSpans {
    /// Creates spans; `enabled = false` is the zero-cost no-op sink.
    pub fn new(enabled: bool) -> StageSpans {
        StageSpans {
            enabled,
            t_last: None,
            acc_us: [0.0; STAGE_COUNT],
            last_us: [0.0; STAGE_COUNT],
            hists: Box::new([
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
                Histogram::new(),
            ]),
        }
    }

    /// Whether the spans record anything.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Starts (or restarts) the lap clock.
    #[inline]
    pub fn begin(&mut self) {
        if self.enabled {
            self.t_last = Some(Instant::now());
        }
    }

    /// Attributes the time since the last `begin`/`lap` to `stage`.
    #[inline]
    pub fn lap(&mut self, stage: Stage) {
        if !self.enabled {
            return;
        }
        let now = Instant::now();
        if let Some(prev) = self.t_last {
            self.acc_us[stage as usize] += now.duration_since(prev).as_secs_f64() * 1e6;
        }
        self.t_last = Some(now);
    }

    /// Ends one flush cycle: records every stage's accumulated time (µs)
    /// as one histogram sample and resets the accumulators.
    pub fn end_flush(&mut self) {
        if !self.enabled {
            return;
        }
        for stage in Stage::ALL {
            self.hists[stage as usize].record(self.acc_us[stage as usize]);
            self.last_us[stage as usize] = self.acc_us[stage as usize];
            self.acc_us[stage as usize] = 0.0;
        }
        self.t_last = None;
    }

    /// The per-flush latency histogram of one stage (µs).
    pub fn histogram(&self, stage: Stage) -> &Histogram {
        &self.hists[stage as usize]
    }

    /// Per-stage times (µs) of the most recent completed flush — the
    /// slow-flush capture's raw material. All zeros before the first
    /// `end_flush` (or with spans disabled).
    pub fn last_flush_us(&self) -> [f64; STAGE_COUNT] {
        self.last_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_spans_record_nothing() {
        let mut s = StageSpans::new(false);
        s.begin();
        s.lap(Stage::Query);
        s.end_flush();
        for stage in Stage::ALL {
            assert!(s.histogram(stage).is_empty());
        }
    }

    #[test]
    fn laps_accumulate_until_end_flush() {
        let mut s = StageSpans::new(true);
        s.begin();
        s.lap(Stage::Query);
        s.begin();
        s.lap(Stage::Query); // two laps, one flush
        s.end_flush();
        s.begin();
        s.lap(Stage::Tier);
        s.end_flush();
        // Each end_flush records one sample per stage, lap or not.
        for stage in Stage::ALL {
            assert_eq!(s.histogram(stage).count(), 2, "{}", stage.name());
        }
    }

    #[test]
    fn last_flush_is_retained_after_the_reset() {
        let mut s = StageSpans::new(true);
        assert_eq!(s.last_flush_us(), [0.0; STAGE_COUNT]);
        s.begin();
        std::thread::sleep(std::time::Duration::from_millis(2));
        s.lap(Stage::Policy);
        s.end_flush();
        let last = s.last_flush_us();
        assert!(last[Stage::Policy as usize] > 0.0, "policy lap retained");
        assert_eq!(last[Stage::Query as usize], 0.0);
        // The accumulator reset must not clear the retained copy.
        assert_eq!(s.last_flush_us(), last);
    }

    #[test]
    fn lap_without_begin_is_harmless() {
        let mut s = StageSpans::new(true);
        s.lap(Stage::Delta);
        s.end_flush();
        assert_eq!(s.histogram(Stage::Delta).count(), 1);
    }
}
