//! The address book of a running cluster.
//!
//! Every component (node, coordinator, pool, client) owns an unbounded
//! mpsc inbox; the router maps ids to senders so the sans-io state
//! machines' actions can be delivered without any component knowing the
//! topology. A shared monotonic clock converts wall time to [`SimTime`]
//! so the state machines see the same time type under simulation and
//! deployment.

use crate::node::NodeMsg;
use matrix_core::{ClientId, CoordMsg, GameToClient, PoolMsg};
use matrix_geometry::ServerId;
use matrix_sim::SimTime;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Instant;
use tokio::sync::mpsc;

/// Cheaply cloneable handle to the cluster's address book and clock.
#[derive(Clone)]
pub struct Router {
    inner: Arc<Inner>,
}

struct Inner {
    start: Instant,
    nodes: RwLock<HashMap<ServerId, mpsc::UnboundedSender<NodeMsg>>>,
    clients: RwLock<HashMap<ClientId, mpsc::UnboundedSender<GameToClient>>>,
    coordinator: RwLock<Option<mpsc::UnboundedSender<CoordMsg>>>,
    pool: RwLock<Option<mpsc::UnboundedSender<(ServerId, PoolMsg)>>>,
    next_client: AtomicU64,
}

impl Default for Router {
    fn default() -> Self {
        Self::new()
    }
}

impl Router {
    /// Creates an empty router with the clock starting now.
    pub fn new() -> Router {
        Router {
            inner: Arc::new(Inner {
                start: Instant::now(),
                nodes: RwLock::new(HashMap::new()),
                clients: RwLock::new(HashMap::new()),
                coordinator: RwLock::new(None),
                pool: RwLock::new(None),
                next_client: AtomicU64::new(1),
            }),
        }
    }

    /// Wall-clock time since cluster start, as the protocol time type.
    pub fn now(&self) -> SimTime {
        SimTime::from_micros(self.inner.start.elapsed().as_micros() as u64)
    }

    /// Allocates a fresh globally unique client id.
    pub fn allocate_client_id(&self) -> ClientId {
        ClientId(self.inner.next_client.fetch_add(1, Ordering::Relaxed))
    }

    /// Registers a node's inbox.
    pub fn register_node(&self, id: ServerId, tx: mpsc::UnboundedSender<NodeMsg>) {
        self.inner
            .nodes
            .write()
            .expect("router lock")
            .insert(id, tx);
    }

    /// Registers a client's inbox.
    pub fn register_client(&self, id: ClientId, tx: mpsc::UnboundedSender<GameToClient>) {
        self.inner
            .clients
            .write()
            .expect("router lock")
            .insert(id, tx);
    }

    /// Removes a client (disconnect).
    pub fn unregister_client(&self, id: ClientId) {
        self.inner.clients.write().expect("router lock").remove(&id);
    }

    /// Registers the coordinator's inbox.
    pub fn register_coordinator(&self, tx: mpsc::UnboundedSender<CoordMsg>) {
        *self.inner.coordinator.write().expect("router lock") = Some(tx);
    }

    /// Registers the pool's inbox.
    pub fn register_pool(&self, tx: mpsc::UnboundedSender<(ServerId, PoolMsg)>) {
        *self.inner.pool.write().expect("router lock") = Some(tx);
    }

    /// Sends to a node; silently drops if the node is gone (matching the
    /// network's at-most-once delivery to dead hosts).
    pub fn send_node(&self, id: ServerId, msg: NodeMsg) {
        if let Some(tx) = self.inner.nodes.read().expect("router lock").get(&id) {
            let _ = tx.send(msg);
        }
    }

    /// Sends to a client.
    pub fn send_client(&self, id: ClientId, msg: GameToClient) {
        if let Some(tx) = self.inner.clients.read().expect("router lock").get(&id) {
            let _ = tx.send(msg);
        }
    }

    /// Sends to the coordinator.
    pub fn send_coordinator(&self, msg: CoordMsg) {
        if let Some(tx) = self.inner.coordinator.read().expect("router lock").as_ref() {
            let _ = tx.send(msg);
        }
    }

    /// Sends to the pool on behalf of `from`.
    pub fn send_pool(&self, from: ServerId, msg: PoolMsg) {
        if let Some(tx) = self.inner.pool.read().expect("router lock").as_ref() {
            let _ = tx.send((from, msg));
        }
    }

    /// Ids of all registered nodes.
    pub fn node_ids(&self) -> Vec<ServerId> {
        let mut ids: Vec<ServerId> = self
            .inner
            .nodes
            .read()
            .expect("router lock")
            .keys()
            .copied()
            .collect();
        ids.sort_unstable();
        ids
    }
}
