//! A node task: one co-located game server + Matrix server pair.
//!
//! The task owns the two sans-io state machines and a tick timer. Inputs
//! arrive on the inbox; outputs are routed through the [`Router`]. Local
//! game↔matrix deliveries are processed in place (same machine, as the
//! paper deploys them), exactly mirroring the discrete-event harness.

use crate::router::Router;
use matrix_core::{
    Action, ClientId, ClientToGame, CoordReply, GameAction, GameServerConfig, GameServerNode,
    GameStats, Histogram, Lifecycle, MatrixConfig, MatrixServer, PeerMsg, PoolReply, ServerStats,
    TelemetrySnapshot,
};
use matrix_geometry::{Rect, ServerId};
use std::collections::VecDeque;
use tokio::sync::{mpsc, oneshot};

/// Messages a node task accepts.
#[derive(Debug)]
pub enum NodeMsg {
    /// A client packet addressed to this game server.
    FromClient(ClientId, ClientToGame),
    /// A peer Matrix server's message.
    Peer {
        /// Sending server.
        from: ServerId,
        /// The message.
        msg: PeerMsg,
    },
    /// A coordinator reply.
    Coord(CoordReply),
    /// A pool reply.
    Pool(PoolReply),
    /// Developer bootstrap: register the game world on this node.
    Register {
        /// The world rectangle.
        world: Rect,
        /// Radius of visibility.
        radius: f64,
    },
    /// Point-in-time observability snapshot.
    Snapshot(oneshot::Sender<NodeSnapshot>),
    /// Graceful stop.
    Shutdown,
    /// Simulated process death (failover tests): the task exits
    /// immediately — no final flush, no goodbye, heartbeats just stop,
    /// exactly as a crashed machine would look to the cluster.
    Crash,
}

/// Observable state of a node.
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// The node's server id.
    pub id: ServerId,
    /// Matrix lifecycle state.
    pub lifecycle: Lifecycle,
    /// Managed range, if active.
    pub range: Option<Rect>,
    /// Connected clients.
    pub clients: usize,
    /// Matrix-side counters.
    pub matrix_stats: ServerStats,
    /// Game-side counters.
    pub game_stats: GameStats,
    /// Live telemetry (counters, stage/flush/tick histograms), present
    /// only when [`GameServerConfig::telemetry`] is on.
    pub telemetry: Option<TelemetrySnapshot>,
}

/// Handle for sending to a node task.
#[derive(Debug, Clone)]
pub struct NodeHandle {
    /// The node's server id.
    pub id: ServerId,
    tx: mpsc::UnboundedSender<NodeMsg>,
}

impl NodeHandle {
    /// Sends a message to the node (dropped if the task exited).
    pub fn send(&self, msg: NodeMsg) {
        let _ = self.tx.send(msg);
    }

    /// Requests a state snapshot.
    pub async fn snapshot(&self) -> Option<NodeSnapshot> {
        let (tx, rx) = oneshot::channel();
        self.send(NodeMsg::Snapshot(tx));
        rx.await.ok()
    }
}

/// Spawns a node task and registers it with the router.
pub fn spawn_node(
    id: ServerId,
    mcfg: MatrixConfig,
    gcfg: GameServerConfig,
    router: Router,
) -> NodeHandle {
    let (tx, rx) = mpsc::unbounded_channel();
    router.register_node(id, tx.clone());
    tokio::spawn(run_node(id, mcfg, gcfg, router, rx));
    NodeHandle { id, tx }
}

async fn run_node(
    id: ServerId,
    mcfg: MatrixConfig,
    gcfg: GameServerConfig,
    router: Router,
    mut rx: mpsc::UnboundedReceiver<NodeMsg>,
) {
    let mut matrix = MatrixServer::new(id, mcfg);
    // Real clients hang off this runtime, so fan-out is emitted for real.
    let mut game = GameServerNode::new(id, gcfg).with_fanout();
    if gcfg.flush_workers > 1 {
        // Spread the flush across real threads: each shard's policy
        // ranking and delta encoding runs on its own scoped worker.
        game = game.with_parallel_flush();
    }
    // Driver-side tick latency: how long a whole active game tick takes
    // (flush included) on the real runtime. The clock reads are the very
    // cost being measured, so they are gated on the telemetry switch.
    let telemetry_on = gcfg.telemetry;
    let mut tick_hist = Histogram::new();
    let tick = std::time::Duration::from_micros(gcfg.tick.as_micros());
    let mut ticker = tokio::time::interval(tick.max(std::time::Duration::from_millis(10)));
    ticker.set_missed_tick_behavior(tokio::time::MissedTickBehavior::Delay);

    loop {
        tokio::select! {
            maybe = rx.recv() => {
                let Some(msg) = maybe else { break };
                let now = router.now();
                match msg {
                    NodeMsg::FromClient(client, m) => {
                        let actions = game.on_client(now, client, m);
                        dispatch_game(&router, id, &mut matrix, &mut game, actions);
                    }
                    NodeMsg::Peer { from, msg } => {
                        let actions = matrix.on_peer(now, from, msg);
                        dispatch_matrix(&router, id, &mut matrix, &mut game, actions);
                    }
                    NodeMsg::Coord(reply) => {
                        let actions = matrix.on_coord(now, reply);
                        dispatch_matrix(&router, id, &mut matrix, &mut game, actions);
                    }
                    NodeMsg::Pool(reply) => {
                        let actions = matrix.on_pool(now, reply);
                        dispatch_matrix(&router, id, &mut matrix, &mut game, actions);
                    }
                    NodeMsg::Register { world, radius } => {
                        let actions = game.register(world, radius);
                        dispatch_game(&router, id, &mut matrix, &mut game, actions);
                    }
                    NodeMsg::Snapshot(reply) => {
                        let telemetry = game.telemetry_snapshot().map(|mut snap| {
                            snap.hist("rt_tick_us", &tick_hist);
                            snap
                        });
                        let _ = reply.send(NodeSnapshot {
                            id,
                            lifecycle: matrix.lifecycle(),
                            range: matrix.range(),
                            clients: game.client_count(),
                            matrix_stats: *matrix.stats(),
                            game_stats: *game.stats(),
                            telemetry,
                        });
                    }
                    NodeMsg::Shutdown => {
                        // Deliver what the batcher still holds so a
                        // graceful stop cannot eat the last interval's
                        // updates — and clear per-client delta bases so a
                        // client rejoining a restarted node receives a
                        // keyframe, never a delta against lost state.
                        let actions = game.shutdown_flush(now);
                        dispatch_game(&router, id, &mut matrix, &mut game, actions);
                        break;
                    }
                    NodeMsg::Crash => break,
                }
            }
            _ = ticker.tick() => {
                let now = router.now();
                if matrix.lifecycle() == Lifecycle::Active {
                    let t0 = telemetry_on.then(std::time::Instant::now);
                    // The runtime has no fluid queue model; the inbox is
                    // the real queue and client counts drive adaptation.
                    let game_actions = game.on_tick(now, 0.0);
                    dispatch_game(&router, id, &mut matrix, &mut game, game_actions);
                    if let Some(t0) = t0 {
                        tick_hist.record(t0.elapsed().as_secs_f64() * 1e6);
                    }
                }
                // The Matrix side ticks in every lifecycle: idle warm
                // standbys heartbeat so the coordinator can tell a live
                // standby from a dead one.
                let matrix_actions = matrix.on_tick(now);
                dispatch_matrix(&router, id, &mut matrix, &mut game, matrix_actions);
            }
        }
    }
}

/// Routes game-server actions, processing local matrix deliveries inline.
fn dispatch_game(
    router: &Router,
    id: ServerId,
    matrix: &mut MatrixServer,
    game: &mut GameServerNode,
    actions: Vec<GameAction>,
) {
    let mut queue: VecDeque<GameAction> = actions.into();
    while let Some(action) = queue.pop_front() {
        match action {
            GameAction::ToMatrix(msg) => {
                let now = router.now();
                let matrix_actions = matrix.on_game(now, msg);
                route_matrix(router, id, game, matrix_actions, &mut queue);
            }
            GameAction::ToClient(client, msg) => router.send_client(client, msg),
        }
    }
}

/// Routes Matrix-server actions, processing local game deliveries inline.
fn dispatch_matrix(
    router: &Router,
    id: ServerId,
    matrix: &mut MatrixServer,
    game: &mut GameServerNode,
    actions: Vec<Action>,
) {
    let mut queue: VecDeque<GameAction> = VecDeque::new();
    route_matrix(router, id, game, actions, &mut queue);
    while let Some(action) = queue.pop_front() {
        match action {
            GameAction::ToMatrix(msg) => {
                let now = router.now();
                let matrix_actions = matrix.on_game(now, msg);
                route_matrix(router, id, game, matrix_actions, &mut queue);
            }
            GameAction::ToClient(client, msg) => router.send_client(client, msg),
        }
    }
}

fn route_matrix(
    router: &Router,
    id: ServerId,
    game: &mut GameServerNode,
    actions: Vec<Action>,
    queue: &mut VecDeque<GameAction>,
) {
    for action in actions {
        match action {
            Action::ToGame(msg) => {
                let now = router.now();
                queue.extend(game.on_matrix(now, msg));
            }
            Action::ToPeer(peer, msg) => router.send_node(peer, NodeMsg::Peer { from: id, msg }),
            Action::ToCoord(msg) => router.send_coordinator(msg),
            Action::ToPool(msg) => router.send_pool(id, msg),
        }
    }
}
