//! Tokio runtime for the Matrix middleware.
//!
//! Runs the identical sans-io state machines of `matrix-core` as real
//! async tasks: one task per (game server + Matrix server) node, one for
//! the coordinator, one for the resource pool, with unbounded channels as
//! the network and an optional TCP gateway ([`wire`]) for remote clients.
//! Because the protocol logic is shared with the discrete-event harness,
//! behaviour validated in simulation deploys unchanged.
//!
//! With `GameServerConfig::telemetry` on, every node snapshot carries a
//! `TelemetrySnapshot` (stage/flush/tick latency histograms plus the
//! counters), and [`RtCluster::serve_stats`] exposes them live over TCP
//! as versioned JSON or Prometheus-style text ([`wire::TcpStatsClient`]).
//!
//! # Example
//!
//! ```no_run
//! use matrix_rt::{RtCluster, RtConfig};
//! use matrix_geometry::Point;
//!
//! # async fn demo() {
//! let cluster = RtCluster::start(RtConfig::default()).await;
//! let mut client = cluster.client(Point::new(100.0, 100.0));
//! client.action(64);
//! let reply = client.recv().await;
//! println!("{reply:?}");
//! cluster.shutdown().await;
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod cluster;
mod node;
mod router;
pub mod wire;

pub use client::{ClientCounters, RtClient};
pub use cluster::{RtCluster, RtConfig, SloProbe};
pub use node::{NodeHandle, NodeMsg, NodeSnapshot};
pub use router::Router;
