//! Cluster assembly: coordinator task, pool task, node fleet, clients.

use crate::client::RtClient;
use crate::node::{spawn_node, NodeHandle, NodeMsg, NodeSnapshot};
use crate::router::Router;
use matrix_core::{
    CoordAction, CoordMsg, Coordinator, CoordinatorConfig, GameServerConfig, MatrixConfig, PoolMsg,
    ResourcePool, TelemetrySnapshot,
};
use matrix_geometry::{Point, Rect, ServerId};
use tokio::sync::{mpsc, oneshot};

/// A live handle onto the coordinator task's freshness-SLO tracker.
///
/// The coordinator owns the [`matrix_core::Coordinator`] exclusively
/// inside its task, so the probe round-trips a oneshot through the
/// task's mailbox select loop rather than sharing state. Cloneable:
/// the stats endpoint keeps one per listener.
#[derive(Clone)]
pub struct SloProbe {
    tx: mpsc::UnboundedSender<oneshot::Sender<TelemetrySnapshot>>,
}

impl SloProbe {
    /// Fetches the coordinator's current SLO gauges (`slo_*`), or
    /// `None` if the coordinator task has exited. Empty when no ring
    /// carries a staleness target.
    pub async fn snapshot(&self) -> Option<TelemetrySnapshot> {
        let (tx, rx) = oneshot::channel();
        self.tx.send(tx).ok()?;
        rx.await.ok()
    }
}

/// Configuration of an in-process Matrix cluster.
#[derive(Debug, Clone)]
pub struct RtConfig {
    /// The game world.
    pub world: Rect,
    /// Radius of visibility.
    pub radius: f64,
    /// Matrix-server behaviour.
    pub matrix: MatrixConfig,
    /// Game-server behaviour.
    pub game: GameServerConfig,
    /// Coordinator behaviour.
    pub coordinator: CoordinatorConfig,
    /// Number of spare servers in the pool.
    pub pool_size: u32,
    /// Deployment failure-domain (rack / availability-zone) tags per
    /// server id, handed to [`ResourcePool::with_zones`]: standby
    /// acquisitions then prefer a spare outside the requesting
    /// primary's zone. Empty (the default) leaves every zone unknown.
    pub zones: Vec<(ServerId, u32)>,
}

impl Default for RtConfig {
    fn default() -> Self {
        RtConfig {
            world: Rect::from_coords(0.0, 0.0, 800.0, 800.0),
            radius: 100.0,
            matrix: MatrixConfig::default(),
            game: GameServerConfig::default(),
            coordinator: CoordinatorConfig::default(),
            pool_size: 8,
            zones: Vec::new(),
        }
    }
}

impl RtConfig {
    /// Stripes every server id (the bootstrap node and the pool spares)
    /// across `n` zones round-robin — the simplest deployment shape
    /// where consecutive machine ids land in different racks.
    pub fn with_zone_stripes(mut self, n: u32) -> RtConfig {
        self.zones = (1..2 + self.pool_size)
            .map(|id| (ServerId(id), id % n.max(1)))
            .collect();
        self
    }
}

/// A running in-process Matrix cluster.
pub struct RtCluster {
    router: Router,
    bootstrap: NodeHandle,
    nodes: Vec<NodeHandle>,
    slo: SloProbe,
}

impl RtCluster {
    /// Starts coordinator, pool, the bootstrap node and `pool_size` spare
    /// nodes, and registers the game world.
    pub async fn start(cfg: RtConfig) -> RtCluster {
        let router = Router::new();

        // Coordinator task.
        let (coord_tx, coord_rx) = mpsc::unbounded_channel();
        router.register_coordinator(coord_tx);
        let (slo_tx, slo_rx) = mpsc::unbounded_channel();
        let slo = SloProbe { tx: slo_tx };
        tokio::spawn(run_coordinator(
            cfg.coordinator,
            router.clone(),
            coord_rx,
            slo.clone(),
            slo_rx,
        ));

        // Pool task.
        let (pool_tx, pool_rx) = mpsc::unbounded_channel();
        router.register_pool(pool_tx);
        let spares: Vec<ServerId> = (2..2 + cfg.pool_size).map(ServerId).collect();
        tokio::spawn(run_pool(
            ResourcePool::new(spares.clone()).with_zones(cfg.zones.clone()),
            router.clone(),
            pool_rx,
        ));

        // Bootstrap node plus idle spares (the pool's machines).
        let bootstrap = spawn_node(ServerId(1), cfg.matrix, cfg.game, router.clone());
        let mut nodes = vec![bootstrap.clone()];
        for id in spares {
            nodes.push(spawn_node(id, cfg.matrix, cfg.game, router.clone()));
        }

        // Developer bootstrap: register the game on the first node.
        bootstrap.send(NodeMsg::Register {
            world: cfg.world,
            radius: cfg.radius,
        });
        // Give the registration round-trip a moment to install tables.
        tokio::time::sleep(std::time::Duration::from_millis(50)).await;

        RtCluster {
            router,
            bootstrap,
            nodes,
            slo,
        }
    }

    /// The cluster's address book (for gateways and clients).
    pub fn router(&self) -> &Router {
        &self.router
    }

    /// The bootstrap node's id.
    pub fn bootstrap_id(&self) -> ServerId {
        self.bootstrap.id
    }

    /// Connects a new client at `pos` (joined to the bootstrap server;
    /// the middleware redirects as needed).
    pub fn client(&self, pos: Point) -> RtClient {
        RtClient::connect(self.router.clone(), self.bootstrap.id, pos)
    }

    /// Snapshots every node's state.
    pub async fn snapshots(&self) -> Vec<NodeSnapshot> {
        let mut out = Vec::new();
        for node in &self.nodes {
            if let Some(s) = node.snapshot().await {
                out.push(s);
            }
        }
        out
    }

    /// Number of nodes actively managing a partition.
    pub async fn active_servers(&self) -> usize {
        self.snapshots()
            .await
            .iter()
            .filter(|s| s.lifecycle == matrix_core::Lifecycle::Active)
            .count()
    }

    /// A probe onto the coordinator's freshness-SLO tracker (the same
    /// gauges the stats endpoint exposes, as structured data).
    pub fn slo_probe(&self) -> SloProbe {
        self.slo.clone()
    }

    /// Binds a live stats endpoint over every node in the cluster (see
    /// [`crate::wire::spawn_stats_endpoint`]); returns the bound
    /// address. Query it with [`crate::wire::TcpStatsClient`]. The
    /// coordinator's freshness-SLO gauges ride along as pseudo-node
    /// `ServerId(0)` whenever any ring carries a staleness target.
    ///
    /// # Errors
    ///
    /// Returns any bind error from the operating system.
    pub async fn serve_stats(
        &self,
        addr: impl tokio::net::ToSocketAddrs,
    ) -> Result<std::net::SocketAddr, crate::wire::WireError> {
        crate::wire::spawn_stats_endpoint(addr, self.nodes.clone(), Some(self.slo.clone())).await
    }

    /// Stops every node task.
    pub async fn shutdown(self) {
        for node in &self.nodes {
            node.send(NodeMsg::Shutdown);
        }
    }

    /// Kills one node as a crashed process would die: no flush, no
    /// goodbye — its heartbeats simply stop, and the coordinator's
    /// liveness sweep takes it from there (failover when the node had a
    /// warm standby).
    pub fn crash(&self, id: ServerId) {
        self.router.send_node(id, NodeMsg::Crash);
    }
}

async fn run_coordinator(
    cfg: CoordinatorConfig,
    router: Router,
    mut rx: mpsc::UnboundedReceiver<CoordMsg>,
    // Keepalive clone of the probe sender: the probe channel therefore
    // never closes, so the select arm below stays pending (instead of
    // spinning on `None`) once external probes are gone. The task still
    // exits through the coordinator mailbox closing.
    _slo_keepalive: SloProbe,
    mut slo_rx: mpsc::UnboundedReceiver<oneshot::Sender<TelemetrySnapshot>>,
) {
    let mut coordinator = Coordinator::new(cfg);
    // Sweep at half the heartbeat timeout (bounded to [100ms, 1s]) so a
    // short timeout — as failover tests configure — is honoured without
    // waiting for a fixed one-second cadence.
    let sweep_every = (cfg.heartbeat_timeout.as_micros() / 2).clamp(100_000, 1_000_000);
    let mut sweep = tokio::time::interval(std::time::Duration::from_micros(sweep_every));
    loop {
        tokio::select! {
            maybe = rx.recv() => {
                let Some(msg) = maybe else { break };
                let actions = coordinator.handle(router.now(), msg);
                deliver(&router, actions);
            }
            maybe = slo_rx.recv() => {
                if let Some(reply) = maybe {
                    let _ = reply.send(coordinator.slo_snapshot());
                }
            }
            _ = sweep.tick() => {
                let actions = coordinator.check_liveness(router.now());
                deliver(&router, actions);
            }
        }
    }
}

fn deliver(router: &Router, actions: Vec<CoordAction>) {
    for CoordAction::Send(to, reply) in actions {
        router.send_node(to, NodeMsg::Coord(reply));
    }
}

async fn run_pool(
    mut pool: ResourcePool,
    router: Router,
    mut rx: mpsc::UnboundedReceiver<(ServerId, PoolMsg)>,
) {
    while let Some((from, msg)) = rx.recv().await {
        if let Some(reply) = pool.handle(msg) {
            router.send_node(from, NodeMsg::Pool(reply));
        }
    }
}
